"""Serving & workload replay: the QueryService and the WorkloadDriver.

Two halves of the production-traffic story, end to end:

1. **Serve** -- wrap a :class:`~repro.api.Session` in the asyncio
   :class:`~repro.service.QueryService` and submit concurrent queries
   through its bounded admission queue, reading each request's
   :class:`~repro.service.RequestTrace` (wait vs execute split, queue
   depth seen, cache attribution) and the service's aggregate stats.
2. **Replay** -- describe a mixed workload declaratively
   (:class:`~repro.workload.WorkloadSpec`: class percentages over the 13
   SSB queries plus an ad-hoc builder query, open-loop Poisson arrivals at
   a target RPS) and let the :class:`~repro.workload.WorkloadDriver`
   replay it, first well under capacity, then far over it against a small
   queue -- overload degrades into clean typed rejections, never errors.

Run with::

    python examples/serve_workload.py [--write]

``--write`` additionally writes the Locust-style ``run_table.csv`` and a
repetition-aware ``workload_summary.json`` into the working directory
(``benchmarks/bench_service_slo.py`` is the assertion-carrying version).
"""

from __future__ import annotations

import argparse
import asyncio

from repro import (
    OverloadError,
    Q,
    QUERIES,
    QueryClass,
    QueryService,
    Session,
    WorkloadDriver,
    WorkloadSpec,
    generate_ssb,
)


def adhoc_query():
    """An ad-hoc builder query riding along with the canonical 13."""
    return (
        Q("lineorder")
        .named("discount-band-count")
        .filter("lo_discount", "between", (4, 6))
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year")
        .agg("count")
    )


async def serve(session: Session) -> None:
    """Concurrent submits through the admission queue, traces and all."""
    async with QueryService(session, max_inflight=2, max_queue_depth=8) as service:
        names = ["q1.1", "q2.1", "q3.1", "q4.1"]
        tasks = {
            name: asyncio.create_task(service.submit(QUERIES[name], class_tag=name))
            for name in names
        }
        tasks["adhoc"] = asyncio.create_task(service.submit(adhoc_query(), class_tag="adhoc"))
        for name, task in tasks.items():
            submitted = await task
            trace = submitted.trace
            print(
                f"  {name:<6} {submitted.result.engine:<16} "
                f"wait {trace.wait_ms:6.2f}ms  exec {trace.execute_ms:6.2f}ms  "
                f"depth seen {trace.queue_depth_seen}"
                f"{'  (memo replay)' if trace.execution_cached else ''}"
            )
        stats = service.stats
        print(
            f"  stats: {stats.submitted} submitted, {stats.completed} completed, "
            f"peak queue {stats.peak_queue_depth}, peak inflight {stats.peak_inflight}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help="write run_table.csv + workload_summary.json"
    )
    args = parser.parse_args()

    db = generate_ssb(scale_factor=0.01, seed=42)
    # cache=False keeps every replayed request doing real work; with the
    # execution memo on, a repeated class answers from memory in
    # microseconds and there is no load to measure.
    session = Session(db, cache=False)

    print("== 1. QueryService: concurrent submits over one Session ==")
    asyncio.run(serve(session))
    print()

    # A mixed read workload: 60% flight 1, 25% flight 2, 15% ad-hoc.
    mix = WorkloadSpec.ssb_mix(
        percentages={"q1.1": 30.0, "q1.2": 30.0, "q2.1": 25.0},
        extra=(QueryClass("adhoc", adhoc_query(), 15.0),),
        target_rps=60.0,
        duration_s=1.0,
        repetitions=2,
        seed=7,
    )

    print("== 2. WorkloadDriver: open-loop Poisson replay below saturation ==")
    below = WorkloadDriver(session, mix).run(run="below")
    print(below)
    print()

    print("== 3. The same mix at ~10x, against a tiny admission queue ==")
    import dataclasses

    burst = dataclasses.replace(mix, target_rps=600.0, repetitions=1)
    over = WorkloadDriver(
        session, burst, service_config={"max_inflight": 1, "max_queue_depth": 4}
    ).run(run="overload")
    print(over)
    aggregate = over.aggregate
    print(
        f"\n  overload stayed graceful: {aggregate.rejected} typed "
        f"{OverloadError.__name__}s, {aggregate.failed} errors, admitted p99 "
        f"{aggregate.p99_ms:.1f}ms"
    )

    if args.write:
        rows = below.rows() + over.rows()
        from repro.workload.report import write_run_table

        write_run_table("run_table.csv", rows)
        below.write_summary("workload_summary.json")
        print("\nwrote run_table.csv and workload_summary.json")


if __name__ == "__main__":
    main()
