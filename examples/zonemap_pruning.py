"""Zone-map data skipping: pruning counters on a date-clustered fact table.

Zone maps summarize each 4096-row zone of a column by its min/max (plus an
exact value bitset for tiny domains), and the scan plane folds predicates
against those statistics to skip zones that provably contain no match --
without ever changing an answer or a profile.  Statistics need locality to
prove anything, so this example clusters the fact table by its date key
(the order real lineorder data arrives in) and then watches
``Session.cache_info("zones")`` while the SSB flights run: the
low-selectivity Q1.x flight, whose date restriction becomes a probe key
range, prunes by far the most.

Run with::

    python examples/zonemap_pruning.py
"""

from __future__ import annotations

from repro import Q, QUERIES, Session, col, generate_ssb
from repro.storage import cluster_by

#: Query names per SSB flight, derived from the specs themselves.
FLIGHTS = {
    flight: [name for name, query in QUERIES.items() if query.flight == flight]
    for flight in sorted({query.flight for query in QUERIES.values()})
}


def main() -> None:
    db = cluster_by(generate_ssb(scale_factor=0.05, seed=42), "lineorder", "lo_orderdate")
    fact_rows = db.table("lineorder").num_rows

    # ------------------------------------------------------------------
    # A fluent-builder query with a fact-local date band: the classic
    # zone-map case.  Most zones of the clustered fact table fall wholly
    # outside the band and are never materialized.
    # ------------------------------------------------------------------
    session = Session(db)
    spring_1994 = (
        Q("lineorder")
        .named("spring-1994-revenue-by-region")
        .where(col("lo_orderdate").between(19940101, 19940531))
        .join("supplier", on=("lo_suppkey", "s_suppkey"), payload="s_region")
        .group_by("s_region")
        .agg("sum", "lo_revenue")
    )
    print(session.run(spring_1994))
    info = session.cache_info("zones")
    print(
        f"zones: {info.zones_skipped} skipped, {info.zones_taken} taken whole, "
        f"{info.zones_evaluated} evaluated; {info.rows_pruned:,} rows "
        f"({info.rows_pruned / fact_rows:.0%} of the fact table) never touched"
    )
    print()

    # ------------------------------------------------------------------
    # The 13 canonical queries, one flight at a time, each with a fresh
    # session so the counters isolate the flight's pruning behaviour.
    # ------------------------------------------------------------------
    print(f"{'flight':<8} {'zones skipped':>14} {'zones evaluated':>16} "
          f"{'rows pruned':>12} {'of fact/query':>14}")
    for flight, names in FLIGHTS.items():
        fresh = Session(db)
        fresh.run_many([QUERIES[name] for name in names])
        info = fresh.cache_info("zones")
        ratio = info.rows_pruned / (fact_rows * len(names))
        print(
            f"q{flight}.x    {info.zones_skipped:>14} {info.zones_evaluated:>16} "
            f"{info.rows_pruned:>12,} {ratio:>13.1%}"
        )
    print()
    print("Q1.x prunes most: its d_year restriction becomes a probe key range")
    print("over the clustered lo_orderdate column, so whole zones of the fact")
    print("table provably cannot match and are skipped before any gather.")


if __name__ == "__main__":
    main()
