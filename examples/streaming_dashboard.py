"""Streaming ingest & standing queries: a live dashboard over micro-batches.

The streaming story, end to end:

1. **Ingest** -- stage arriving lineorder rows in an
   :class:`~repro.ingest.IngestBuffer`, which seals them into zone-aligned
   micro-batches and publishes each batch atomically (readers see whole
   sealed versions, never a torn batch).
2. **Maintain** -- register the dashboard's queries as standing queries on
   the :class:`~repro.api.Session`: each ingest evaluates the pipeline
   over only the newly sealed zones and merges grouped partials, instead
   of recomputing from scratch.
3. **Trust** -- after every batch, cross-check a sample standing answer
   against a full from-scratch re-evaluation (byte-identical, by
   construction), and read the cache counters to see that the maintenance
   work was proportional to the delta: zone maps *extended* rather than
   rebuilt, unchanged dimension build artifacts *hit* rather than rebuilt.

Run with::

    python examples/streaming_dashboard.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro.api import Session
from repro.engine.plan import execute_query_monolithic
from repro.ingest import IngestBuffer
from repro.ssb import QUERIES, generate_lineorder_batch, generate_ssb

DASHBOARD = ["q1.1", "q2.1", "q3.1", "q4.1"]  # one query per SSB flight


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    db = generate_ssb(scale_factor=scale_factor, seed=42)
    session = Session(db)
    fact = db.table("lineorder")
    print(f"SSB at SF {scale_factor:g}: {fact.num_rows} fact rows, version {fact.version}\n")

    # Register the dashboard. Each handle is evaluated once in full here;
    # every later ingest refreshes it incrementally.
    standing = {name: session.register_standing(QUERIES[name]) for name in DASHBOARD}

    # Arrivals stage into the buffer; each sealed zone-aligned batch bumps
    # the fact table's version and refreshes every standing query.
    def sealed(version: int, rows: int) -> None:
        print(f"  sealed batch -> version {version} (+{rows} rows)")
        for handle in session.standing_queries().values():
            handle.refresh()

    buffer = IngestBuffer(fact, on_seal=sealed)

    for tick in range(1, 4):
        print(f"tick {tick}: 6000 rows arrive")
        buffer.add(generate_lineorder_batch(db, 6000, seed=100 + tick))

        # The dashboard is already fresh -- show one flight's answer and
        # prove it equals a from-scratch run at this version.
        handle = standing["q2.1"]
        reference, _ = execute_query_monolithic(db, QUERIES["q2.1"])
        assert handle.answer() == reference, "differential guarantee violated"
        top = sorted(handle.answer().items())[:3]
        print(f"  q2.1 fresh at versions {handle.versions}: first groups {top}")
        print(f"  staged (unsealed) rows waiting: {buffer.staged_rows}")

        # Ad-hoc reads through the session see the same sealed version and
        # keep their zone maps by extension, not a rebuild.
        session.run(QUERIES["q1.1"])

    # The work was delta-proportional: zone maps extended (not rebuilt),
    # and the standing queries' dimension artifacts kept hitting.
    zones = session.cache_info("zones")
    builds = standing["q2.1"].build_cache_info()
    print(f"\nzone maps: {zones.extended} extensions, {zones.misses} builds")
    print(f"q2.1 standing build cache: {builds.hits} hits / {builds.misses} misses")
    print(f"table versions: {session.table_versions()}")


if __name__ == "__main__":
    main()
