"""Process-parallel sharded execution: one query, many worker processes.

The morsel-parallel thread pool (``run_many(workers=N)``) parallelizes
*across* queries and tops out where NumPy holds the GIL; ``shards=N``
parallelizes *within* a query with worker processes instead.  The fact
table's columns (and bit-packed twins) are published once into shared
memory, each zone-aligned row range runs the full zone-pruned pipeline in
a pooled worker, and the parent merges the partial aggregates -- answers
and profiles byte-identical to the single-process planes, by construction
and by differential test.

This example runs a few queries both ways, shows the shard counters, and
demonstrates the shared-memory lifecycle (``/dev/shm`` segments appear
while the session lives and vanish on close).

On a single-core container the sharded runs will be *slower* -- process
dispatch with no cores to scale onto; see ``benchmarks/
bench_sharded_scaleup.py`` for the honest-floor accounting and the SF >= 1
multi-core recipe where sharding pays.

Run with::

    python examples/sharded_scaleup.py
"""

from __future__ import annotations

import glob
import os
import time

from repro import QUERIES, Session, generate_ssb
from repro.storage import cluster_by


def shm_segments() -> list:
    return glob.glob("/dev/shm/repro-shm*")


def main() -> None:
    db = cluster_by(generate_ssb(scale_factor=0.05, seed=42), "lineorder", "lo_orderdate")
    fact_rows = db.table("lineorder").num_rows
    print(f"fact rows: {fact_rows:,}; cpus: {os.cpu_count()}")

    with Session(db) as session:
        for name in ("q1.1", "q2.1", "q4.2"):
            query = QUERIES[name]
            start = time.perf_counter()
            plain = session.run(query, cache=False)
            plain_ms = (time.perf_counter() - start) * 1e3

            start = time.perf_counter()
            sharded = session.run(query, shards=4, cache=False)
            sharded_ms = (time.perf_counter() - start) * 1e3

            identical = plain.records == sharded.records
            print(
                f"{name}: single-process {plain_ms:7.2f} ms | shards=4 "
                f"{sharded_ms:7.2f} ms | answers identical: {identical}"
            )

        # The export lives in shared memory for the session's lifetime:
        # one copy per (table, version), mapped by every worker.
        segments = shm_segments()
        print(f"\nshared segments while the session lives: {len(segments)}")

        counters = session.counters()
        print(
            f"shard counters: {counters.shard_queries} queries, "
            f"{counters.shard_tasks} tasks, {counters.shard_fallbacks} fallbacks"
        )

    # Strict unlink discipline: close() tears down the worker pool and
    # unlinks every segment (atexit would catch a forgotten close).
    print(f"shared segments after close: {len(shm_segments())}")


if __name__ == "__main__":
    main()
