"""Build a custom fused query kernel from Crystal block-wide functions.

This mirrors Figure 7(b) of the paper: a selection with two conjunctive
predicates followed by an aggregation, written as ordinary Python around the
Crystal primitives, executing as a single fused "kernel" that reads each
input column exactly once.

Run with::

    python examples/crystal_custom_kernel.py
"""

from __future__ import annotations

import numpy as np

from repro.crystal import (
    BlockContext,
    CrystalKernel,
    Tile,
    block_aggregate,
    block_load,
    block_load_sel,
    block_pred,
    block_pred_and,
)


def main() -> None:
    rng = np.random.default_rng(7)
    n = 1 << 20
    quantity = rng.integers(1, 51, n).astype(np.int32)
    discount = rng.integers(0, 11, n).astype(np.int32)
    extendedprice = rng.integers(1, 1000, n).astype(np.int32)

    # SELECT SUM(extendedprice * discount)
    # WHERE quantity < 25 AND discount BETWEEN 1 AND 3
    def body(ctx: BlockContext) -> float:
        qty_tile = block_load(ctx, quantity)
        qty_tile = block_pred(ctx, qty_tile, lambda v: v < 25)

        disc_tile = block_load(ctx, discount)
        disc_tile = disc_tile.with_bitmap(qty_tile.bitmap)
        disc_tile = block_pred_and(ctx, disc_tile, lambda v: (v >= 1) & (v <= 3))

        # Only rows that passed both predicates are fetched from the price
        # column (BlockLoadSel), so the kernel's traffic shrinks with the
        # selectivity -- the effect the SSB q1.x kernels rely on.
        price_tile = block_load_sel(ctx, extendedprice, disc_tile.bitmap)
        revenue = price_tile.values.astype(np.int64) * discount.astype(np.int64)
        revenue_tile = Tile(values=revenue, bitmap=disc_tile.bitmap)
        return block_aggregate(ctx, revenue_tile, op="sum", counter_name="revenue")

    kernel = CrystalKernel(body, threads_per_block=128, items_per_thread=4, label="q1-style")
    result = kernel.run()

    expected_mask = (quantity < 25) & (discount >= 1) & (discount <= 3)
    expected = float(np.sum(extendedprice[expected_mask].astype(np.int64) * discount[expected_mask]))

    print(f"kernel result          : {result.value:,.0f}")
    print(f"NumPy reference        : {expected:,.0f}")
    print(f"match                  : {result.value == expected}")
    print(f"simulated GPU runtime  : {result.milliseconds:.4f} ms")
    print(f"achieved occupancy     : {result.execution.occupancy:.2f}")
    print(f"bytes read from memory : {result.traffic.sequential_read_bytes / 1e6:.1f} MB "
          f"(of {3 * quantity.nbytes / 1e6:.1f} MB of raw columns)")


if __name__ == "__main__":
    main()
