"""Quickstart: generate an SSB database and run queries through a Session.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Session, generate_ssb
from repro.analysis import scale_profile
from repro.engine import execute_query
from repro.hardware import bandwidth_ratio
from repro.ssb import QUERIES


def main() -> None:
    # 1. Generate a small Star Schema Benchmark database (SF 0.05 = 300k rows).
    #    The paper evaluates SF 20; the engines report simulated runtimes on
    #    the paper's hardware either way.
    db = generate_ssb(scale_factor=0.05, seed=42)
    print(db.summary())
    print()

    # 2. Run SSB q2.1 through the Session facade on the standalone CPU engine
    #    and on the tile-based (Crystal) GPU engine.  Both return the exact
    #    query answer plus a simulated runtime on the paper's Intel i7-6900 /
    #    Nvidia V100.
    session = Session(db)
    query = QUERIES["q2.1"]
    cpu_result = session.run(query, engine="cpu")
    gpu_result = session.run(query, engine="gpu")

    print(f"query {query.name}: {query.description}")
    print(f"  result groups          : {cpu_result.rows}")
    print(f"  answers identical      : {cpu_result.value == gpu_result.value}")
    print(f"  CPU simulated runtime  : {cpu_result.simulated_ms:8.3f} ms")
    print(f"  GPU simulated runtime  : {gpu_result.simulated_ms:8.3f} ms")
    print(f"  GPU speedup            : {cpu_result.simulated_ms / gpu_result.simulated_ms:8.1f}x "
          f"(memory bandwidth ratio is {bandwidth_ratio():.1f}x)")
    print()

    # 3. Compare all three of the paper's execution strategies in one call.
    print(session.compare(query))
    print()

    # 4. Project the same query to the paper's scale factor (SF 20, a 120M-row
    #    fact table).  At small scale factors fixed kernel overheads dominate;
    #    at SF 20 the full latency-hiding advantage of the GPU shows up.
    _, profile = execute_query(db, query)
    scaled = scale_profile(profile, base_scale_factor=0.05, target_scale_factor=20.0)
    cpu_sf20 = session.engine("cpu").simulate(query, scaled)
    gpu_sf20 = session.engine("gpu").simulate(query, scaled)
    print("at the paper's SF 20 (projected):")
    print(f"  CPU simulated runtime  : {cpu_sf20.total_ms:8.2f} ms   (paper measured 125 ms)")
    print(f"  GPU simulated runtime  : {gpu_sf20.total_ms:8.2f} ms   (paper measured 3.86 ms)")
    print(f"  GPU speedup            : {cpu_sf20.total_ms / gpu_sf20.total_ms:8.1f}x")
    print()

    # 5. Inspect where the GPU kernel spends its time.
    print("GPU time breakdown (ms):")
    for component, seconds in sorted(gpu_result.time.components.items()):
        if seconds > 0:
            print(f"  {component:<28} {seconds * 1e3:9.4f}")


if __name__ == "__main__":
    main()
