"""Boolean predicate trees (OR / NOT) and decoded ResultSets.

The seed's query surface was conjunction-only: a flat tuple of filters,
each ANDed in.  The predicate algebra lifts that restriction: ``col()``
comparisons compose into And/Or/Not expression trees with ``&``, ``|``,
and ``~``, run on every engine, and come back as ResultSets whose
dictionary codes are decoded to human-readable labels.

Run with::

    python examples/predicate_trees.py
"""

from __future__ import annotations

from repro import Q, QUERIES, Session, col, generate_ssb


def main() -> None:
    db = generate_ssb(scale_factor=0.05, seed=42)
    session = Session(db)

    # ------------------------------------------------------------------
    # A disjunctive SSB variant: q1.1's discount band OR a high-quantity
    # branch.  Inexpressible before predicate trees; now one .where().
    # ------------------------------------------------------------------
    disjunctive = (
        Q("lineorder")
        .named("q1.1-or-high-quantity")
        .where(col("lo_discount").between(1, 3) | (col("lo_quantity") > 45))
        .join("date", on=("lo_orderdate", "d_datekey"),
              filters=[("d_year", "eq", 1993)], payload="d_year")
        .group_by("d_year")
        .agg("sum", "lo_extendedprice", "lo_discount", combine="mul")
    )
    print("predicate:", disjunctive.build(db).predicate)
    print(session.compare(disjunctive, engines=["cpu", "gpu", "coprocessor"]))
    print()

    # ------------------------------------------------------------------
    # Negation, and OR across a *dimension* filter: revenue from suppliers
    # outside Asia, in two named cities' worth of customers or any UK city.
    # ------------------------------------------------------------------
    negated = (
        Q("lineorder")
        .named("non-asia-revenue-by-region")
        .where(~(col("lo_quantity") < 10))
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=~col("s_region").eq("ASIA"), payload="s_region")
        .group_by("s_region")
        .agg("sum", "lo_revenue")
    )
    result = session.run(negated, engine="gpu")
    # The ResultSet decodes s_region codes back to labels: no ASIA row.
    print(result.sort_values("sum(lo_revenue)", ascending=False))
    print()

    # ------------------------------------------------------------------
    # Canonical q2.1, decoded: d_year stays numeric, p_brand1 codes become
    # brand strings; export the top brands as CSV.
    # ------------------------------------------------------------------
    q21 = session.run(QUERIES["q2.1"], engine="gpu")
    top = q21.sort_values("sum(lo_revenue)", ascending=False).head(5)
    print(top)
    print()
    print(top.to_csv(), end="")
    print()

    # ------------------------------------------------------------------
    # The comparison above ran one functional execution and replayed it on
    # the other engines from the Session's cache.
    # ------------------------------------------------------------------
    print("execution cache:", session.cache_info())


if __name__ == "__main__":
    main()
