"""Crash recovery walkthrough: ingest, die mid-append, reopen, diff.

The MVCC-lite tables publish versions atomically, but until PR 10 a
process crash erased every ingested version.  With
``Session(durability=DurabilityConfig(dir=...))`` each append writes a
CRC32-checksummed record to a write-ahead log *before* the version flips,
checkpoints bound replay, and ``Session.open`` rebuilds a byte-identical
frontier from whatever the crash left behind.

This walkthrough runs the whole life cycle in one script:

1. **Ingest + crash** -- a child process opens a durable session, ingests
   deterministic lineorder micro-batches, and an armed
   :class:`~repro.faults.FaultPlan` kills it mid-append (``torn`` mode:
   half the in-flight record lands on disk, the exact tail a power cut
   leaves).
2. **Reopen** -- the parent recovers the directory: newest valid
   checkpoint, WAL tail replayed in version order, torn tail truncated.
3. **Diff** -- the recovered session's tables and 13 SSB answers are
   compared against an uncrashed reference that ingested the same prefix.

Run with::

    python examples/crash_recovery.py
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile

from repro import DurabilityConfig, FaultPlan, FaultPoint, Session
from repro.faults import KILL_EXIT_CODE, WAL_APPEND
from repro.ssb import QUERIES, QUERY_ORDER, generate_lineorder_batch, generate_ssb

SCALE_FACTOR = 0.01
SEED = 42
BATCH_ROWS = 500
BATCHES_BEFORE_CRASH = 3


def base_db():
    """Every process regenerates the identical base database from the seed."""
    return generate_ssb(scale_factor=SCALE_FACTOR, seed=SEED)


def ingest_and_crash(dur_dir: str) -> None:
    """Child body: ingest durable batches until the fault plan kills us."""
    db = base_db()
    plan = FaultPlan(
        [FaultPoint(site=WAL_APPEND, mode="torn", skip=BATCHES_BEFORE_CRASH)]
    )
    session = Session(
        db,
        durability=DurabilityConfig(dir=dur_dir, fsync="always"),
        faults=plan,
    )
    for i in range(BATCHES_BEFORE_CRASH + 1):
        version = session.ingest(
            "lineorder", generate_lineorder_batch(db, BATCH_ROWS, seed=100 + i)
        )
        print(f"  [child] ingested batch {i}: lineorder now at version {version}")
    os._exit(0)  # unreachable: the armed fault fires on the last append


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="crash-recovery-")
    dur_dir = os.path.join(workdir, "durability")

    print("== 1. ingest + crash (child process, torn write mid-append) ==")
    child = multiprocessing.get_context("spawn").Process(
        target=ingest_and_crash, args=(dur_dir,)
    )
    child.start()
    child.join()
    assert child.exitcode == KILL_EXIT_CODE, child.exitcode
    print(f"  child died mid-append with exit code {child.exitcode} (the kill signature)")
    print(f"  durability dir holds: {sorted(os.listdir(dur_dir))}")

    print("== 2. reopen: checkpoint + WAL replay + torn-tail truncation ==")
    recovered_db = base_db()
    recovered = Session.open(recovered_db, durability=DurabilityConfig(dir=dur_dir))
    report = recovered.recovery
    print(
        f"  replayed {report.replayed_records} record(s), torn tail: {report.torn_tail} "
        f"({report.dropped_bytes} bytes truncated)"
    )
    print(f"  recovered frontier: lineorder v{recovered_db.table('lineorder').version}")

    print("== 3. diff against an uncrashed reference session ==")
    reference_db = base_db()
    reference = Session(reference_db)
    for i in range(BATCHES_BEFORE_CRASH):
        reference.ingest(
            "lineorder", generate_lineorder_batch(reference_db, BATCH_ROWS, seed=100 + i)
        )
    fact = recovered_db.table("lineorder")
    ref_fact = reference_db.table("lineorder")
    identical_bytes = all(
        column.values.tobytes() == ref_fact.columns[name].values.tobytes()
        for name, column in fact.columns.items()
    )
    print(
        f"  versions match: {fact.version == ref_fact.version} | "
        f"column bytes identical: {identical_bytes}"
    )
    mismatches = [
        name
        for name in QUERY_ORDER
        if recovered.run(QUERIES[name]).value != reference.run(QUERIES[name]).value
    ]
    print(f"  13-query diff: {len(mismatches)} mismatch(es) {mismatches or ''}")
    standing_match = (
        recovered.register_standing(QUERIES["q2.1"]).answer()
        == reference.register_standing(QUERIES["q2.1"]).answer()
    )
    print(f"  standing-query answers identical: {standing_match}")
    recovered.close()
    reference.close()

    assert fact.version == ref_fact.version and identical_bytes and not mismatches
    print("done: the crash lost only the torn batch; everything acknowledged survived")


if __name__ == "__main__":
    main()
