"""Operator-level CPU vs GPU comparison (the Section 4 microbenchmarks).

Runs the selection, projection, hash-join, and radix-sort operators in every
variant the paper evaluates on a laptop-sized input, reports simulated
runtimes on the paper's hardware, and compares them against the analytic
bandwidth models.

Run with::

    python examples/operator_showdown.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.hardware import bandwidth_ratio
from repro.models.join import cpu_join_probe_model, gpu_join_probe_model
from repro.models.project import cpu_project_model, gpu_project_model
from repro.models.select import cpu_select_model, gpu_select_model
from repro.ops.cpu import (
    cpu_hash_join_build,
    cpu_hash_join_probe,
    cpu_project,
    cpu_radix_sort,
    cpu_select,
)
from repro.ops.cpu.project import sigmoid
from repro.ops.gpu import (
    gpu_hash_join_build,
    gpu_hash_join_probe,
    gpu_project,
    gpu_radix_sort,
    gpu_select,
)

N = 1 << 21


def project_rows(rng) -> list[dict]:
    x1 = rng.random(N).astype(np.float32)
    x2 = rng.random(N).astype(np.float32)
    rows = []
    for name, udf in (("Q1 (a*x1 + b*x2)", None), ("Q2 (sigmoid)", sigmoid)):
        cpu = cpu_project(x1, x2, udf=udf, variant="opt")
        gpu = gpu_project(x1, x2, udf=udf)
        rows.append(
            {
                "operator": f"project {name}",
                "cpu_ms": cpu.milliseconds,
                "gpu_ms": gpu.milliseconds,
                "speedup": cpu.milliseconds / gpu.milliseconds,
                "cpu_model_ms": cpu_project_model(N).milliseconds,
                "gpu_model_ms": gpu_project_model(N).milliseconds,
            }
        )
    return rows


def select_rows(rng) -> list[dict]:
    y = rng.random(N).astype(np.float32)
    rows = []
    for selectivity in (0.1, 0.5, 0.9):
        cpu = cpu_select(y, selectivity, "simd_pred")
        gpu = gpu_select(y, selectivity)
        rows.append(
            {
                "operator": f"select sigma={selectivity}",
                "cpu_ms": cpu.milliseconds,
                "gpu_ms": gpu.milliseconds,
                "speedup": cpu.milliseconds / gpu.milliseconds,
                "cpu_model_ms": cpu_select_model(N, selectivity).milliseconds,
                "gpu_model_ms": gpu_select_model(N, selectivity).milliseconds,
            }
        )
    return rows


def join_rows(rng) -> list[dict]:
    rows = []
    probe_keys = rng.integers(0, 1 << 16, N)
    probe_values = rng.integers(0, 100, N)
    for build_size in (1 << 10, 1 << 16):
        build_keys = np.arange(build_size)
        build_values = rng.integers(0, 100, build_size)
        cpu_table, _ = cpu_hash_join_build(build_keys, build_values)
        gpu_table, _ = gpu_hash_join_build(build_keys, build_values)
        cpu = cpu_hash_join_probe(probe_keys % build_size, probe_values, cpu_table, "scalar")
        gpu = gpu_hash_join_probe(probe_keys % build_size, probe_values, gpu_table)
        rows.append(
            {
                "operator": f"hash join (HT {cpu_table.size_bytes >> 10} KB)",
                "cpu_ms": cpu.milliseconds,
                "gpu_ms": gpu.milliseconds,
                "speedup": cpu.milliseconds / gpu.milliseconds,
                "cpu_model_ms": cpu_join_probe_model(N, cpu_table.size_bytes).milliseconds,
                "gpu_model_ms": gpu_join_probe_model(N, gpu_table.size_bytes).milliseconds,
            }
        )
    return rows


def sort_rows(rng) -> list[dict]:
    keys = rng.integers(0, 2**31, N, dtype=np.int32)
    payloads = rng.integers(0, 2**31, N, dtype=np.int32)
    cpu = cpu_radix_sort(keys, payloads)
    gpu = gpu_radix_sort(keys, payloads, variant="msb")
    return [
        {
            "operator": "radix sort (32-bit key + payload)",
            "cpu_ms": cpu.milliseconds,
            "gpu_ms": gpu.milliseconds,
            "speedup": cpu.milliseconds / gpu.milliseconds,
            "cpu_model_ms": float("nan"),
            "gpu_model_ms": float("nan"),
        }
    ]


def main() -> None:
    rng = np.random.default_rng(11)
    rows = project_rows(rng) + select_rows(rng) + join_rows(rng) + sort_rows(rng)
    print(f"Operator microbenchmarks at N = {N:,} "
          f"(simulated times on the paper's hardware; bandwidth ratio {bandwidth_ratio():.1f}x)\n")
    print(format_table(rows, floatfmt=".3f"))
    print(
        "\nNote how projection, selection, and sort gain roughly the bandwidth ratio "
        "while the join gain depends on where the hash table sits in the cache hierarchy."
    )


if __name__ == "__main__":
    main()
