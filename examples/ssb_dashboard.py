"""Run the full Star Schema Benchmark on every engine and project to SF 20.

Reproduces the Figure 16 comparison (Hyper, Standalone CPU, OmniSci,
Standalone GPU), the Figure 3 coprocessor comparison, and the Table 3 cost
analysis in one go.

Run with::

    python examples/ssb_dashboard.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro.analysis import cost_comparison, format_table, scale_profile
from repro.engine import (
    CoprocessorEngine,
    CPUStandaloneEngine,
    GPUStandaloneEngine,
    HyperLikeEngine,
    MonetDBLikeEngine,
    OmnisciLikeEngine,
    execute_query,
)
from repro.ssb import QUERIES, generate_ssb
from repro.ssb.queries import QUERY_ORDER


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    target_sf = 20.0
    print(f"executing at SF {scale_factor:g}, reporting simulated runtimes at SF {target_sf:g}\n")

    db = generate_ssb(scale_factor=scale_factor, seed=42)
    engines = {
        "hyper": HyperLikeEngine(db),
        "standalone_cpu": CPUStandaloneEngine(db),
        "monetdb": MonetDBLikeEngine(db),
        "coprocessor": CoprocessorEngine(db),
        "omnisci": OmnisciLikeEngine(db),
        "standalone_gpu": GPUStandaloneEngine(db),
    }

    rows = []
    for name in QUERY_ORDER:
        query = QUERIES[name]
        _, profile = execute_query(db, query)
        scaled = scale_profile(profile, scale_factor, target_sf)
        row = {"query": name}
        for engine_name, engine in engines.items():
            row[engine_name] = engine.simulate(query, scaled).total_ms
        row["cpu/gpu"] = row["standalone_cpu"] / row["standalone_gpu"]
        rows.append(row)

    mean = {"query": "mean"}
    for key in rows[0]:
        if key != "query":
            mean[key] = sum(row[key] for row in rows) / len(rows)
    rows.append(mean)

    print("SSB simulated runtimes (ms) per engine")
    print(format_table(rows, floatfmt=".2f"))

    speedup = mean["cpu/gpu"]
    costs = cost_comparison(speedup)
    print(f"\nmean Standalone GPU speedup over Standalone CPU: {speedup:.1f}x")
    print(f"renting cost ratio (GPU/CPU): {costs.rent_cost_ratio:.1f}x")
    print(f"cost effectiveness of the GPU platform: {costs.rent_cost_effectiveness:.1f}x (paper: ~4x)")


if __name__ == "__main__":
    main()
