"""Why the GPU-as-coprocessor design cannot win (Section 3.1).

Walks through the paper's argument with the model: for a query that scans B
bytes, an efficient CPU engine needs B / 53 GBps, while a coprocessor must
first move B over a 12.8 GBps PCIe link -- so even with perfect overlap the
coprocessor loses.  Then verifies the argument against the simulated engines
on SSB q1.1.

Run with::

    python examples/coprocessor_analysis.py
"""

from __future__ import annotations

from repro.analysis import format_table, scale_profile
from repro.engine import CoprocessorEngine, CPUStandaloneEngine, GPUStandaloneEngine, execute_query
from repro.hardware.presets import DEFAULT_PCIE, INTEL_I7_6900, NVIDIA_V100
from repro.models.coprocessor import (
    coprocessor_query_lower_bound,
    coprocessor_vs_cpu_ratio,
    cpu_query_upper_bound,
)
from repro.ssb import QUERIES, generate_ssb


def model_walkthrough() -> None:
    fact_rows = 120_000_000  # SSB SF 20
    columns = 4              # q1.1 touches four 4-byte columns
    total_bytes = fact_rows * 4 * columns

    cpu_bound = cpu_query_upper_bound(total_bytes)
    coprocessor_bound = coprocessor_query_lower_bound(total_bytes)

    print("Model walkthrough for SSB q1.1 at SF 20")
    print(f"  bytes scanned                : {total_bytes / 1e9:.2f} GB")
    print(f"  CPU DRAM bandwidth           : {INTEL_I7_6900.dram_read_bandwidth / 1e9:.0f} GBps")
    print(f"  GPU HBM bandwidth            : {NVIDIA_V100.global_read_bandwidth / 1e9:.0f} GBps")
    print(f"  PCIe bandwidth               : {DEFAULT_PCIE / 1e9:.1f} GBps")
    print(f"  CPU upper bound (one pass)   : {cpu_bound.milliseconds:.1f} ms")
    print(f"  coprocessor lower bound      : {coprocessor_bound.milliseconds:.1f} ms")
    print(f"  lower bound / upper bound    : {coprocessor_vs_cpu_ratio(total_bytes):.2f}x "
          f"(> 1 means the CPU always wins)\n")


def simulated_engines() -> None:
    scale_factor = 0.05
    db = generate_ssb(scale_factor=scale_factor, seed=42)
    query = QUERIES["q1.1"]
    _, profile = execute_query(db, query)
    scaled = scale_profile(profile, scale_factor, 20.0)

    rows = []
    for engine in (CPUStandaloneEngine(db), GPUStandaloneEngine(db), CoprocessorEngine(db)):
        rows.append({"engine": engine.name, "simulated_ms_at_sf20": engine.simulate(query, scaled).total_ms})
    print("Simulated engines on q1.1 (SF 20)")
    print(format_table(rows, floatfmt=".1f"))
    print(
        "\nThe coprocessor is PCIe bound and slower than the CPU; only the "
        "GPU-resident design (Standalone GPU) realizes the bandwidth advantage."
    )


def main() -> None:
    model_walkthrough()
    simulated_engines()


if __name__ == "__main__":
    main()
