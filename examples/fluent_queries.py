"""Composing ad-hoc star-schema queries with the fluent Q builder.

The 13 canonical SSB queries only exercise SUM aggregates over fixed filter
combinations.  The builder opens the full star-schema query space -- any
filters, any subset of dimension joins, and count/min/max/avg aggregates --
while the Session facade dispatches them to any engine and the planner picks
the cheapest join order.

Run with::

    python examples/fluent_queries.py
"""

from __future__ import annotations

from repro import Q, Session, generate_ssb
from repro.api import available_engines


def main() -> None:
    db = generate_ssb(scale_factor=0.05, seed=42)
    session = Session(db)

    # How many low-quantity orders were placed with Asian suppliers per year?
    orders = (
        Q("lineorder")
        .named("asia-orders-by-year")
        .filter("lo_quantity", "lt", 25)
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_region", "eq", "ASIA")])
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year")
        .agg("count")
    )
    print(session.compare(orders, engines=["cpu", "gpu", "coprocessor"]))
    print()

    # Average profit per order for US-supplied MFGR#1 parts, by year.
    profit = (
        Q("lineorder")
        .named("us-mfgr1-avg-profit")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_nation", "eq", "UNITED STATES")])
        .join("part", on=("lo_partkey", "p_partkey"),
              filters=[("p_mfgr", "eq", "MFGR#1")])
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year")
        .agg("avg", "lo_revenue", "lo_supplycost", combine="sub")
    )
    # optimize=True routes through the join-order planner first: the most
    # selective joins run before the unfiltered date join.
    result = session.run(profit, engine="gpu", optimize=True)
    print(f"{result.query}: {result.rows} groups in {result.simulated_ms:.3f} simulated ms")
    for (year,), value in sorted(result.value.items()):
        print(f"  {year}: avg profit {value:12.1f}")
    print()

    # The largest single discount-weighted revenue, across every engine.
    biggest = (
        Q("lineorder")
        .named("max-weighted-revenue")
        .filter("lo_discount", "between", (1, 3))
        .agg("max", "lo_extendedprice", "lo_discount", combine="mul")
    )
    table = session.compare(biggest, engines=available_engines())
    print(table)


if __name__ == "__main__":
    main()
