"""Chaos recovery: kill workers, tear down segments, and watch it heal.

Failure handling that only production failures exercise is untested code,
so the repro makes failure a reproducible *input*: a
:class:`~repro.faults.FaultPlan` schedules named faults ("on the next
shard task: kill the worker") that the instrumented sites execute
deterministically.  This example walks the degradation ladder bottom-up:

1. **Shard rung** -- a worker is killed mid-query (``os._exit``, the real
   thing: the process pool is poisoned), then a shared-memory segment is
   unlinked out from under a task.  The executor rebuilds the pool,
   re-exports the segments, resubmits only the missing shards, and the
   answers stay byte-identical to the monolithic plane.
2. **Fallback rung** -- with a zero retry budget, the same fault drops the
   query to the monolithic plane instead: slower, never wrong.
3. **Service rung** -- transient failures upstream of execution are
   retried with exponential backoff and deterministic jitter; the request
   trace records every absorbed attempt.
4. **Breaker rung** -- repeated shard-plane failures trip a circuit
   breaker that routes queries to ``shards=1`` until a full-width probe
   succeeds.

Run with::

    python examples/chaos_recovery.py
"""

from __future__ import annotations

import asyncio

from repro import QUERIES, FaultPlan, FaultPoint, QueryService, ResiliencePolicy, Session, generate_ssb
from repro.faults import SERVICE_EXECUTE, SHARD_TASK


def shard_rung(db) -> None:
    print("== shard rung: worker kill, then segment unlink ==")
    expected = None
    for mode in ("kill", "unlink"):
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode=mode)])
        with Session(db, faults=plan) as session:
            before = session.counters()
            result = session.run(QUERIES["q2.1"], shards=2, cache=False)
            delta = session.counters() - before
            if expected is None:
                expected = session.run(QUERIES["q2.1"], cache=False).records
            print(
                f"  {mode:>6}: answer identical to monolithic: "
                f"{result.records == expected} | retries {delta.shard_retries}, "
                f"pool rebuilds {delta.pool_rebuilds}, fired {plan.fired(SHARD_TASK)}"
            )


def fallback_rung(db) -> None:
    print("== fallback rung: retry budget 0 drops to the monolithic plane ==")
    plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="raise", times=2)])
    policy = ResiliencePolicy(shard_retry_budget=0)
    with Session(db, faults=plan, resilience=policy) as session:
        before = session.counters()
        result = session.run(QUERIES["q1.1"], shards=2, cache=False)
        delta = session.counters() - before
        plain = session.run(QUERIES["q1.1"], cache=False)
        print(
            f"  failure fallbacks {delta.failure_fallbacks}, shard queries "
            f"{delta.shard_queries} | answer identical: {result.records == plain.records}"
        )


def service_rung(db) -> None:
    print("== service rung: transient failures absorbed by backoff + retry ==")
    plan = FaultPlan([FaultPoint(site=SERVICE_EXECUTE, mode="raise", times=2)])
    policy = ResiliencePolicy(max_attempts=3, backoff_base_s=0.01)

    async def go():
        with Session(db, faults=plan, resilience=policy) as session:
            async with QueryService(session) as service:
                outcome = await service.submit(QUERIES["q3.1"])
                return outcome.trace, service.stats

    trace, stats = asyncio.run(go())
    print(f"  status {trace.status} after {trace.attempts} attempts (plane: {trace.plane})")
    for entry in trace.faults:
        print(f"    absorbed: {entry}")
    print(f"  service retries counted: {stats.retries}")


def breaker_rung(db) -> None:
    print("== breaker rung: repeated shard failures trip, probe, heal ==")
    plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="raise", times=4)])
    policy = ResiliencePolicy(shard_retry_budget=0, breaker_threshold=2, breaker_probe_every=2)

    async def go():
        with Session(db, faults=plan, resilience=policy, cache=False) as session:
            async with QueryService(session, shards=2, max_inflight=1) as service:
                rows = []
                for _ in range(5):
                    outcome = await service.submit(QUERIES["q1.1"])
                    rows.append((outcome.trace.plane, service.breaker_open))
                return rows, service.stats

    rows, stats = asyncio.run(go())
    for i, (plane, open_) in enumerate(rows, 1):
        print(f"  request {i}: plane {plane:<20} breaker open: {open_}")
    print(f"  breaker trips: {stats.breaker_trips}")


def main() -> None:
    db = generate_ssb(scale_factor=0.01, seed=42)
    shard_rung(db)
    fallback_rung(db)
    service_rung(db)
    breaker_rung(db)
    print("done: every failure was absorbed; every answer stayed byte-identical")


if __name__ == "__main__":
    main()
