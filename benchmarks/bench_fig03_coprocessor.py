"""Figure 3: SSB on MonetDB-like, GPU coprocessor, and Hyper-like engines.

Paper reference points (SF 20): the GPU coprocessor is on average ~1.5x
faster than MonetDB and ~1.4x slower than Hyper, and every coprocessor query
is bound by the PCIe transfer time.
"""

from repro.analysis.experiments import run_figure3
from repro.analysis.report import format_table

#: Scale factor actually executed; timings are reported at SF 20.
EXECUTED_SCALE_FACTOR = 0.05


def test_figure3_coprocessor_vs_cpu_engines(run_once):
    result = run_once(run_figure3, scale_factor=EXECUTED_SCALE_FACTOR)
    rows = result["rows"]
    print("\nFigure 3 -- SSB, GPU coprocessor vs CPU engines (simulated ms at SF 20)")
    print(format_table(rows, floatfmt=".1f"))

    mean = rows[-1]
    # The coprocessor cannot beat an efficient CPU engine (Section 3.1).
    assert mean["gpu_coprocessor_ms"] > mean["hyper_ms"]
    # Every query list entry is positive and finite.
    assert all(row["gpu_coprocessor_ms"] > 0 for row in rows)
