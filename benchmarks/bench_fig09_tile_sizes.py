"""Figure 9 and Section 3.3: tile-size sweep and Crystal vs independent threads.

Paper reference points: best performance at thread-block size 128/256 with
4 items per thread; the tile-based kernel runs Q0 in 2.1 ms vs 19 ms for the
independent-threads approach (N = 2^29, selectivity 0.5).
"""

from repro.analysis.experiments import run_figure9, run_sec33_tile_comparison
from repro.analysis.report import format_series, format_table

EXEC_N = 1 << 22


def test_figure9_tile_size_sweep(run_once):
    result = run_once(run_figure9, exec_n=EXEC_N)
    series = result["series"]
    print("\nFigure 9 -- Q0 runtime (simulated ms at N=2^29) by tile configuration")
    print(format_series(series, x_name="thread_block_size"))

    best = series["items_per_thread=4"]
    # 4 items per thread dominates 1 item per thread everywhere.
    assert all(best[block] <= series["items_per_thread=1"][block] for block in best)
    # The sweet spot is at 128/256-thread blocks.
    assert min(best, key=best.get) in (128, 256)


def test_sec33_crystal_vs_independent_threads(run_once):
    result = run_once(run_sec33_tile_comparison, exec_n=EXEC_N)
    print("\nSection 3.3 -- Crystal vs independent-threads selection (N=2^29)")
    print(format_table(result["rows"], floatfmt=".2f"))
    independent, crystal = result["rows"]
    assert independent["simulated_ms"] > crystal["simulated_ms"] * 3
