"""Incremental standing-query maintenance vs from-scratch re-evaluation.

The streaming subsystem's value proposition, measured: after each sealed
micro-batch, a registered :class:`~repro.ingest.StandingQuery` evaluates
the pipeline over *only the newly appended zones* and merges grouped
partials, instead of re-running the whole query over the grown table.
This benchmark appends a sequence of zone-aligned batches to a fresh SSB
database and times both maintenance strategies per batch:

1. **incremental** -- ``StandingQuery.refresh()`` for a panel of standing
   queries (one per SSB flight, plus the full 13 when ``--all-queries``),
   exactly the work :meth:`~repro.api.Session.ingest` triggers.
2. **from-scratch** -- a cold re-evaluation of the same queries over the
   grown table (fresh caches, so nothing learned earlier is reused),
   which is what a system without versioned invalidation has to do.

Answers are asserted byte-identical between the two strategies at every
version before anything is timed -- the speedup is never bought with
staleness.  The report records per-batch timings, the speedup, and the
delta-proportionality evidence (build-cache hits vs misses on the
standing handles).

Run standalone (CI smoke uses SF 0.02 and enforces ``--min-speedup``)::

    PYTHONPATH=src python benchmarks/bench_ingest_incremental.py --scale-factor 0.05
"""

from __future__ import annotations

from bench_util import bench_arg_parser, time_best, write_json_atomic
from repro.api import Session
from repro.engine.plan import execute_query, execute_query_monolithic
from repro.ssb.generator import generate_lineorder_batch, generate_ssb
from repro.ssb.queries import QUERIES, QUERY_ORDER
from repro.storage.zonemap import DEFAULT_ZONE_SIZE

DEFAULT_SCALE_FACTOR = 0.05
DEFAULT_SEED = 7
PANEL = ["q1.1", "q2.1", "q3.1", "q4.1"]  # one query per SSB flight


def _copy_state(state: dict) -> dict:
    return {k: (dict(v) if isinstance(v, dict) else v) for k, v in state.items()}


def run_bench(scale_factor: float, seed: int, batches: int, batch_zones: int,
              repeats: int, names: list[str]) -> dict:
    batch_rows = batch_zones * DEFAULT_ZONE_SIZE
    db = generate_ssb(scale_factor=scale_factor, seed=seed)
    session = Session(db)
    standing = {name: session.register_standing(QUERIES[name]) for name in names}

    steps = []
    for step in range(batches):
        # A refresh consumes its delta, so to take best-of-N samples of
        # the *same* fold the handles' version frontier (row watermark,
        # versions, per-group state) is rewound between repeats.  Each
        # sample then does exactly the work one Session.ingest triggers.
        frontier = {
            name: (h._rows, dict(h._versions), _copy_state(h._state))
            for name, h in standing.items()
        }
        arrays = generate_lineorder_batch(db, batch_rows, seed=seed + 1000 + step)
        db.table("lineorder").append(arrays)
        rows = db.table("lineorder").num_rows

        def incremental_once():
            for name, handle in standing.items():
                handle._rows, versions, state = frontier[name][0], frontier[name][1], frontier[name][2]
                handle._versions = dict(versions)
                handle._state = _copy_state(state)
                handle.refresh()

        incremental_s = time_best(incremental_once, repeats)

        # The no-maintenance baseline: the same functional pipeline, cold,
        # over the whole grown table (nothing reused across versions).
        def from_scratch():
            return [execute_query(db, QUERIES[name])[0] for name in names]

        scratch_s = time_best(from_scratch, repeats)

        # Correctness gate: the incrementally merged answer (left by the
        # last repeat) equals the monolithic reference at this version.
        for name in names:
            reference, _ = execute_query_monolithic(db, QUERIES[name])
            if standing[name].answer() != reference:
                raise AssertionError(f"standing {name} diverged at step {step}")

        steps.append({
            "step": step,
            "total_rows": rows,
            "batch_rows": batch_rows,
            "incremental_s": incremental_s,
            "from_scratch_s": scratch_s,
            "speedup": scratch_s / incremental_s if incremental_s > 0 else float("inf"),
        })

    # Delta-proportionality evidence: across the whole run the long-lived
    # handles' dimension artifacts were built once and hit ever after.
    build_info = {name: tuple(standing[name].build_cache_info()) for name in names}
    speedups = [s["speedup"] for s in steps]
    return {
        "scale_factor": scale_factor,
        "seed": seed,
        "batch_zones": batch_zones,
        "queries": names,
        "steps": steps,
        "min_speedup": min(speedups),
        "mean_speedup": sum(speedups) / len(speedups),
        "standing_build_cache": build_info,
        "ticks": {name: standing[name].ticks for name in names},
        "full_refreshes": {name: standing[name].full_refreshes for name in names},
    }


def main() -> None:
    parser = bench_arg_parser(
        __doc__.splitlines()[0],
        output="BENCH_ingest.json",
        scale_factor=DEFAULT_SCALE_FACTOR,
        seed=DEFAULT_SEED,
        repeats=3,
        min_speedup=True,
    )
    parser.add_argument("--batches", type=int, default=3, help="ingest steps to measure")
    parser.add_argument("--batch-zones", type=int, default=1,
                        help="zones (x4096 rows) appended per step")
    parser.add_argument("--all-queries", action="store_true",
                        help="maintain all 13 SSB queries, not one per flight")
    args = parser.parse_args()

    names = list(QUERY_ORDER) if args.all_queries else PANEL
    report = run_bench(args.scale_factor, args.seed, args.batches,
                       args.batch_zones, args.repeats, names)

    print(f"incremental maintenance vs from-scratch, SF {args.scale_factor:g}, "
          f"{args.batch_zones * DEFAULT_ZONE_SIZE} rows/batch, {len(names)} queries")
    for step in report["steps"]:
        print(f"  step {step['step']}: {step['total_rows']:>8} rows  "
              f"incremental {step['incremental_s'] * 1e3:8.2f} ms  "
              f"from-scratch {step['from_scratch_s'] * 1e3:8.2f} ms  "
              f"speedup {step['speedup']:6.1f}x")
    print(f"  min speedup {report['min_speedup']:.1f}x, "
          f"mean {report['mean_speedup']:.1f}x")

    write_json_atomic(args.output, report)
    print(f"wrote {args.output}")

    if args.min_speedup is not None and report["min_speedup"] < args.min_speedup:
        raise SystemExit(
            f"incremental speedup floor violated: min {report['min_speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x"
        )


if __name__ == "__main__":
    main()
