"""Table 2: the hardware specification the whole evaluation runs on."""

from repro.analysis.experiments import run_table2
from repro.analysis.report import format_table


def test_table2_hardware_specifications(run_once):
    result = run_once(run_table2)
    rows = result["rows"]
    print("\nTable 2 -- hardware specifications (simulated platforms)")
    print(format_table(rows, floatfmt=".1f"))

    by_attribute = {row["attribute"]: row for row in rows}
    assert by_attribute["read_bandwidth_gbps"]["cpu"] == 53.0
    assert by_attribute["read_bandwidth_gbps"]["gpu"] == 880.0
    assert 16.0 <= by_attribute["bandwidth_ratio"]["gpu"] <= 17.0
