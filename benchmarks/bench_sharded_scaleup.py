"""Process-parallel sharded scale-up vs the single-process zone-pruned plane.

Head-to-head wall-clock measurement of ``shards=N`` execution -- the fact
table split into zone-aligned row ranges, each range running the pruned
selection-vector pipeline in a worker process over shared-memory columns,
partial aggregates merged in the parent -- against the same zone-pruned
plane running monolithically in one process.  Written to
``BENCH_sharding.json``:

1. **Parity first**: before anything is timed, every query is asserted
   byte-identical (answers *and* profiles) between the sharded and
   single-process planes.  A sharding plane that is fast but wrong is not
   a plane.
2. **Per-query and 13-query batch wall clock**, sharded vs monolithic,
   with the worker pool warm (steady-state dispatch ships only a small
   manifest per shard; the fact columns live in shared memory from the
   first query on).
3. **Honest floor accounting**: sharding buys wall-clock only when there
   are cores to scale onto.  ``--min-speedup`` is enforced **only when**
   ``os.cpu_count() >= shards``; on smaller machines (CI smoke runs in
   1-CPU containers) the report records the measured numbers plus
   ``floor_enforced: false`` and the reason, so the committed JSON is
   never a lie about hardware it didn't have.

CI smoke (small SF, parity + counters, floor auto-waived on tiny hosts)::

    PYTHONPATH=src python benchmarks/bench_sharded_scaleup.py --sf 0.01 \
        --repeats 2 --min-speedup 1.5

Local scale-up recipe (the interesting regime -- a multi-core box and a
fact table large enough that per-shard work dwarfs dispatch; expect the
batch speedup at ``--shards 4`` to clear 1.5x comfortably)::

    PYTHONPATH=src python benchmarks/bench_sharded_scaleup.py \
        --scale-factor 1 --shards 4 --repeats 5 --min-speedup 1.5
"""

from __future__ import annotations

import os

from bench_util import bench_arg_parser, time_best, write_json_atomic
from repro.api import Session
from repro.ssb.generator import generate_ssb
from repro.ssb.queries import QUERIES, QUERY_ORDER
from repro.storage import cluster_by

DEFAULT_SCALE_FACTOR = 0.05
DEFAULT_SEED = 7
DEFAULT_SHARDS = 4


def assert_parity(session: Session, queries, shards: int) -> None:
    """Every query byte-identical sharded vs single-process, pre-timing."""
    for query in queries:
        mono = session.run(query, cache=False)
        sharded = session.run(query, shards=shards, cache=False)
        if sharded.records != mono.records or sharded.result.stats != mono.result.stats:
            raise AssertionError(f"sharded plane diverged on {query.name}")


def run_sharding_benchmark(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    repeats: int = 3,
    start_method: "str | None" = None,
) -> dict:
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if shards < 2:
        raise ValueError(f"shards must be >= 2 to measure scale-up, got {shards}")
    db = cluster_by(generate_ssb(scale_factor=scale_factor, seed=seed), "lineorder", "lo_orderdate")
    queries = [QUERIES[name] for name in QUERY_ORDER]

    with Session(db, shard_start_method=start_method) as session:
        # Parity gate; also warms the zone statistics, the packed twins,
        # the shared-memory export, and the worker pool, so the timed
        # section below measures steady-state dispatch on both planes.
        assert_parity(session, queries, shards)

        per_query = {}
        for query in queries:
            mono_s = time_best(
                lambda query=query: session.run(query, cache=False), repeats
            )
            shard_s = time_best(
                lambda query=query: session.run(query, shards=shards, cache=False), repeats
            )
            per_query[query.name] = {
                "single_process_ms": mono_s * 1e3,
                "sharded_ms": shard_s * 1e3,
                "speedup": mono_s / shard_s if shard_s else float("inf"),
            }

        mono_batch_s = time_best(
            lambda: [session.run(query, cache=False) for query in queries], repeats
        )
        shard_batch_s = time_best(
            lambda: [session.run(query, shards=shards, cache=False) for query in queries],
            repeats,
        )
        stats = session.counters()

    cpu_count = os.cpu_count() or 1
    return {
        "scale_factor": scale_factor,
        "seed": seed,
        "shards": shards,
        "repeats": repeats,
        "start_method": start_method,
        "clustered_by": "lo_orderdate",
        "fact_rows": db.table("lineorder").num_rows,
        "cpu_count": cpu_count,
        "floor_enforceable": cpu_count >= shards,
        "batch": {
            "queries": len(queries),
            "single_process_wall_s": mono_batch_s,
            "sharded_wall_s": shard_batch_s,
            "speedup": mono_batch_s / shard_batch_s if shard_batch_s else float("inf"),
        },
        "per_query": per_query,
        "shard_counters": {
            "queries": stats.shard_queries,
            "tasks": stats.shard_tasks,
            "fallbacks": stats.shard_fallbacks,
        },
    }


def test_sharded_scaleup(run_once):
    """pytest-benchmark entry: parity and dispatch accounting, not speedup.

    Wall-clock scale-up needs cores; the CI container may have one.  What
    must hold everywhere: byte-identical answers (the parity gate inside
    the run) and every query actually dispatched through the shard pool.
    """
    result = run_once(run_sharding_benchmark, scale_factor=0.01, repeats=2, shards=2)
    batch = result["batch"]
    print("\nProcess-parallel sharding -- shards=2 vs single-process zone plane")
    print(
        f"batch x{batch['queries']}: {batch['single_process_wall_s'] * 1e3:.1f} ms -> "
        f"{batch['sharded_wall_s'] * 1e3:.1f} ms ({batch['speedup']:.2f}x, "
        f"{result['cpu_count']} cpu)"
    )
    assert result["shard_counters"]["fallbacks"] == 0
    assert result["shard_counters"]["queries"] > 0
    assert result["shard_counters"]["tasks"] >= 2 * result["shard_counters"]["queries"]


def main() -> None:
    parser = bench_arg_parser(
        __doc__.splitlines()[0],
        output="BENCH_sharding.json",
        scale_factor=DEFAULT_SCALE_FACTOR,
        seed=DEFAULT_SEED,
        repeats=3,
        min_speedup=True,
    )
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument(
        "--start-method",
        default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for the worker pool (default: platform)",
    )
    args = parser.parse_args()

    report = run_sharding_benchmark(
        scale_factor=args.scale_factor,
        seed=args.seed,
        shards=args.shards,
        repeats=args.repeats,
        start_method=args.start_method,
    )

    batch = report["batch"]
    floor_enforced = args.min_speedup is not None and report["floor_enforceable"]
    report["min_speedup_floor"] = args.min_speedup
    report["floor_enforced"] = floor_enforced
    if args.min_speedup is not None and not report["floor_enforceable"]:
        report["floor_waived_reason"] = (
            f"os.cpu_count()={report['cpu_count']} < shards={report['shards']}: "
            "no cores to scale onto; parity and dispatch were still verified"
        )
    write_json_atomic(args.output, report)

    print(f"wrote {args.output} (scale factor {args.scale_factor}, shards={args.shards})")
    print(
        f"  batch x{batch['queries']:<3}: {batch['single_process_wall_s'] * 1e3:8.1f} ms "
        f"single-process -> {batch['sharded_wall_s'] * 1e3:8.1f} ms sharded "
        f"({batch['speedup']:.2f}x on {report['cpu_count']} cpu)"
    )
    for name, row in report["per_query"].items():
        print(
            f"    {name}: {row['single_process_ms']:7.2f} -> {row['sharded_ms']:7.2f} ms "
            f"({row['speedup']:.2f}x)"
        )
    counters = report["shard_counters"]
    print(
        f"  dispatch: {counters['queries']} queries, {counters['tasks']} shard tasks, "
        f"{counters['fallbacks']} fallbacks"
    )

    if args.min_speedup is not None and not floor_enforced:
        print(f"  floor waived: {report['floor_waived_reason']}")
    if floor_enforced and batch["speedup"] < args.min_speedup:
        raise SystemExit(
            f"sharding regression: batch speedup {batch['speedup']:.2f}x is below the "
            f"committed floor {args.min_speedup:.2f}x on {report['cpu_count']} cpus"
        )


if __name__ == "__main__":
    main()
