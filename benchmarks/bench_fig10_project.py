"""Figure 10: projection microbenchmark (Q1 linear combination, Q2 sigmoid).

Paper reference points (N = 2^29 in the text): CPU 90.5 / 282.4 ms,
CPU-Opt 64.0 / 69.6 ms, GPU 3.9 ms, with CPU-Opt / GPU ratios of 16.56 and
17.95 -- i.e. the projection gain equals the bandwidth ratio.
"""

from repro.analysis.experiments import run_figure10
from repro.analysis.report import format_table

EXEC_N = 1 << 22


def test_figure10_projection(run_once):
    result = run_once(run_figure10, exec_n=EXEC_N)
    rows = result["rows"]
    print("\nFigure 10 -- projection microbenchmark (simulated ms at N=2^29)")
    print(format_table(rows, floatfmt=".2f"))
    print(f"bandwidth ratio: {result['bandwidth_ratio']:.1f}")

    for row in rows:
        assert row["cpu_ms"] >= row["cpu_opt_ms"] > row["gpu_ms"]
        # The optimized CPU to GPU ratio tracks the bandwidth ratio.
        assert abs(row["cpu_opt_over_gpu"] - result["bandwidth_ratio"]) / result["bandwidth_ratio"] < 0.35
    q1, q2 = rows
    # The naive CPU implementation is compute bound only for the sigmoid query.
    assert q2["cpu_ms"] > q1["cpu_ms"]
