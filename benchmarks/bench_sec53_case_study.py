"""Section 5.3 case study: SSB q2.1 model vs simulated execution.

Paper reference points (SF 20): the model predicts 3.7 ms (GPU) and 47 ms
(CPU); the measured runtimes are 3.86 ms and 125 ms.  The GPU tracks its
model because warp scheduling hides probe latency; the CPU misses its model
because it cannot hide the latency of the chained, irregular hash probes.
"""

from repro.analysis.experiments import run_sec53_case_study
from repro.analysis.report import format_table

EXECUTED_SCALE_FACTOR = 0.05


def test_sec53_q21_case_study(run_once):
    result = run_once(run_sec53_case_study, scale_factor=EXECUTED_SCALE_FACTOR)
    rows = result["rows"]
    print("\nSection 5.3 -- q2.1 model vs simulated runtime (ms at SF 20)")
    print(format_table(rows, floatfmt=".2f"))

    gpu = next(r for r in rows if r["device"] == "GPU")
    cpu = next(r for r in rows if r["device"] == "CPU")
    gpu_gap = gpu["simulated_ms"] / gpu["model_ms"]
    cpu_gap = cpu["simulated_ms"] / cpu["model_ms"]
    print(f"model gap: GPU {gpu_gap:.2f}x, CPU {cpu_gap:.2f}x (paper: 1.04x and 2.66x)")

    # The GPU stays close to its bandwidth model; the CPU overshoots by much more.
    assert gpu_gap < 2.5
    assert cpu_gap > gpu_gap
    # And the GPU is still an order of magnitude faster end to end.
    assert cpu["simulated_ms"] / gpu["simulated_ms"] > 8
