"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they isolate the individual mechanisms
of the tile-based execution model (atomic batching, coalesced output,
selective loading) and of the CPU implementation (non-temporal stores, SIMD)
to show how much each contributes on the simulated hardware.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.crystal import BlockContext, block_load, block_load_sel
from repro.ops.cpu import cpu_project, cpu_select
from repro.ops.gpu import gpu_select, gpu_select_independent_threads


def test_ablation_tile_mechanisms(run_once):
    """Quantify each mechanism the tile-based model adds over thread-per-row."""
    rng = np.random.default_rng(3)
    y = rng.random(1 << 22).astype(np.float32)

    def build_rows():
        independent = gpu_select_independent_threads(y, 0.5)
        tiny_tiles = gpu_select(y, 0.5, threads_per_block=32, items_per_thread=1)
        default_tiles = gpu_select(y, 0.5, threads_per_block=128, items_per_thread=4)
        return [
            {"configuration": "independent threads (3 kernels)", "ms": independent.milliseconds,
             "atomics": independent.traffic.atomic_updates},
            {"configuration": "tiles of 32 (single kernel)", "ms": tiny_tiles.milliseconds,
             "atomics": tiny_tiles.traffic.atomic_updates},
            {"configuration": "tiles of 512 (paper default)", "ms": default_tiles.milliseconds,
             "atomics": default_tiles.traffic.atomic_updates},
        ]

    rows = run_once(build_rows)
    print("\nAblation -- mechanisms of the tile-based execution model")
    print(format_table(rows, floatfmt=".3f"))
    assert rows[0]["ms"] > rows[2]["ms"]
    assert rows[1]["atomics"] > rows[2]["atomics"]


def test_ablation_cpu_optimizations(run_once):
    """Quantify SIMD and non-temporal stores on the CPU side."""
    rng = np.random.default_rng(5)
    x1 = rng.random(1 << 22).astype(np.float32)
    x2 = rng.random(1 << 22).astype(np.float32)

    def build_rows():
        from repro.ops.cpu.project import sigmoid
        naive = cpu_project(x1, x2, udf=sigmoid, variant="naive")
        opt = cpu_project(x1, x2, udf=sigmoid, variant="opt")
        branching = cpu_select(x1, 0.5, "if")
        simd_select = cpu_select(x1, 0.5, "simd_pred")
        return [
            {"configuration": "Q2 projection, scalar + regular stores", "ms": naive.milliseconds},
            {"configuration": "Q2 projection, SIMD + streaming stores", "ms": opt.milliseconds},
            {"configuration": "selection, branching", "ms": branching.milliseconds},
            {"configuration": "selection, SIMD predication", "ms": simd_select.milliseconds},
        ]

    rows = run_once(build_rows)
    print("\nAblation -- CPU implementation choices")
    print(format_table(rows, floatfmt=".3f"))
    assert rows[0]["ms"] > rows[1]["ms"]
    assert rows[2]["ms"] > rows[3]["ms"]


def test_ablation_selective_loading(run_once):
    """BlockLoadSel reads only the sectors of entries that passed earlier filters."""
    column = np.arange(1 << 20, dtype=np.int32)

    def build_rows():
        rows = []
        for selectivity in (0.01, 0.25, 1.0):
            bitmap = np.zeros(column.shape[0], dtype=bool)
            bitmap[: int(selectivity * column.shape[0])] = True
            ctx = BlockContext()
            block_load_sel(ctx, column, bitmap)
            full_ctx = BlockContext()
            block_load(full_ctx, column)
            rows.append(
                {
                    "selectivity": selectivity,
                    "selective_read_mb": ctx.traffic.sequential_read_bytes / 1e6,
                    "full_read_mb": full_ctx.traffic.sequential_read_bytes / 1e6,
                }
            )
        return rows

    rows = run_once(build_rows)
    print("\nAblation -- selective loading (BlockLoadSel) vs full column loads")
    print(format_table(rows, floatfmt=".2f"))
    assert rows[0]["selective_read_mb"] < rows[0]["full_read_mb"]
    assert rows[-1]["selective_read_mb"] <= rows[-1]["full_read_mb"]
