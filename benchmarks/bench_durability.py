"""Prices durability: per-fsync-mode append overhead and recovery time.

Two questions a serving operator asks before turning the WAL on:

1. **What does each fsync policy cost per append?**  The same stream of
   deterministic lineorder micro-batches is ingested under no durability,
   ``off``, ``batch``, and ``always``; the report records ms/append for
   each, so the overhead column is a straight subtraction against the
   in-memory baseline.
2. **How long does recovery take, and how does a checkpoint bend the
   curve?**  Recovery time is measured against growing WAL lengths
   (replay scales with the tail), then once more with a checkpoint in
   front of the same number of appends (replay collapses to the
   post-checkpoint records).

Parity gate before any timing is trusted: the recovered database must be
byte-identical to the live one -- every column array, dtype, dictionary,
and all 13 SSB answers -- under each fsync mode.  A run where recovery
drifted fails loudly instead of reporting a fast number.

Writes ``BENCH_durability.json`` (atomic replace), uploaded by the CI
``durability`` job.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from bench_util import bench_arg_parser, write_json_atomic  # noqa: E402

from repro.api import Session  # noqa: E402
from repro.ssb import QUERIES, QUERY_ORDER, generate_lineorder_batch, generate_ssb  # noqa: E402
from repro.storage import DurabilityConfig  # noqa: E402

#: Appends per timed stream (and the recovery curve's x-axis points).
APPENDS = 16
BATCH_ROWS = 512
RECOVERY_POINTS = (4, 8, 16)


def fresh_db(scale_factor: float, seed: int):
    return generate_ssb(scale_factor=scale_factor, seed=seed)


def ingest_stream(session, db, count: int, seed: int) -> None:
    for i in range(count):
        session.ingest("lineorder", generate_lineorder_batch(db, BATCH_ROWS, seed=seed + i))


def assert_parity(db_a, db_b, context: str) -> None:
    """Byte-identical tables + 13 matching answers, or die."""
    for name, table in db_a.tables.items():
        other = db_b.table(name)
        assert table.version == other.version, (context, name, "version")
        for cname, column in table.columns.items():
            assert column.values.dtype == other.columns[cname].values.dtype, (context, name, cname)
            assert column.values.tobytes() == other.columns[cname].values.tobytes(), (
                context,
                name,
                cname,
            )
        for cname, encoder in table.dictionaries.items():
            assert list(encoder.values) == list(other.dictionaries[cname].values), (
                context,
                name,
                cname,
            )
    session_a, session_b = Session(db_a), Session(db_b)
    for name in QUERY_ORDER:
        assert session_a.run(QUERIES[name]).value == session_b.run(QUERIES[name]).value, (
            context,
            name,
        )
    session_a.close()
    session_b.close()


def time_append_stream(scale_factor: float, seed: int, fsync: "str | None", workdir: str) -> dict:
    """One ingest stream under one durability mode; returns its timing row."""
    db = fresh_db(scale_factor, seed)
    if fsync is None:
        session = Session(db)
        mode = "none"
    else:
        mode = fsync
        session = Session(
            db, durability=DurabilityConfig(dir=os.path.join(workdir, f"dur-{fsync}"), fsync=fsync)
        )
    start = time.perf_counter()
    ingest_stream(session, db, APPENDS, seed=1000)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    stats = session.durability.stats() if session.durability else None
    session.close()
    row = {
        "mode": mode,
        "appends": APPENDS,
        "batch_rows": BATCH_ROWS,
        "total_ms": elapsed_ms,
        "ms_per_append": elapsed_ms / APPENDS,
        "fsyncs": stats.fsyncs if stats else 0,
        "wal_bytes": stats.wal_bytes if stats else 0,
    }
    if fsync is not None:
        # Parity gate: recover into a fresh base and diff before the
        # timing row is allowed into the report.
        recovered = fresh_db(scale_factor, seed)
        recovery = Session.open(
            recovered, durability=DurabilityConfig(dir=os.path.join(workdir, f"dur-{fsync}"))
        )
        assert_parity(db, recovered, context=f"fsync={fsync}")
        recovery.close()
    return row


def time_recovery(scale_factor: float, seed: int, workdir: str) -> list:
    """Recovery wall-clock vs WAL length, with and without a checkpoint."""
    rows = []
    for appends in RECOVERY_POINTS:
        for checkpointed in (False, True):
            dur_dir = os.path.join(workdir, f"rec-{appends}-{int(checkpointed)}")
            db = fresh_db(scale_factor, seed)
            session = Session(db, durability=DurabilityConfig(dir=dur_dir, fsync="off"))
            ingest_stream(session, db, appends, seed=2000)
            if checkpointed:
                session.checkpoint()
                # Two post-checkpoint appends keep the replay tail honest.
                ingest_stream(session, db, 2, seed=2000 + appends)
            session.close()
            wal_bytes = os.path.getsize(os.path.join(dur_dir, "wal.log"))

            recovered = fresh_db(scale_factor, seed)
            start = time.perf_counter()
            recovery = Session.open(recovered, durability=DurabilityConfig(dir=dur_dir))
            recovery_ms = (time.perf_counter() - start) * 1e3
            report = recovery.recovery
            assert_parity(db, recovered, context=f"recovery appends={appends} ckpt={checkpointed}")
            recovery.close()
            rows.append(
                {
                    "appends": appends + (2 if checkpointed else 0),
                    "checkpointed": checkpointed,
                    "wal_bytes": wal_bytes,
                    "replayed_records": report.replayed_records,
                    "recovery_ms": recovery_ms,
                }
            )
    return rows


def main() -> int:
    parser = bench_arg_parser(
        "Durability bench: per-fsync-mode append overhead + recovery time",
        output="BENCH_durability.json",
        scale_factor=0.01,
        repeats=None,
    )
    args = parser.parse_args()
    workdir = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        modes = [None, "off", "batch", "always"]
        append_rows = [
            time_append_stream(args.scale_factor, args.seed, mode, workdir) for mode in modes
        ]
        baseline = append_rows[0]["ms_per_append"]
        for row in append_rows:
            row["overhead_ms_per_append"] = row["ms_per_append"] - baseline
        recovery_rows = time_recovery(args.scale_factor, args.seed, workdir)

        payload = {
            "bench": "durability",
            "scale_factor": args.scale_factor,
            "seed": args.seed,
            "appends": APPENDS,
            "batch_rows": BATCH_ROWS,
            "parity": "byte-identical tables + 13 SSB answers verified before timing",
            "append_overhead": append_rows,
            "recovery": recovery_rows,
        }
        write_json_atomic(args.output, payload)
        print(f"wrote {args.output}")
        print(f"{'mode':<8} {'ms/append':>10} {'overhead':>10} {'fsyncs':>7}")
        for row in append_rows:
            print(
                f"{row['mode']:<8} {row['ms_per_append']:>10.3f} "
                f"{row['overhead_ms_per_append']:>10.3f} {row['fsyncs']:>7}"
            )
        print(f"{'appends':<8} {'ckpt':>5} {'replayed':>9} {'recovery_ms':>12}")
        for row in recovery_rows:
            print(
                f"{row['appends']:<8} {str(row['checkpointed']):>5} "
                f"{row['replayed_records']:>9} {row['recovery_ms']:>12.2f}"
            )
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
