"""Table 3 and Section 5.4: the dollar-cost comparison.

Paper reference points: renting the GPU platform costs ~6x more per hour,
buying it costs less than 6x more, and with a ~25x performance advantage the
GPU ends up ~4x more cost effective for SSB-style analytics.
"""

from repro.analysis.experiments import run_table3
from repro.analysis.report import format_table

EXECUTED_SCALE_FACTOR = 0.05


def test_table3_cost_comparison(run_once):
    result = run_once(run_table3, scale_factor=EXECUTED_SCALE_FACTOR)
    print("\nTable 3 -- purchase and renting cost, with derived cost effectiveness")
    print(format_table(result["rows"], floatfmt=".2f"))
    print(f"performance ratio used: {result['performance_ratio']:.1f}x (paper: ~25x)")

    assert result["performance_ratio"] > 16.0
    effectiveness = result["rows"][-1]["rent_usd_per_hour"]
    # Paper: about a factor of 4 improvement in cost effectiveness.
    assert 2.5 <= effectiveness <= 6.5
