"""Batched Session executor: run_many with and without shared builds.

Times the 13 canonical SSB queries through ``Session.run_many`` twice --
serial (every query rebuilds its own dimension lookups) and batched
(``share_builds=True``: the batch's build operators are grouped and each
distinct dimension lookup is constructed exactly once) -- and writes the
wall-clock times, build-cache counters, and per-query simulated times to
``BENCH_batched.json``.

The *simulated* per-query costs are identical by construction (engines cost
the same profiles); what sharing removes is the repeated functional build
work of the reproduction itself, plus it demonstrates the counters the
batched executor exposes.

Run standalone (CI smoke uses a tiny scale factor)::

    PYTHONPATH=src python benchmarks/bench_batched_session.py --scale-factor 0.01

or under pytest-benchmark alongside the other figures::

    pytest benchmarks/bench_batched_session.py --benchmark-only -s
"""

from __future__ import annotations

import json

from bench_util import bench_arg_parser, time_best, write_json_atomic
from repro.api import Session
from repro.engine.physical import lower_query
from repro.ssb.generator import generate_ssb
from repro.ssb.queries import QUERIES, QUERY_ORDER

DEFAULT_SCALE_FACTOR = 0.01
DEFAULT_ENGINE = "cpu"


def run_batched_comparison(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    engine: str = DEFAULT_ENGINE,
    seed: int = 7,
    repeats: int = 3,
) -> dict:
    """Time run_many serial vs share_builds and collect the counters."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    db = generate_ssb(scale_factor=scale_factor, seed=seed)
    queries = [QUERIES[name] for name in QUERY_ORDER]

    def timed(share_builds: bool) -> tuple[float, Session, list]:
        state: dict = {}

        def once():
            # Fresh session each repeat: the execution memo must not let
            # later repeats replay the first one's answers.  Construction
            # is a few empty-cache allocations -- noise next to the batch,
            # and identical on both sides of the comparison.
            state["session"] = session = Session(db, cache=False)
            state["results"] = session.run_many(queries, engine=engine, share_builds=share_builds)

        best = time_best(once, repeats)
        return best, state["session"], state["results"]

    serial_s, _, serial_results = timed(share_builds=False)
    shared_s, shared_session, shared_results = timed(share_builds=True)

    for a, b in zip(serial_results, shared_results):
        if a.value != b.value or a.simulated_ms != b.simulated_ms:
            raise AssertionError(f"shared-build run diverged on {a.query}")

    build_info = shared_session.cache_info("builds")
    distinct_builds = len({b.key for q in queries for b in lower_query(q).builds})
    total_joins = sum(len(q.joins) for q in queries)
    return {
        "scale_factor": scale_factor,
        "engine": engine,
        "queries": len(queries),
        "serial_wall_s": serial_s,
        "shared_wall_s": shared_s,
        "speedup": serial_s / shared_s if shared_s else float("inf"),
        "total_joins": total_joins,
        "distinct_builds": distinct_builds,
        "build_cache": {
            "hits": build_info.hits,
            "misses": build_info.misses,
            "size": build_info.size,
        },
        "per_query_simulated_ms": {
            r.query: r.simulated_ms for r in shared_results
        },
    }


def test_batched_session(run_once):
    """pytest-benchmark entry point alongside the figure benchmarks."""
    result = run_once(run_batched_comparison, scale_factor=DEFAULT_SCALE_FACTOR)
    print("\nBatched Session -- run_many with vs without shared builds")
    print(
        f"serial {result['serial_wall_s'] * 1e3:.1f} ms, "
        f"shared {result['shared_wall_s'] * 1e3:.1f} ms "
        f"({result['speedup']:.2f}x), "
        f"{result['distinct_builds']} distinct builds for {result['total_joins']} joins"
    )
    # Every distinct build constructed exactly once; every join served.
    assert result["build_cache"]["misses"] == result["distinct_builds"]
    assert result["build_cache"]["hits"] == result["total_joins"]


def main(argv: list[str] | None = None) -> None:
    parser = bench_arg_parser(
        __doc__.splitlines()[0],
        output="BENCH_batched.json",
        scale_factor=DEFAULT_SCALE_FACTOR,
        engine=DEFAULT_ENGINE,
        repeats=3,
    )
    args = parser.parse_args(argv)

    result = run_batched_comparison(
        scale_factor=args.scale_factor, engine=args.engine, seed=args.seed, repeats=args.repeats
    )
    write_json_atomic(args.output, result)
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"\nwrote {args.output}")

    if result["build_cache"]["misses"] != result["distinct_builds"]:
        raise SystemExit("build sharing broken: distinct builds constructed more than once")


if __name__ == "__main__":
    main()
