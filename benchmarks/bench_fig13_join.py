"""Figure 13: hash-join probe microbenchmark across hash-table sizes.

Paper reference points (256 M probe rows, hash tables 8 KB - 1 GB): step
increases at the cache-size boundaries (CPU 256 KB and 20 MB, GPU 6 MB);
CPU SIMD is slower than CPU Scalar; prefetching helps only out of cache; the
CPU/GPU gain is ~5.5x when both are cache resident, ~14.5x in the GPU-L2 /
CPU-L3 regime, and ~10.5x when neither caches the table -- always below the
16.2x bandwidth ratio.
"""

from repro.analysis.experiments import JOIN_HASH_TABLE_SIZES, run_figure13
from repro.analysis.report import format_series
from repro.hardware.presets import bandwidth_ratio


def _pretty(size: int) -> str:
    if size >= 1 << 20:
        return f"{size >> 20}MB"
    return f"{size >> 10}KB"


def test_figure13_hash_join_probe(run_once):
    result = run_once(run_figure13, exec_probe_rows=1 << 18)
    series = result["series"]
    print("\nFigure 13 -- hash-join probe (simulated ms, 256M probe rows at SF of the paper)")
    pretty_series = {name: {_pretty(k): v for k, v in values.items()} for name, values in series.items()}
    print(format_series(pretty_series, x_name="hash_table"))

    sizes = sorted(series["cpu_scalar"])
    # Monotone step behaviour on both devices.
    for name in ("cpu_scalar", "gpu"):
        values = [series[name][s] for s in sizes]
        assert all(b >= a * 0.99 for a, b in zip(values, values[1:]))
    # Vertical SIMD vectorization does not pay off.
    assert all(series["cpu_simd"][s] >= series["cpu_scalar"][s] * 0.99 for s in sizes)
    # The join speedup stays below the bandwidth ratio for out-of-cache tables.
    largest = sizes[-1]
    assert series["cpu_scalar"][largest] / series["gpu"][largest] < bandwidth_ratio()
    # All executed validation joins produced the correct checksum.
    assert all(entry["checksum_ok"] for entry in result["validation"])
