"""Figure 14 and Section 4.4: radix partitioning and full radix sorts.

Paper reference points: the histogram phase is bandwidth bound everywhere;
the CPU shuffle stays bandwidth bound up to 8 radix bits and deteriorates
beyond; GPU stable partitioning stops at 7 bits, unstable at 8; sorting 2^28
key/value pairs takes 464 ms on the CPU and 27.08 ms on the GPU (a 17.1x
gain, close to the bandwidth ratio).
"""

from repro.analysis.experiments import run_figure14
from repro.analysis.report import format_series, format_table

EXEC_N = 1 << 20


def test_figure14_radix_partition_and_sort(run_once):
    result = run_once(run_figure14, exec_n=EXEC_N)

    print("\nFigure 14a -- radix histogram phase (simulated ms at 2^28 rows)")
    print(format_series(result["histogram_series"], x_name="radix_bits"))
    print("\nFigure 14b -- radix shuffle phase (simulated ms at 2^28 rows)")
    print(format_series(result["shuffle_series"], x_name="radix_bits"))
    print("\nSection 4.4 -- full radix sort of 2^28 key/value pairs")
    print(format_table(result["full_sort_rows"], floatfmt=".1f"))

    shuffle = result["shuffle_series"]
    # CPU shuffle falls off the bandwidth plateau beyond 8 bits.
    assert shuffle["cpu_stable"][11] > shuffle["cpu_stable"][8] * 1.2
    # Stable GPU partitioning is capped at 7 bits, unstable at 8.
    assert 8 not in shuffle["gpu_stable"] and 8 in shuffle["gpu_unstable"]
    # Full-sort gain is in the vicinity of the bandwidth ratio (paper: 17.1x).
    cpu_sort, gpu_sort = result["full_sort_rows"]
    gain = cpu_sort["simulated_ms"] / gpu_sort["simulated_ms"]
    assert 10 <= gain <= 25
    print(f"sort gain: {gain:.1f}x (paper: 17.1x)")
