"""Figure 16: the full Star Schema Benchmark on all four engines.

Paper reference points (SF 20): Standalone CPU is ~1.17x faster than Hyper,
Standalone GPU is ~16x faster than OmniSci, and Standalone GPU beats
Standalone CPU by ~25x on average -- more than the 16.2x bandwidth ratio,
thanks to the GPU's latency hiding on the chained join probes.
"""

from repro.analysis.experiments import run_figure16
from repro.analysis.report import format_table
from repro.hardware.presets import bandwidth_ratio

EXECUTED_SCALE_FACTOR = 0.05


def test_figure16_ssb_all_engines(run_once):
    result = run_once(run_figure16, scale_factor=EXECUTED_SCALE_FACTOR)
    rows = result["rows"]
    print("\nFigure 16 -- SSB queries on all engines (simulated ms at SF 20)")
    print(format_table(rows, floatfmt=".2f"))

    mean = rows[-1]
    print(f"mean Standalone CPU / Standalone GPU ratio: {mean['cpu_over_gpu']:.1f}x "
          f"(paper: ~25x, bandwidth ratio {bandwidth_ratio():.1f}x)")

    # The headline claim: the full-query gain exceeds the bandwidth ratio.
    assert mean["cpu_over_gpu"] > bandwidth_ratio()
    # Standalone CPU is competitive with (not slower than) Hyper.
    assert mean["standalone_cpu_ms"] <= mean["hyper_ms"] * 1.05
    # The tile-based GPU engine is far faster than the thread-per-row engine.
    assert mean["omnisci_ms"] / mean["standalone_gpu_ms"] > 3
