"""Zone-map data skipping + compressed scans vs the selection-vector baseline.

Head-to-head wall-clock measurement of the pruned, compression-aware scan
plane (zone-map pruning, stats-compacted dimension lookups, in-range probe
fast paths, packed gathers) against the PR 4 selection-vector pipeline --
the same code with no :class:`~repro.engine.cache.ZoneMapCache` active --
written to ``BENCH_zonemap.json``:

1. **13-query batch** on a fact table *clustered by its date key* (the
   order real lineorder data arrives in; zone maps are a statistics
   subsystem, and statistics need locality to prove anything).  Answers
   and profiles are asserted byte-identical between the two planes (and
   the monolithic reference) before anything is timed.
2. **Per-flight pruning counters** from ``Session.cache_info("zones")``:
   zones skipped / taken whole / evaluated and rows pruned, per SSB query
   flight -- the low-selectivity Q1.x flight shows the highest pruning
   ratio because its date restriction turns into a probe key range that
   excludes most zones of the clustered fact table.
3. **Compressed scan accounting** from the operator models: bytes charged
   by ``cpu_select_pred`` for a small-domain band predicate with and
   without the packed twin (full scan and sparse gather), i.e. the
   Section 5.5 traffic saving ``ceil(rows x bit_width / 8)`` vs 4-byte
   values.

Run standalone (CI smoke uses SF 0.01 and enforces ``--min-speedup``)::

    PYTHONPATH=src python benchmarks/bench_zonemap_scan.py --scale-factor 0.05
"""

from __future__ import annotations

import numpy as np

from bench_util import bench_arg_parser, time_best, write_json_atomic
from repro.api import Session, col
from repro.engine.cache import ZoneMapCache, activate_zones
from repro.engine.plan import execute_query, execute_query_monolithic
from repro.ops.cpu import cpu_select_pred
from repro.ssb.generator import generate_ssb
from repro.ssb.queries import QUERIES, QUERY_ORDER
from repro.storage import BitPackedColumn, Database, cluster_by

DEFAULT_SCALE_FACTOR = 0.05
DEFAULT_SEED = 7

#: Query names per SSB flight, derived from the specs themselves.
FLIGHTS = {
    flight: [name for name in QUERY_ORDER if QUERIES[name].flight == flight]
    for flight in sorted({query.flight for query in QUERIES.values()})
}


def bench_batch(db: Database, queries, repeats: int) -> dict:
    """The 13 queries through both planes: parity first, then wall clock."""
    zone_cache = ZoneMapCache(db)

    def run_baseline():
        return [execute_query(db, q) for q in queries]

    def run_pruned():
        with activate_zones(zone_cache):
            return [execute_query(db, q) for q in queries]

    baseline = run_baseline()
    pruned = run_pruned()  # also warms the statistics and packed twins
    for (value_b, profile_b), (value_p, profile_p), query in zip(baseline, pruned, queries):
        value_m, profile_m = execute_query_monolithic(db, query)
        if not (value_b == value_p == value_m and profile_b == profile_p == profile_m):
            raise AssertionError(f"scan planes diverged on {query.name}")

    per_query = {}
    for query in queries:
        base_s = time_best(lambda query=query: execute_query(db, query), repeats)

        def pruned_once(query=query):
            with activate_zones(zone_cache):
                execute_query(db, query)

        zone_s = time_best(pruned_once, repeats)
        per_query[query.name] = {
            "baseline_ms": base_s * 1e3,
            "pruned_ms": zone_s * 1e3,
            "speedup": base_s / zone_s if zone_s else float("inf"),
        }

    baseline_s = time_best(run_baseline, repeats)
    pruned_s = time_best(run_pruned, repeats)
    return {
        "queries": len(queries),
        "baseline_wall_s": baseline_s,
        "pruned_wall_s": pruned_s,
        "speedup": baseline_s / pruned_s if pruned_s else float("inf"),
        "per_query": per_query,
    }


def bench_flight_counters(db: Database, engine: str) -> dict:
    """Per-flight zone counters through the Session surface."""
    fact_rows = db.table("lineorder").num_rows
    out = {}
    for flight, names in FLIGHTS.items():
        session = Session(db, cache=False)
        session.run_many([QUERIES[name] for name in names], engine=engine)
        info = session.cache_info("zones")
        touchable = sum(
            fact_rows * (len(QUERIES[n].joins) + len(QUERIES[n].predicate.columns())) for n in names
        )
        out[f"flight_{flight}"] = {
            "queries": len(names),
            "zones_skipped": info.zones_skipped,
            "zones_taken": info.zones_taken,
            "zones_evaluated": info.zones_evaluated,
            "rows_pruned": info.rows_pruned,
            "pruned_fraction_of_fact": info.rows_pruned / (fact_rows * len(names)),
            "stage_rows_upper_bound": touchable,
        }
    return out


def bench_packed_accounting(db: Database) -> dict:
    """Modeled scan bytes with and without the packed twin (ops layer)."""
    fact = db.table("lineorder")
    packed = {"lo_quantity": BitPackedColumn.pack(fact.column("lo_quantity"))}
    pred = col("lo_quantity").between(26, 35)
    rng = np.random.default_rng(DEFAULT_SEED)
    sparse = np.flatnonzero(rng.random(fact.num_rows) < 0.01).astype(np.int64)

    full_plain = cpu_select_pred(fact, pred)
    full_packed = cpu_select_pred(fact, pred, packed=packed)
    gather_plain = cpu_select_pred(fact, pred, sel=sparse)
    gather_packed = cpu_select_pred(fact, pred, sel=sparse, packed=packed)
    if not np.array_equal(full_plain.value, full_packed.value):
        raise AssertionError("packed full scan diverged")
    if not np.array_equal(gather_plain.value, gather_packed.value):
        raise AssertionError("packed gather diverged")
    return {
        "column": "lo_quantity",
        "bit_width": packed["lo_quantity"].bit_width,
        "full_scan": {
            "plain_bytes": full_plain.stats["scan_bytes"],
            "packed_bytes": full_packed.stats["scan_bytes"],
            "ratio": full_plain.stats["scan_bytes"] / full_packed.stats["scan_bytes"],
        },
        "sparse_gather": {
            "rows": int(sparse.size),
            "plain_bytes": gather_plain.stats["scan_bytes"],
            "packed_bytes": gather_packed.stats["scan_bytes"],
            "ratio": gather_plain.stats["scan_bytes"] / gather_packed.stats["scan_bytes"],
        },
    }


def run_zonemap_benchmark(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    engine: str = "cpu",
    seed: int = DEFAULT_SEED,
    repeats: int = 5,
) -> dict:
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    db = cluster_by(generate_ssb(scale_factor=scale_factor, seed=seed), "lineorder", "lo_orderdate")
    queries = [QUERIES[name] for name in QUERY_ORDER]
    return {
        "scale_factor": scale_factor,
        "seed": seed,
        "repeats": repeats,
        "clustered_by": "lo_orderdate",
        "fact_rows": db.table("lineorder").num_rows,
        "batch": bench_batch(db, queries, repeats),
        "flights": bench_flight_counters(db, engine),
        "packed_scan": bench_packed_accounting(db),
    }


def test_zonemap_scan(run_once):
    """pytest-benchmark entry point alongside the figure benchmarks."""
    result = run_once(run_zonemap_benchmark, scale_factor=0.01, repeats=2)
    batch = result["batch"]
    print("\nZone-map scan plane -- pruned+packed vs selection-vector baseline")
    print(
        f"batch x{batch['queries']}: {batch['baseline_wall_s'] * 1e3:.1f} ms -> "
        f"{batch['pruned_wall_s'] * 1e3:.1f} ms ({batch['speedup']:.2f}x)"
    )
    assert batch["speedup"] > 1.0


def main() -> None:
    parser = bench_arg_parser(
        __doc__.splitlines()[0],
        output="BENCH_zonemap.json",
        scale_factor=DEFAULT_SCALE_FACTOR,
        seed=DEFAULT_SEED,
        repeats=5,
        engine="cpu",
        min_speedup=True,
    )
    args = parser.parse_args()

    report = run_zonemap_benchmark(
        scale_factor=args.scale_factor, engine=args.engine, seed=args.seed, repeats=args.repeats
    )
    write_json_atomic(args.output, report)

    batch = report["batch"]
    print(f"wrote {args.output} (scale factor {args.scale_factor}, clustered by lo_orderdate)")
    print(
        f"  batch x{batch['queries']:<3}: {batch['baseline_wall_s'] * 1e3:8.1f} ms baseline -> "
        f"{batch['pruned_wall_s'] * 1e3:8.1f} ms pruned+packed ({batch['speedup']:.2f}x)"
    )
    for name, row in batch["per_query"].items():
        print(
            f"    {name}: {row['baseline_ms']:7.2f} -> {row['pruned_ms']:7.2f} ms "
            f"({row['speedup']:.2f}x)"
        )
    for flight, counters in report["flights"].items():
        print(
            f"  {flight}: {counters['zones_skipped']} zones skipped, "
            f"{counters['zones_evaluated']} evaluated, "
            f"{counters['rows_pruned']} rows pruned "
            f"({counters['pruned_fraction_of_fact']:.2f}x fact width per query)"
        )
    packed = report["packed_scan"]
    print(
        f"  packed {packed['column']} ({packed['bit_width']} bits): "
        f"full scan {packed['full_scan']['ratio']:.2f}x fewer bytes, "
        f"sparse gather {packed['sparse_gather']['ratio']:.1f}x fewer bytes"
    )

    if args.min_speedup is not None and batch["speedup"] < args.min_speedup:
        raise SystemExit(
            f"zone-map regression: batch speedup {batch['speedup']:.2f}x is below the "
            f"committed floor {args.min_speedup:.2f}x"
        )


if __name__ == "__main__":
    main()
