"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it executes
the workload at a reduced data scale, reports simulated runtimes on the
paper's hardware at the paper's data scale, and prints the regenerated
rows/series so the output can be compared against the paper (the comparison
is recorded in EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks print their regenerated tables; keep the output readable.
    config.option.benchmark_disable_gc = True


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiment functions already repeat enough simulated work internally;
    re-running them many times would only slow the suite down.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
