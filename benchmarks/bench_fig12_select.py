"""Figure 12: selection-scan microbenchmark across selectivities.

Paper reference points (N = 2^29): CPU Pred beats CPU If except at
selectivity 0; CPU SIMDPred tracks the bandwidth model; GPU If and GPU Pred
are indistinguishable; the average CPU/GPU ratio is 15.8, close to the 16.2
bandwidth ratio.
"""

from repro.analysis.experiments import run_figure12
from repro.analysis.report import format_series
from repro.hardware.presets import bandwidth_ratio

EXEC_N = 1 << 22


def test_figure12_selection_scan(run_once):
    result = run_once(run_figure12, exec_n=EXEC_N)
    series = result["series"]
    print("\nFigure 12 -- selection microbenchmark (simulated ms at N=2^29)")
    print(format_series(series, x_name="selectivity"))

    selectivities = sorted(series["cpu_simd_pred"])
    # Branching pays at intermediate selectivity.
    assert series["cpu_if"][0.5] > series["cpu_pred"][0.5]
    # SIMD selective stores are the fastest CPU variant everywhere.
    for s in selectivities:
        assert series["cpu_simd_pred"][s] <= series["cpu_pred"][s] * 1.01
        assert series["gpu_if"][s] == series["gpu_pred"][s]
    # Average CPU/GPU ratio close to the bandwidth ratio (paper: 15.8 vs 16.2).
    ratios = [series["cpu_simd_pred"][s] / series["gpu_pred"][s] for s in selectivities]
    average_ratio = sum(ratios) / len(ratios)
    assert abs(average_ratio - bandwidth_ratio()) / bandwidth_ratio() < 0.4
    print(f"average CPU SIMDPred / GPU ratio: {average_ratio:.1f} (bandwidth ratio {bandwidth_ratio():.1f})")
