"""Fault-recovery cost of the sharded plane: kill, unlink, raise -- and heal.

Chaos with a stopwatch, written to ``BENCH_faults.json``: the 13-query SSB
batch runs sharded on a warm pool, once clean and once per fault mode with
a deterministic :class:`~repro.faults.FaultPlan` injecting real failures
into the first query's shard tasks -- a worker ``kill`` (the pool is
poisoned and rebuilt), a segment ``unlink`` (the export is re-published at
fresh names), and a transient ``raise`` (tasks simply resubmitted).

1. **Parity first, parity last**: the batch's answers are captured from
   the monolithic plane before timing, and every faulted batch is asserted
   byte-identical to them after its recovery.  A recovery path that heals
   into the wrong answer fails the script before any JSON is written.
2. **Recovery latency**: each mode's batch wall clock minus the clean
   batch wall clock is the measured cost of absorbing that failure --
   dominated by pool rebuild for ``kill``, re-export for ``unlink``, and
   plain resubmission for ``raise``.
3. **Counter audit**: the per-mode counter delta (retries, pool rebuilds,
   failure fallbacks) is recorded, and the script asserts the injected
   faults actually fired and were actually recovered from -- a bench run
   where the chaos silently missed is a failure, not a fast result.

CI smoke::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --sf 0.01 \
        --repeats 2 --output BENCH_faults.json
"""

from __future__ import annotations

from bench_util import bench_arg_parser, time_best, write_json_atomic
from repro.api import Session
from repro.faults import SHARD_TASK, FaultPlan, FaultPoint, activate_faults
from repro.ssb.generator import generate_ssb
from repro.ssb.queries import QUERIES, QUERY_ORDER

DEFAULT_SCALE_FACTOR = 0.02
DEFAULT_SEED = 7
DEFAULT_SHARDS = 2

#: The fault modes measured, in report order.
MODES = ("raise", "unlink", "kill")


def _counters_dict(delta) -> dict:
    return {
        "shard_queries": delta.shard_queries,
        "shard_retries": delta.shard_retries,
        "pool_rebuilds": delta.pool_rebuilds,
        "failure_fallbacks": delta.failure_fallbacks,
    }


def run_fault_recovery_benchmark(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    seed: int = DEFAULT_SEED,
    shards: int = DEFAULT_SHARDS,
    repeats: int = 2,
    start_method: "str | None" = None,
) -> dict:
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if shards < 2:
        raise ValueError(f"shards must be >= 2 to exercise the shard plane, got {shards}")
    db = generate_ssb(scale_factor=scale_factor, seed=seed)
    queries = [QUERIES[name] for name in QUERY_ORDER]

    with Session(db, shard_start_method=start_method) as session:
        # Capture the ground truth from the monolithic plane, and warm
        # everything the faulted runs will lean on (zone statistics, the
        # shared-memory export, the worker pool), so every timed batch
        # measures steady-state dispatch plus -- for the faulted ones --
        # exactly the recovery work.
        expected = {
            query.name: session.run(query, cache=False).records for query in queries
        }

        def batch() -> list:
            return [session.run(query, shards=shards, cache=False) for query in queries]

        for result, query in zip(batch(), queries):  # parity gate + pool warmup
            if result.records != expected[query.name]:
                raise AssertionError(f"sharded plane diverged on {query.name}")

        clean_s = time_best(batch, repeats)

        modes = {}
        for mode in MODES:
            plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode=mode, times=2)])
            before = session.counters()
            with activate_faults(plan):
                faulted_s = time_best(batch, 1)  # one-shot: the plan fires once
            delta = session.counters() - before
            recovered = delta.shard_retries + delta.pool_rebuilds + delta.failure_fallbacks
            if plan.fired(SHARD_TASK) < 1:
                raise AssertionError(f"{mode}: the fault plan never fired")
            if recovered < 1:
                raise AssertionError(f"{mode}: no recovery is visible in the counters")
            # Post-fault parity: the healed plane still answers byte-identically.
            for result, query in zip(batch(), queries):
                if result.records != expected[query.name]:
                    raise AssertionError(f"{mode}: post-recovery divergence on {query.name}")
            modes[mode] = {
                "batch_s": faulted_s,
                "recovery_overhead_s": faulted_s - clean_s,
                "faults_fired": plan.fired(SHARD_TASK),
                "counters": _counters_dict(delta),
                "post_fault_parity": True,
            }

    return {
        "benchmark": "fault_recovery",
        "scale_factor": scale_factor,
        "seed": seed,
        "shards": shards,
        "start_method": start_method,
        "repeats": repeats,
        "queries": [query.name for query in queries],
        "clean_batch_s": clean_s,
        "modes": modes,
    }


def main() -> None:
    parser = bench_arg_parser(
        "Measure sharded-plane recovery latency under injected faults",
        output="BENCH_faults.json",
        scale_factor=DEFAULT_SCALE_FACTOR,
        seed=DEFAULT_SEED,
        repeats=2,
    )
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--start-method", default=None, choices=("fork", "spawn"))
    args = parser.parse_args()

    report = run_fault_recovery_benchmark(
        scale_factor=args.scale_factor,
        seed=args.seed,
        shards=args.shards,
        repeats=args.repeats,
        start_method=args.start_method,
    )
    write_json_atomic(args.output, report)
    print(f"clean 13-query batch (shards={report['shards']}): {report['clean_batch_s'] * 1e3:.1f} ms")
    for mode, entry in report["modes"].items():
        counters = entry["counters"]
        print(
            f"  {mode:>6}: batch {entry['batch_s'] * 1e3:.1f} ms "
            f"(+{entry['recovery_overhead_s'] * 1e3:.1f} ms), "
            f"fired {entry['faults_fired']}, retries {counters['shard_retries']}, "
            f"rebuilds {counters['pool_rebuilds']}, fallbacks {counters['failure_fallbacks']}"
        )
    print(f"report written to {args.output}")


if __name__ == "__main__":
    main()
