"""Ablation benches for the paper's discussion / future-work items.

* Radix (partitioned) join vs the no-partitioning join (Section 4.3
  discussion): the radix join wins for a single large join but needs the
  whole input up front.
* Bit-packed compression (Section 5.5): how much scan traffic the SSB
  columns would save.
* Multi-GPU capacity planning (Section 5.5): how many GPUs SSB needs at
  growing scale factors and the projected speedup.
* Cost-based join ordering (Section 5.3): the planner picks the paper's
  supplier-first plan for q2.1.
"""

import numpy as np

from repro.analysis.capacity import MultiGPUConfig, gpus_needed, placement_advice
from repro.analysis.report import format_table
from repro.engine.planner import JoinOrderPlanner
from repro.ops.cpu import cpu_hash_join_build, cpu_hash_join_probe, cpu_radix_join
from repro.ssb import QUERIES, generate_ssb
from repro.ssb.schema import ssb_table_rows
from repro.storage.compression import BitPackedColumn


def test_ablation_radix_vs_no_partitioning_join(run_once):
    rng = np.random.default_rng(17)
    build_rows, probe_rows = 1 << 16, 1 << 20
    build_keys = np.arange(build_rows)
    build_values = rng.integers(0, 1000, build_rows)
    probe_keys = rng.integers(0, build_rows, probe_rows)
    probe_values = rng.integers(0, 1000, probe_rows)

    def build_rows_():
        table, build_result = cpu_hash_join_build(build_keys, build_values)
        no_partition = cpu_hash_join_probe(probe_keys, probe_values, table, "scalar")
        radix = cpu_radix_join(build_keys, build_values, probe_keys, probe_values)
        assert abs(no_partition.value - radix.value) < 1e-3
        return [
            {"algorithm": "no-partitioning join (build+probe)",
             "ms": build_result.milliseconds + no_partition.milliseconds,
             "pipelineable": "yes"},
            {"algorithm": f"radix join ({int(radix.stat('radix_bits'))}-bit partitioning)",
             "ms": radix.milliseconds,
             "pipelineable": "no (needs full input)"},
        ]

    rows = run_once(build_rows_)
    print("\nAblation -- partitioned (radix) join vs no-partitioning join, single join")
    print(format_table(rows, floatfmt=".3f"))


def test_ablation_compression(run_once):
    db = generate_ssb(scale_factor=0.05, seed=5)

    def build_rows_():
        lineorder = db["lineorder"]
        rows = []
        for column_name in ("lo_discount", "lo_quantity", "lo_suppkey", "lo_orderdate"):
            packed = BitPackedColumn.pack(lineorder.column(column_name))
            rows.append(
                {
                    "column": column_name,
                    "bit_width": packed.bit_width,
                    "compression_ratio": packed.compression_ratio,
                    "scan_speedup": packed.scan_speedup(),
                }
            )
        return rows

    rows = run_once(build_rows_)
    print("\nAblation -- bit-packed compression of SSB fact columns (Section 5.5)")
    print(format_table(rows, floatfmt=".2f"))
    assert all(row["compression_ratio"] >= 1.0 for row in rows)
    assert any(row["compression_ratio"] > 2.0 for row in rows)


def test_ablation_multi_gpu_capacity(run_once):
    def build_rows_():
        rows = []
        for scale_factor in (20, 100, 400, 1000):
            # ~13 GB at SF 20 per the paper; scale linearly with the fact table.
            dataset_bytes = 13 * 2**30 * ssb_table_rows("lineorder", scale_factor) / ssb_table_rows("lineorder", 20)
            required = gpus_needed(dataset_bytes)
            advice = placement_advice(dataset_bytes, available_gpus=8)
            config = MultiGPUConfig(num_gpus=min(required, 8))
            rows.append(
                {
                    "scale_factor": scale_factor,
                    "dataset_gb": dataset_bytes / 2**30,
                    "gpus_needed": required,
                    "strategy_with_8_gpus": advice.strategy,
                    "projected_speedup": config.speedup_over_cpu() if advice.strategy == "gpu-resident" else 1.0,
                }
            )
        return rows

    rows = run_once(build_rows_)
    print("\nAblation -- multi-GPU capacity planning for growing SSB datasets (Section 5.5)")
    print(format_table(rows, floatfmt=".1f"))
    assert rows[0]["strategy_with_8_gpus"] == "gpu-resident"
    assert rows[-1]["gpus_needed"] > 8


def test_ablation_join_order_planner(run_once):
    db = generate_ssb(scale_factor=0.05, seed=5)
    planner = JoinOrderPlanner(db)

    def build_rows_():
        choices = planner.enumerate(QUERIES["q2.1"], fact_rows=120_000_000)
        return [
            {"join_order": " -> ".join(choice.join_order), "estimated_ms": choice.estimated_seconds * 1e3}
            for choice in choices
        ]

    rows = run_once(build_rows_)
    print("\nAblation -- cost-based join ordering for q2.1 (Section 5.3)")
    print(format_table(rows, floatfmt=".2f"))
    # The chosen plan applies a filtered dimension first, never the unfiltered date join.
    assert not rows[0]["join_order"].startswith("date")
    assert rows[0]["estimated_ms"] <= rows[-1]["estimated_ms"]
