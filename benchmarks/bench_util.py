"""Shared helpers for the standalone benchmark scripts."""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from typing import Callable


def bench_arg_parser(
    description: str,
    *,
    output: str,
    scale_factor: float = 0.05,
    seed: int = 7,
    repeats: "int | None" = 3,
    engine: "str | None" = None,
    min_speedup: bool = False,
) -> argparse.ArgumentParser:
    """The common CLI surface of the JSON-writing benchmark scripts.

    Every report-writing bench takes the same quartet -- scale factor,
    seed, repeats, output path -- plus, where applicable, an engine choice
    and a ``--min-speedup`` CI floor; this factory declares them once with
    the caller's defaults, and each script adds its own extra flags on the
    returned parser.  ``--sf`` is accepted as shorthand for
    ``--scale-factor``.  Pass ``repeats=None`` / ``engine=None`` to omit
    those flags for scripts that measure differently (e.g. the duration-
    driven service bench).
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale-factor", "--sf", dest="scale_factor", type=float, default=scale_factor
    )
    if engine is not None:
        parser.add_argument("--engine", default=engine)
    parser.add_argument("--seed", type=int, default=seed)
    if repeats is not None:
        parser.add_argument("--repeats", type=int, default=repeats)
    parser.add_argument("--output", default=output)
    if min_speedup:
        parser.add_argument(
            "--min-speedup",
            type=float,
            default=None,
            help="fail (exit 1) if the measured speedup drops below this floor",
        )
    return parser


def time_best(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``.

    The standard measurement loop of every benchmark here: call the
    zero-argument closure ``repeats`` times and keep the minimum
    :func:`time.perf_counter` delta -- the run least disturbed by the
    machine, which is the stable statistic for before/after comparisons.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def write_json_atomic(path: str, payload: dict, **json_kwargs) -> None:
    """Write ``payload`` as JSON to ``path`` atomically.

    The report lands in a temporary file in the target directory and is
    moved into place with :func:`os.replace`, so a reader (CI artifact
    upload, a diff against the committed ``BENCH_*.json``) never observes a
    half-written file, and an interrupted run leaves the previous report
    intact rather than a truncated one.
    """
    json_kwargs.setdefault("indent", 2)
    json_kwargs.setdefault("sort_keys", True)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".bench-", suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, **json_kwargs)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
