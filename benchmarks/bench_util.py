"""Shared helpers for the standalone benchmark scripts."""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Callable


def time_best(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()``.

    The standard measurement loop of every benchmark here: call the
    zero-argument closure ``repeats`` times and keep the minimum
    :func:`time.perf_counter` delta -- the run least disturbed by the
    machine, which is the stable statistic for before/after comparisons.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def write_json_atomic(path: str, payload: dict, **json_kwargs) -> None:
    """Write ``payload`` as JSON to ``path`` atomically.

    The report lands in a temporary file in the target directory and is
    moved into place with :func:`os.replace`, so a reader (CI artifact
    upload, a diff against the committed ``BENCH_*.json``) never observes a
    half-written file, and an interrupted run leaves the previous report
    intact rather than a truncated one.
    """
    json_kwargs.setdefault("indent", 2)
    json_kwargs.setdefault("sort_keys", True)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".bench-", suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, **json_kwargs)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
