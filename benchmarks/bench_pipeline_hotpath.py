"""Hot-path wall-clock benchmarks for the selection-vector data plane.

Three head-to-head measurements, written to ``BENCH_pipeline.json``:

1. **Masks vs selection vectors** -- the 13 canonical SSB queries executed
   through the full-width boolean-mask reference executor
   (``execute_query_monolithic``, the data plane the staged pipeline used
   before this change) and through the late-materialization selection-vector
   pipeline (``execute_query``).  Answers are asserted identical; only the
   wall clock differs.
2. **``np.unique(axis=0)`` vs packed-radix group keys** -- the grouped
   aggregate's old row-tuple sort against ``factorize_group_keys`` on
   SSB-shaped key columns (years x brands, and a 3-column city rollup).
3. **Serial vs morsel-parallel batch** -- a 26-query batch through
   ``Session.run_many``: plain serial, shared-build serial, and
   ``workers=4`` (pool sized to the hardware) with the lock-protected
   shared :class:`~repro.engine.cache.BuildArtifactCache`; asserts the
   exactly-once build guarantee (one miss per distinct artifact).

Run standalone (CI smoke uses the defaults)::

    PYTHONPATH=src python benchmarks/bench_pipeline_hotpath.py --scale-factor 0.05
"""

from __future__ import annotations

import numpy as np

from bench_util import bench_arg_parser, time_best, write_json_atomic
from repro.api import Session
from repro.engine.physical import lower_query
from repro.engine.plan import execute_query, execute_query_monolithic, factorize_group_keys
from repro.ssb.generator import generate_ssb
from repro.ssb.queries import QUERIES, QUERY_ORDER

DEFAULT_SCALE_FACTOR = 0.05
DEFAULT_ENGINE = "cpu"
DEFAULT_WORKERS = 4


def bench_selection_vectors(db, queries, repeats: int) -> dict:
    """13-query batch: full-width mask data plane vs selection vectors."""
    mask_results = [execute_query_monolithic(db, q) for q in queries]
    sel_results = [execute_query(db, q) for q in queries]
    for (mask_value, mask_profile), (sel_value, sel_profile), query in zip(
        mask_results, sel_results, queries
    ):
        if mask_value != sel_value or mask_profile != sel_profile:
            raise AssertionError(f"data planes diverged on {query.name}")

    mask_s = time_best(lambda: [execute_query_monolithic(db, q) for q in queries], repeats)
    sel_s = time_best(lambda: [execute_query(db, q) for q in queries], repeats)
    return {
        "queries": len(queries),
        "mask_wall_s": mask_s,
        "selection_vector_wall_s": sel_s,
        "speedup": mask_s / sel_s if sel_s else float("inf"),
    }


def bench_packed_aggregation(scale_factor: float, repeats: int, seed: int) -> dict:
    """Grouped-key factorization: row-tuple np.unique vs packed radix keys."""
    rng = np.random.default_rng(seed)
    rows = max(int(6_000_000 * scale_factor * 0.25), 20_000)
    shapes = {
        # q2.x-shaped: year x brand (7 x 1000 domain).
        "year_brand": [rng.integers(1992, 1999, size=rows), rng.integers(0, 1000, size=rows)],
        # q3.x-shaped: city x city x year.
        "city_city_year": [
            rng.integers(0, 250, size=rows),
            rng.integers(0, 250, size=rows),
            rng.integers(1992, 1999, size=rows),
        ],
    }
    out = {"rows": rows, "cases": {}}
    for name, key_arrays in shapes.items():
        stacked = np.stack([a.astype(np.int64) for a in key_arrays], axis=1)
        unique_s = time_best(
            lambda stacked=stacked: np.unique(stacked, axis=0, return_inverse=True), repeats
        )
        packed_s = time_best(
            lambda key_arrays=key_arrays: factorize_group_keys(key_arrays), repeats
        )
        ref_unique, ref_inverse = np.unique(stacked, axis=0, return_inverse=True)
        unique, inverse = factorize_group_keys(key_arrays)
        if not (
            np.array_equal(unique, ref_unique)
            and np.array_equal(np.asarray(inverse).ravel(), np.asarray(ref_inverse).ravel())
        ):
            raise AssertionError(f"packed factorization diverged on {name}")
        out["cases"][name] = {
            "groups": int(unique.shape[0]),
            "np_unique_wall_s": unique_s,
            "packed_wall_s": packed_s,
            "speedup": unique_s / packed_s if packed_s else float("inf"),
        }
    return out


def bench_batch_execution(db, queries, engine: str, workers: int, repeats: int) -> dict:
    """26-query batch: serial vs shared builds vs morsel-parallel workers."""
    batch = queries * 2

    def timed(**kwargs) -> tuple[float, Session]:
        state: dict = {}

        def once():
            # Fresh session each repeat: the execution memo must not let
            # later repeats replay the first one's answers.  Construction
            # is a few empty-cache allocations -- noise next to the batch,
            # and identical on every side of the comparison.
            state["session"] = Session(db, cache=False)
            state["session"].run_many(batch, engine=engine, **kwargs)

        best = time_best(once, repeats)
        return best, state["session"]

    serial_s, _ = timed()
    shared_s, _ = timed(share_builds=True)
    threaded_s, threaded_session = timed(share_builds=True, workers=workers)

    info = threaded_session.cache_info("builds")
    distinct = len({b.key for q in batch for b in lower_query(q).builds})
    if info.misses != distinct:
        raise AssertionError(
            f"exactly-once violated: {info.misses} build misses for {distinct} distinct artifacts"
        )
    return {
        "queries": len(batch),
        "workers_requested": workers,
        "serial_wall_s": serial_s,
        "shared_builds_wall_s": shared_s,
        "workers_wall_s": threaded_s,
        "speedup_shared_vs_serial": serial_s / shared_s if shared_s else float("inf"),
        "speedup_workers_vs_serial": serial_s / threaded_s if threaded_s else float("inf"),
        "distinct_builds": distinct,
        "build_cache": {"hits": info.hits, "misses": info.misses, "size": info.size},
    }


def run_hotpath_benchmark(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    engine: str = DEFAULT_ENGINE,
    workers: int = DEFAULT_WORKERS,
    seed: int = 7,
    repeats: int = 3,
) -> dict:
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    db = generate_ssb(scale_factor=scale_factor, seed=seed)
    queries = [QUERIES[name] for name in QUERY_ORDER]
    return {
        "scale_factor": scale_factor,
        "engine": engine,
        "repeats": repeats,
        "selection_vectors": bench_selection_vectors(db, queries, repeats),
        "aggregation": bench_packed_aggregation(scale_factor, repeats, seed),
        "batch": bench_batch_execution(db, queries, engine, workers, repeats),
    }


def main() -> None:
    parser = bench_arg_parser(
        __doc__,
        output="BENCH_pipeline.json",
        scale_factor=DEFAULT_SCALE_FACTOR,
        engine=DEFAULT_ENGINE,
        repeats=3,
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--min-selection-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the selection-vector speedup drops below this floor",
    )
    args = parser.parse_args()

    report = run_hotpath_benchmark(
        scale_factor=args.scale_factor,
        engine=args.engine,
        workers=args.workers,
        seed=args.seed,
        repeats=args.repeats,
    )
    write_json_atomic(args.output, report)

    sel = report["selection_vectors"]
    batch = report["batch"]
    print(f"wrote {args.output} (scale factor {args.scale_factor}, engine {args.engine})")
    print(
        f"  selection vectors : {sel['mask_wall_s'] * 1e3:8.1f}ms masks -> "
        f"{sel['selection_vector_wall_s'] * 1e3:8.1f}ms  ({sel['speedup']:.2f}x)"
    )
    for name, case in report["aggregation"]["cases"].items():
        print(
            f"  group-by {name:<14}: {case['np_unique_wall_s'] * 1e3:8.1f}ms unique -> "
            f"{case['packed_wall_s'] * 1e3:8.1f}ms packed ({case['speedup']:.2f}x)"
        )
    print(
        f"  batch x{batch['queries']:<3}        : {batch['serial_wall_s'] * 1e3:8.1f}ms serial -> "
        f"{batch['workers_wall_s'] * 1e3:8.1f}ms workers={batch['workers_requested']} "
        f"({batch['speedup_workers_vs_serial']:.2f}x, "
        f"{batch['distinct_builds']} builds constructed once)"
    )

    if args.min_selection_speedup is not None and sel["speedup"] < args.min_selection_speedup:
        raise SystemExit(
            f"data-plane regression: selection-vector speedup {sel['speedup']:.2f}x is below "
            f"the committed floor {args.min_selection_speedup:.2f}x"
        )


if __name__ == "__main__":
    main()
