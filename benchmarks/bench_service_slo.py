"""Tail-latency SLOs for the concurrent query service, below and above saturation.

Drives the :class:`~repro.service.QueryService` with the
:class:`~repro.workload.WorkloadDriver` at two calibrated request rates and
writes ``BENCH_service.json`` plus the Locust-style ``run_table.csv``:

1. **Calibrate** -- each class of the mix (the 13 canonical SSB queries plus
   one ad-hoc builder query) is answered once through the service and once
   directly through ``Session.run``; the answers must match exactly (the
   service adds scheduling, never execution semantics).  The warm serial
   mean latency then anchors the two operating points: *below* saturation
   at ``0.4x`` the single-stream capacity ``1 / mean``, *above* at
   ``max(3, 1.5 x max_inflight)`` times it -- past capacity even if the
   worker pool scaled perfectly.
2. **Below saturation** -- open-loop Poisson replay.  Every request must be
   admitted and answered: zero rejections, zero timeouts, zero errors.
3. **Above saturation** -- same mix, ~7x the rate, against a small bounded
   queue.  Overload must degrade *gracefully*: admission control rejects
   with typed :class:`~repro.service.OverloadError` (``rejected > 0``),
   nothing errors, and the requests that were admitted still answer inside
   the SLO -- by default ``margin x (queue_depth + max_inflight) x mean``,
   the drain time of a full queue through a GIL-serialized pool, which is
   exactly what a bounded queue is for: the queue caps the tail, the
   rejections absorb the excess.

Run standalone (CI smoke uses SF 0.01 and a p99 sanity floor)::

    PYTHONPATH=src python benchmarks/bench_service_slo.py --scale-factor 0.01
"""

from __future__ import annotations

import asyncio

from bench_util import bench_arg_parser, time_best, write_json_atomic
from repro.api import Q, Session
from repro.service import QueryService
from repro.ssb.generator import generate_ssb
from repro.workload import QueryClass, WorkloadDriver, WorkloadSpec
from repro.workload.report import ALL_CLASSES, write_run_table

DEFAULT_SCALE_FACTOR = 0.01
DEFAULT_ENGINE = "cpu"
DEFAULT_MAX_INFLIGHT = 2
DEFAULT_QUEUE_DEPTH = 8
DEFAULT_SLO_MARGIN = 5.0

#: The ad-hoc class replayed next to the 13 canonical queries: exercises the
#: builder path through the service, not just the frozen SSB specs.
ADHOC_NAME = "adhoc_q"


def adhoc_query():
    return (
        Q("lineorder")
        .filter("lo_discount", "between", (4, 6))
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year")
        .agg("count")
    )


def build_spec(args, target_rps: float, warmup: bool = True) -> WorkloadSpec:
    return WorkloadSpec.ssb_mix(
        extra=(QueryClass(ADHOC_NAME, adhoc_query()),),
        arrival="poisson",
        target_rps=target_rps,
        duration_s=args.duration,
        repetitions=args.repetitions,
        seed=args.seed,
        engine=args.engine,
        warmup=warmup,
    )


def calibrate(session: Session, spec: WorkloadSpec, engine: str, repeats: int = 3) -> dict:
    """Differential check + warm serial mean latency per request.

    Runs every class through a one-request-at-a-time service and directly
    through the session; identical answers are a precondition for trusting
    anything timed afterwards.  The serial mean over the whole mix is the
    capacity anchor: one stream answers ``1 / mean`` requests per second.
    """

    async def through_service() -> dict:
        values = {}
        async with QueryService(
            session, engine=engine, max_inflight=1, max_queue_depth=len(spec.classes)
        ) as service:
            for qclass in spec.classes:
                submitted = await service.submit(qclass.query, class_tag=qclass.name, timeout=None)
                values[qclass.name] = submitted.result
        return values

    served = asyncio.run(through_service())
    for qclass in spec.classes:
        direct = session.run(qclass.query, engine=engine)
        answer = served[qclass.name]
        if answer.value != direct.value or answer.simulated_ms != direct.simulated_ms:
            raise AssertionError(
                f"service answer diverged from Session.run on class {qclass.name!r}"
            )

    queries = [qclass.query for qclass in spec.classes]
    mix_s = time_best(lambda: [session.run(q, engine=engine) for q in queries], repeats)
    mean_s = mix_s / len(queries)
    return {
        "classes": len(queries),
        "differential_ok": True,
        "mix_wall_s": mix_s,
        "mean_request_s": mean_s,
        "serial_capacity_rps": 1.0 / mean_s,
    }


def summarize_run(report) -> dict:
    """The per-run payload for ``BENCH_service.json``."""
    summary = report.summary()
    aggregate = summary["classes"][ALL_CLASSES]
    return {
        "target_rps": report.spec.target_rps,
        "aggregate": aggregate,
        "per_class": {
            tag: entry for tag, entry in summary["classes"].items() if tag != ALL_CLASSES
        },
        "service": [result.service for result in report.repetitions],
        "errors": list(report.errors),
    }


def run_slo_benchmark(args) -> tuple[dict, list, list]:
    """Calibrate, replay both operating points, evaluate the SLO checks.

    Returns ``(report_payload, run_table_rows, failures)`` -- artifacts are
    always written in full so a red CI run still carries the evidence.
    """
    db = generate_ssb(scale_factor=args.scale_factor, seed=args.seed)
    # cache=False: the execution memo would answer every repeated class from
    # memory and the "load" would be a memo lookup.  Build artifacts and
    # zone maps stay shared -- that is the warm-server situation.
    session = Session(db, cache=False)

    spec_probe = build_spec(args, target_rps=1.0)
    cal = calibrate(session, spec_probe, args.engine)
    capacity = cal["serial_capacity_rps"]
    below_rps = args.below_rps if args.below_rps else 0.4 * capacity
    above_factor = max(3.0, 1.5 * args.max_inflight)
    above_rps = args.above_rps if args.above_rps else above_factor * capacity
    slo_ms = (
        args.slo_ms
        if args.slo_ms
        else args.slo_margin
        * (args.queue_depth + args.max_inflight)
        * cal["mean_request_s"]
        * 1e3
    )

    service_config = {
        "max_inflight": args.max_inflight,
        "max_queue_depth": args.queue_depth,
        "overload": "reject",
    }
    below_report = WorkloadDriver(
        session, build_spec(args, target_rps=below_rps), service_config=service_config
    ).run(run="below_saturation")
    above_report = WorkloadDriver(
        session, build_spec(args, target_rps=above_rps), service_config=service_config
    ).run(run="above_saturation")

    failures: list[str] = []

    def check(name: str, ok: bool, detail: str) -> dict:
        if not ok:
            failures.append(f"{name}: {detail}")
        return {"ok": ok, "detail": detail}

    below = summarize_run(below_report)
    above = summarize_run(above_report)
    below_agg = below["aggregate"]
    above_agg = above["aggregate"]

    refused_below = (
        below_agg["rejected"] + below_agg["shed"] + below_agg["timed_out"] + below_agg["failed"]
    )
    above_p99_max = above_agg["p99_ms"]["max"] if above_agg["p99_ms"] else float("inf")
    below_p99_mean = below_agg["p99_ms"]["mean"] if below_agg["p99_ms"] else 0.0
    checks = {
        "below_all_admitted": check(
            "below_all_admitted",
            refused_below == 0 and not below["errors"],
            f"{refused_below} refused/failed of {below_agg['requests']} at "
            f"{below_rps:.0f} rps (errors: {below['errors'] or 'none'})",
        ),
        "above_rejects_cleanly": check(
            "above_rejects_cleanly",
            above_agg["rejected"] > 0 and above_agg["failed"] == 0 and not above["errors"],
            f"{above_agg['rejected']} rejected, {above_agg['failed']} failed of "
            f"{above_agg['requests']} at {above_rps:.0f} rps",
        ),
        "above_admitted_within_slo": check(
            "above_admitted_within_slo",
            above_p99_max <= slo_ms,
            f"admitted p99 {above_p99_max:.1f}ms vs SLO {slo_ms:.1f}ms",
        ),
    }
    if args.min_p99_ms is not None:
        checks["p99_sanity_floor"] = check(
            "p99_sanity_floor",
            below_p99_mean >= args.min_p99_ms,
            f"below-saturation p99 {below_p99_mean:.3f}ms vs floor {args.min_p99_ms}ms "
            "(a lower value means the clock is not measuring real work)",
        )

    payload = {
        "scale_factor": args.scale_factor,
        "engine": args.engine,
        "duration_s": args.duration,
        "repetitions": args.repetitions,
        "seed": args.seed,
        "service": service_config,
        "calibration": cal,
        "slo_ms": slo_ms,
        "below_saturation": below,
        "above_saturation": above,
        "checks": checks,
    }
    rows = below_report.rows() + above_report.rows()
    return payload, rows, failures


def main(argv: "list[str] | None" = None) -> None:
    parser = bench_arg_parser(
        __doc__.splitlines()[0],
        output="BENCH_service.json",
        scale_factor=DEFAULT_SCALE_FACTOR,
        engine=DEFAULT_ENGINE,
        repeats=None,
    )
    parser.add_argument("--duration", type=float, default=1.5, help="seconds per repetition")
    parser.add_argument("--repetitions", type=int, default=2)
    parser.add_argument("--max-inflight", type=int, default=DEFAULT_MAX_INFLIGHT)
    parser.add_argument("--queue-depth", type=int, default=DEFAULT_QUEUE_DEPTH)
    parser.add_argument(
        "--below-rps", type=float, default=None, help="override the calibrated below-saturation rate"
    )
    parser.add_argument(
        "--above-rps", type=float, default=None, help="override the calibrated above-saturation rate"
    )
    parser.add_argument(
        "--slo-ms", type=float, default=None, help="override the derived admitted-p99 SLO"
    )
    parser.add_argument("--slo-margin", type=float, default=DEFAULT_SLO_MARGIN)
    parser.add_argument(
        "--min-p99-ms",
        type=float,
        default=None,
        help="fail if the below-saturation p99 lands under this floor (clock sanity)",
    )
    parser.add_argument("--run-table", default="run_table.csv")
    args = parser.parse_args(argv)

    payload, rows, failures = run_slo_benchmark(args)
    write_json_atomic(args.output, payload)
    write_run_table(args.run_table, rows)

    cal = payload["calibration"]
    below = payload["below_saturation"]
    above = payload["above_saturation"]
    print(f"wrote {args.output} and {args.run_table} (scale factor {args.scale_factor})")
    print(
        f"  calibration : {cal['mean_request_s'] * 1e3:.2f} ms/request serial, "
        f"capacity ~{cal['serial_capacity_rps']:.0f} rps, SLO {payload['slo_ms']:.1f} ms"
    )
    for name, run in (("below", below), ("above", above)):
        agg = run["aggregate"]
        p99 = agg["p99_ms"]["mean"] if agg["p99_ms"] else float("nan")
        print(
            f"  {name:<5} @ {run['target_rps']:7.1f} rps: {agg['requests']} requests, "
            f"{agg['completed']} ok, {agg['rejected']} rejected, {agg['failed']} failed, "
            f"p99 {p99:.1f} ms, {agg['throughput_rps']['mean']:.1f} rps served"
        )
    for name, entry in payload["checks"].items():
        print(f"  [{'PASS' if entry['ok'] else 'FAIL'}] {name}: {entry['detail']}")

    if failures:
        raise SystemExit("SLO benchmark failed:\n  " + "\n  ".join(failures))


if __name__ == "__main__":
    main()
