"""Memory access patterns and simple region/bandwidth accounting.

The cost models in the paper charge for memory traffic in two ways:

* **Sequential (streaming) traffic** -- bytes divided by bandwidth.
* **Random traffic** -- every access pays for a full cache line / memory
  transaction, so ``n_accesses * line_bytes`` divided by the bandwidth of
  whichever level services the access.

This module provides the small value types used to express that distinction,
plus a :class:`MemoryRegion` helper the storage layer uses to track which
device a column currently resides on (host DRAM or GPU global memory) so the
coprocessor engine knows what has to cross PCIe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessPattern(enum.Enum):
    """How a region of memory is touched by an operator."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"
    STRIDED = "strided"


class Device(enum.Enum):
    """Where a piece of data physically resides."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous allocation on a device.

    The reproduction does not manage real device memory, but the engines need
    to reason about residency (Section 3.1: the coprocessor model must ship
    columns over PCIe; the GPU-resident model does not) and about capacity
    (does the working set fit in 32 GB of HBM?).
    """

    device: Device
    size_bytes: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("region size must be non-negative")

    def on_gpu(self) -> bool:
        return self.device is Device.GPU

    def on_cpu(self) -> bool:
        return self.device is Device.CPU


def transfer_time_seconds(num_bytes: float, bandwidth_bytes_per_s: float) -> float:
    """Time to stream ``num_bytes`` at ``bandwidth_bytes_per_s``.

    Raises ``ValueError`` for a non-positive bandwidth rather than silently
    returning infinity -- a zero bandwidth always indicates a mis-configured
    spec.
    """
    if bandwidth_bytes_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    return num_bytes / bandwidth_bytes_per_s


def random_access_bytes(num_accesses: float, line_bytes: int) -> float:
    """Bytes actually moved by ``num_accesses`` random line-granular accesses."""
    if num_accesses < 0:
        raise ValueError("access count must be non-negative")
    if line_bytes <= 0:
        raise ValueError("line size must be positive")
    return num_accesses * line_bytes
