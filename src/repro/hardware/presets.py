"""Concrete hardware specifications used throughout the reproduction.

The values follow Table 2 of the paper ("Hardware Specifications") plus the
measured PCIe bandwidth (12.8 GBps) and the Table 3 pricing.  Secondary
microarchitectural parameters that the paper does not list explicitly
(latencies, atomic throughput, register counts) use the public V100 /
Broadwell-E numbers; they only affect second-order terms of the simulation.
"""

from __future__ import annotations

from repro.hardware.specs import (
    GB,
    GBPS,
    KB,
    MB,
    TBPS,
    CacheLevelSpec,
    CPUSpec,
    GPUSpec,
    InstancePricing,
    Platform,
)

#: Intel i7-6900 (8 cores, 16 SMT threads, AVX2) -- the paper's CPU platform.
INTEL_I7_6900 = CPUSpec(
    model="Intel i7-6900",
    cores=8,
    threads_per_core=2,
    frequency_hz=3.2e9,
    simd_width_bits=256,
    dram_capacity_bytes=64 * GB,
    dram_read_bandwidth=53 * GBPS,
    dram_write_bandwidth=55 * GBPS,
    caches=(
        CacheLevelSpec(
            name="L1",
            capacity_bytes=32 * KB,
            line_bytes=64,
            latency_ns=1.2,
            shared=False,
            associativity=8,
        ),
        CacheLevelSpec(
            name="L2",
            capacity_bytes=256 * KB,
            line_bytes=64,
            latency_ns=3.8,
            shared=False,
            associativity=8,
        ),
        CacheLevelSpec(
            name="L3",
            capacity_bytes=20 * MB,
            line_bytes=64,
            bandwidth_bytes_per_s=157 * GBPS,
            latency_ns=18.0,
            shared=True,
            associativity=16,
        ),
    ),
    dram_latency_ns=90.0,
    branch_miss_penalty_ns=4.7,
    max_outstanding_misses=10,
    non_temporal_write_speedup=1.5,
)

#: Nvidia V100 (80 SMs, 32 GB HBM2) -- the paper's GPU platform.  The paper
#: quotes 880 GBps measured bandwidth, a 6 MB L2, 16 KB L1 per SM, 10.7 TBps
#: L1 bandwidth and 2.2 TBps L2 bandwidth.
NVIDIA_V100 = GPUSpec(
    model="Nvidia V100",
    num_sms=80,
    cores_per_sm=64,
    warp_size=32,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_thread_blocks_per_sm=32,
    registers_per_sm=65536,
    shared_memory_per_sm_bytes=96 * KB,
    frequency_hz=1.38e9,
    global_capacity_bytes=32 * GB,
    global_read_bandwidth=880 * GBPS,
    global_write_bandwidth=880 * GBPS,
    global_access_granularity_bytes=128,
    l2_capacity_bytes=6 * MB,
    l2_bandwidth=2.2 * TBPS,
    l1_capacity_per_sm_bytes=16 * KB,
    l1_bandwidth=10.7 * TBPS,
    shared_memory_bandwidth=10.7 * TBPS,
    global_latency_ns=400.0,
    l2_latency_ns=200.0,
    atomic_throughput_ops_per_s=2.5e9,
    pcie_bandwidth=12.8 * GBPS,
)

#: Measured bidirectional PCIe bandwidth between host and device (Section 5).
DEFAULT_PCIE = 12.8 * GBPS

#: AWS pricing used in Table 3.
AWS_R5_2XLARGE = InstancePricing(
    name="r5.2xlarge",
    rent_usd_per_hour=0.504,
    purchase_usd_low=2000.0,
    purchase_usd_high=5000.0,
    description="Skylake CPU, 8 cores -- the CPU platform's cloud equivalent",
)

AWS_P3_2XLARGE = InstancePricing(
    name="p3.2xlarge",
    rent_usd_per_hour=3.06,
    purchase_usd_low=2000.0 + 8500.0,
    purchase_usd_high=5000.0 + 8500.0,
    description="r5.2xlarge-class host plus one Nvidia V100",
)

#: The CPU+GPU platform the whole evaluation runs on.
PAPER_PLATFORM = Platform(
    cpu=INTEL_I7_6900,
    gpu=NVIDIA_V100,
    pcie_bandwidth=DEFAULT_PCIE,
    cpu_pricing=AWS_R5_2XLARGE,
    gpu_pricing=AWS_P3_2XLARGE,
    notes="Table 2 of the paper; PCIe bandwidth measured at 12.8 GBps.",
)


def bandwidth_ratio(cpu: CPUSpec = INTEL_I7_6900, gpu: GPUSpec = NVIDIA_V100) -> float:
    """GPU-to-CPU memory bandwidth ratio (the paper's ~16.2x reference line)."""
    return gpu.global_read_bandwidth / cpu.dram_read_bandwidth
