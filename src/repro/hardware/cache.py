"""Cache models.

Two complementary models are provided:

* :class:`AnalyticCacheModel` -- the closed-form hit-ratio model the paper
  uses in Section 4.3 and Section 5.3: a working set of size ``H`` probed
  uniformly at random against a cache of size ``S`` hits with probability
  ``min(S / H, 1)``.  This is what the cost models and the device simulators
  use, because it is exact for uniform random probing under LRU in the
  steady state and is independent of the data scale.
* :class:`SetAssociativeCache` -- a line-granular LRU set-associative cache
  simulator.  It is far too slow to run at the paper's data scale but it is
  used by the test suite to validate the analytic model (the paper cites
  Mei & Chu's finding that the V100 L2 behaves as an LRU set-associative
  cache) and by the ablation experiments on small traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.specs import CacheLevelSpec


@dataclass(frozen=True)
class AnalyticCacheModel:
    """Closed-form steady-state hit-ratio model for uniform random probing."""

    capacity_bytes: int
    line_bytes: int = 64

    def hit_ratio(self, working_set_bytes: float) -> float:
        """Probability a uniformly random probe hits this cache.

        Matches the paper's definition ``pi_K = min(S_K / H, 1)`` where
        ``S_K`` is the capacity of the level and ``H`` the hash-table
        (working-set) size.
        """
        if working_set_bytes <= 0:
            return 1.0
        return min(self.capacity_bytes / working_set_bytes, 1.0)

    def miss_ratio(self, working_set_bytes: float) -> float:
        """Complement of :meth:`hit_ratio`."""
        return 1.0 - self.hit_ratio(working_set_bytes)

    def fits(self, working_set_bytes: float) -> bool:
        """True when the working set fits entirely in the cache."""
        return working_set_bytes <= self.capacity_bytes


@dataclass
class CacheHierarchy:
    """An ordered sequence of analytic cache levels (L1 -> L2 -> ... -> LLC).

    ``effective_capacity_bytes`` optionally reduces the capacity of a level,
    which the full-query model of Section 5.3 needs: the part hash table
    competes for the GPU L2 with the supplier and date hash tables, leaving
    only ``6 MB - 0.3 MB = 5.7 MB`` available.
    """

    levels: list[AnalyticCacheModel]

    @classmethod
    def from_specs(cls, specs: tuple[CacheLevelSpec, ...] | list[CacheLevelSpec]) -> "CacheHierarchy":
        return cls(levels=[AnalyticCacheModel(s.capacity_bytes, s.line_bytes) for s in specs])

    def hit_level(self, working_set_bytes: float) -> int | None:
        """Index of the smallest level the working set fits in, or ``None``."""
        for index, level in enumerate(self.levels):
            if level.fits(working_set_bytes):
                return index
        return None

    def memory_access_probability(self, working_set_bytes: float) -> float:
        """Probability a random probe misses every level and reaches memory."""
        if not self.levels:
            return 1.0
        return self.levels[-1].miss_ratio(working_set_bytes)

    def last_level(self) -> AnalyticCacheModel:
        return self.levels[-1]


@dataclass
class CacheStats:
    """Hit/miss statistics collected by :class:`SetAssociativeCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class SetAssociativeCache:
    """A line-granular LRU set-associative cache simulator.

    Addresses are byte addresses; every access touches exactly one line
    (accesses are assumed not to straddle lines, which holds for the aligned
    4/8-byte accesses issued by the operators).
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64, associativity: int = 8) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("capacity, line size, and associativity must be positive")
        num_lines = capacity_bytes // line_bytes
        if num_lines == 0:
            raise ValueError("cache must hold at least one line")
        if num_lines % associativity != 0:
            # Round the associativity down to something that divides evenly;
            # fidelity matters more than matching an odd configuration.
            while num_lines % associativity != 0:
                associativity -= 1
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        # Each set is an ordered list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    @classmethod
    def from_spec(cls, spec: CacheLevelSpec) -> "SetAssociativeCache":
        return cls(spec.capacity_bytes, spec.line_bytes, spec.associativity)

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on a hit.

        A miss inserts the line, evicting the least recently used line of the
        set when the set is full.
        """
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.associativity:
            ways.pop(0)
        ways.append(tag)
        return False

    def access_many(self, addresses) -> CacheStats:
        """Access a sequence of byte addresses; returns the run's statistics."""
        run = CacheStats()
        for address in addresses:
            if self.access(int(address)):
                run.hits += 1
            else:
                run.misses += 1
        return run

    def warm(self, addresses) -> None:
        """Access addresses without recording statistics (cache warm-up)."""
        saved = CacheStats(self.stats.hits, self.stats.misses)
        for address in addresses:
            self.access(int(address))
        self.stats = saved

    def flush(self) -> None:
        """Invalidate all lines and reset statistics."""
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats.reset()

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
