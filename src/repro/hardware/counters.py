"""Memory-traffic counters.

Operators (both the Crystal GPU kernels and the CPU variants) describe the
work they did with a :class:`TrafficCounter`: how many bytes they moved at
each level of the memory hierarchy, how many random (cache-line granular)
accesses they issued, how many atomic updates they performed, and how much
arithmetic they executed.  The device simulators convert a counter into
simulated time; the tests use counters to check that implementations touch
exactly the data the paper's models say they should.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TrafficCounter:
    """Accumulated memory/compute activity of one operator or kernel.

    All byte quantities refer to the *device* memory of whichever processor
    the operator ran on (DRAM for the CPU, global HBM for the GPU) unless the
    field name says otherwise.
    """

    #: Bytes read sequentially (coalesced / streaming) from device memory.
    sequential_read_bytes: float = 0.0
    #: Bytes written sequentially (coalesced / streaming) to device memory.
    sequential_write_bytes: float = 0.0
    #: Number of random accesses (each touches one cache line / transaction).
    random_accesses: float = 0.0
    #: Working-set size (bytes) the random accesses are spread over; the
    #: cache model derives hit ratios from this.
    random_working_set_bytes: float = 0.0
    #: Bytes per random access actually needed by the algorithm (e.g. an
    #: 8-byte hash-table slot); the hardware still moves a full line.
    random_access_bytes: float = 8.0
    #: Bytes staged through shared memory (GPU) or L1-resident buffers (CPU).
    shared_bytes: float = 0.0
    #: Number of atomic read-modify-write operations on globally shared data.
    atomic_updates: float = 0.0
    #: Number of distinct memory locations the atomics target (1 = a single
    #: global counter, i.e. worst-case contention).
    atomic_targets: float = 1.0
    #: Scalar arithmetic operations executed (used for compute-bound checks).
    compute_ops: float = 0.0
    #: Conditional branches whose outcome depends on the data.
    data_dependent_branches: float = 0.0
    #: Fraction of data-dependent branches the branch predictor gets wrong.
    branch_miss_rate: float = 0.0
    #: Bytes moved across PCIe (coprocessor mode only).
    pcie_bytes: float = 0.0
    #: Free-form notes for debugging / reporting.
    notes: list[str] = field(default_factory=list)

    def merge(self, other: "TrafficCounter") -> "TrafficCounter":
        """Accumulate another counter into this one and return ``self``."""
        self.sequential_read_bytes += other.sequential_read_bytes
        self.sequential_write_bytes += other.sequential_write_bytes
        # Working sets do not add up; keep the largest one, which is the one
        # that determines the steady-state hit ratio.
        if other.random_accesses > 0:
            total = self.random_accesses + other.random_accesses
            if total > 0:
                self.random_working_set_bytes = max(
                    self.random_working_set_bytes, other.random_working_set_bytes
                )
                self.random_access_bytes = (
                    self.random_access_bytes * self.random_accesses
                    + other.random_access_bytes * other.random_accesses
                ) / total
            self.random_accesses = total
        self.shared_bytes += other.shared_bytes
        self.atomic_updates += other.atomic_updates
        self.atomic_targets = max(self.atomic_targets, other.atomic_targets)
        self.compute_ops += other.compute_ops
        self.data_dependent_branches += other.data_dependent_branches
        if self.data_dependent_branches > 0:
            self.branch_miss_rate = (
                self.branch_miss_rate * (self.data_dependent_branches - other.data_dependent_branches)
                + other.branch_miss_rate * other.data_dependent_branches
            ) / self.data_dependent_branches
        self.pcie_bytes += other.pcie_bytes
        self.notes.extend(other.notes)
        return self

    def scaled(self, factor: float) -> "TrafficCounter":
        """Return a copy with all extensive quantities multiplied by ``factor``.

        Used to project traffic measured on a reduced-scale execution up to
        the paper's data scale.  Intensive quantities (working-set size,
        branch miss rate, access width, atomic target count) are preserved.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return TrafficCounter(
            sequential_read_bytes=self.sequential_read_bytes * factor,
            sequential_write_bytes=self.sequential_write_bytes * factor,
            random_accesses=self.random_accesses * factor,
            random_working_set_bytes=self.random_working_set_bytes,
            random_access_bytes=self.random_access_bytes,
            shared_bytes=self.shared_bytes * factor,
            atomic_updates=self.atomic_updates * factor,
            atomic_targets=self.atomic_targets,
            compute_ops=self.compute_ops * factor,
            data_dependent_branches=self.data_dependent_branches * factor,
            branch_miss_rate=self.branch_miss_rate,
            pcie_bytes=self.pcie_bytes * factor,
            notes=list(self.notes),
        )

    @property
    def total_device_bytes(self) -> float:
        """Total bytes that must cross the device-memory bus (line granular)."""
        return (
            self.sequential_read_bytes
            + self.sequential_write_bytes
            + self.random_accesses * self.random_access_bytes
        )

    def note(self, message: str) -> None:
        """Attach a human-readable note (kept out of the hot paths)."""
        self.notes.append(message)

    def __add__(self, other: "TrafficCounter") -> "TrafficCounter":
        result = TrafficCounter()
        result.merge(self)
        result.merge(other)
        return result
