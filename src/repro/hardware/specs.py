"""Device specification dataclasses.

These capture exactly the hardware parameters the paper's cost models use
(Table 2 plus the memory-transaction granularities discussed in Section 4.3):
capacities, bandwidths, cache line sizes, and the processor geometry needed
by the execution simulators (cores, SMs, warps, registers, shared memory).

All bandwidths are stored in **bytes per second** and all capacities in
**bytes** so that the arithmetic in the simulators never has to guess units.
Helper constructors accept the more natural GB/s / KB / MB / GB units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

GBPS = 1e9  # the paper quotes decimal GB per second
TBPS = 1e12


@dataclass(frozen=True)
class CacheLevelSpec:
    """One level of an on-chip cache hierarchy.

    Attributes:
        name: Human-readable level name, e.g. ``"L2"``.
        capacity_bytes: Total usable capacity of the level in bytes.  For
            per-core caches this is the *per-core* capacity; the hierarchy
            object knows whether a level is shared.
        line_bytes: Cache line (transaction) size in bytes.
        bandwidth_bytes_per_s: Sustained bandwidth of the level.  ``None``
            means "not a bandwidth bottleneck for our models" (the paper only
            quotes bandwidths for the levels it needs: GPU L1/L2 and CPU L3).
        latency_ns: Load-to-use latency of the level in nanoseconds.
        shared: True when the level is shared by all cores/SMs (CPU L3,
            GPU L2), False when it is private (CPU L1/L2, GPU L1/shared mem).
        associativity: Set associativity used by the LRU cache simulator.
    """

    name: str
    capacity_bytes: int
    line_bytes: int = 64
    bandwidth_bytes_per_s: float | None = None
    latency_ns: float = 1.0
    shared: bool = False
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"cache {self.name}: capacity must be positive")
        if self.line_bytes <= 0:
            raise ValueError(f"cache {self.name}: line size must be positive")
        if self.capacity_bytes % self.line_bytes != 0:
            raise ValueError(
                f"cache {self.name}: capacity {self.capacity_bytes} is not a "
                f"multiple of the line size {self.line_bytes}"
            )

    @property
    def num_lines(self) -> int:
        """Number of cache lines the level can hold."""
        return self.capacity_bytes // self.line_bytes


@dataclass(frozen=True)
class CPUSpec:
    """Specification of a multicore CPU.

    The defaults of the optional microarchitectural parameters are the values
    the paper's discussion relies on (Section 4.2 for branch misprediction,
    Section 4.3 and 5.3 for the memory-stall behaviour of irregular access).
    """

    model: str
    cores: int
    threads_per_core: int
    frequency_hz: float
    simd_width_bits: int
    dram_capacity_bytes: int
    dram_read_bandwidth: float
    dram_write_bandwidth: float
    caches: tuple[CacheLevelSpec, ...]
    dram_latency_ns: float = 90.0
    branch_miss_penalty_ns: float = 5.0
    max_outstanding_misses: int = 10
    non_temporal_write_speedup: float = 1.5
    #: Streaming bandwidth a single core can sustain (outstanding-miss bound);
    #: the full DRAM bandwidth is only reachable with enough cores active.
    per_core_stream_bandwidth: float = 14e9

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("CPU must have at least one core")
        if not self.caches:
            raise ValueError("CPU needs at least one cache level")

    @property
    def total_threads(self) -> int:
        """Hardware threads available (cores x SMT)."""
        return self.cores * self.threads_per_core

    @property
    def simd_lanes_32bit(self) -> int:
        """Number of 32-bit lanes a single SIMD register holds."""
        return self.simd_width_bits // 32

    @property
    def cache_line_bytes(self) -> int:
        """Cache line size of the last-level cache (the DRAM transfer unit)."""
        return self.caches[-1].line_bytes

    @property
    def last_level_cache(self) -> CacheLevelSpec:
        return self.caches[-1]

    def cache_named(self, name: str) -> CacheLevelSpec:
        """Return the cache level with the given name (e.g. ``"L2"``)."""
        for level in self.caches:
            if level.name == name:
                return level
        raise KeyError(f"no cache level named {name!r} on {self.model}")

    def shared_cache_capacity(self) -> int:
        """Capacity of the shared last-level cache in bytes."""
        return self.last_level_cache.capacity_bytes


@dataclass(frozen=True)
class GPUSpec:
    """Specification of a discrete GPU.

    Geometry parameters (SMs, warps, registers, shared memory) drive the
    occupancy model of :class:`repro.sim.gpu.GPUSimulator`; the memory
    parameters drive its bandwidth model.
    """

    model: str
    num_sms: int
    cores_per_sm: int
    warp_size: int
    max_threads_per_sm: int
    max_warps_per_sm: int
    max_thread_blocks_per_sm: int
    registers_per_sm: int
    shared_memory_per_sm_bytes: int
    frequency_hz: float
    global_capacity_bytes: int
    global_read_bandwidth: float
    global_write_bandwidth: float
    global_access_granularity_bytes: int
    l2_capacity_bytes: int
    l2_bandwidth: float
    l1_capacity_per_sm_bytes: int
    l1_bandwidth: float
    shared_memory_bandwidth: float | None = None
    global_latency_ns: float = 400.0
    l2_latency_ns: float = 200.0
    atomic_throughput_ops_per_s: float = 2e9
    pcie_bandwidth: float = 12.8 * GBPS

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("GPU must have at least one SM")
        if self.warp_size <= 0:
            raise ValueError("warp size must be positive")
        if self.max_threads_per_sm % self.warp_size != 0:
            raise ValueError("max threads per SM must be a multiple of the warp size")

    @property
    def total_cores(self) -> int:
        """Total number of scalar cores across all SMs."""
        return self.num_sms * self.cores_per_sm

    @property
    def max_resident_threads(self) -> int:
        """Maximum number of threads resident on the device at once."""
        return self.num_sms * self.max_threads_per_sm

    @property
    def shared_memory_per_thread_bytes(self) -> float:
        """Shared-memory bytes available per thread at full occupancy.

        The paper quotes ~24 4-byte values per thread on the V100; this
        property reproduces that derivation.
        """
        return self.shared_memory_per_sm_bytes / self.max_threads_per_sm

    @property
    def registers_per_thread_at_full_occupancy(self) -> float:
        """Registers available per thread when an SM is fully occupied."""
        return self.registers_per_sm / self.max_threads_per_sm

    def occupancy_limit_blocks(
        self,
        threads_per_block: int,
        shared_bytes_per_block: int = 0,
        registers_per_thread: int = 32,
    ) -> int:
        """Resident thread blocks per SM for a given kernel configuration.

        The limit is the minimum over the thread, warp, block, register, and
        shared-memory constraints -- the standard CUDA occupancy calculation.
        """
        if threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        warps_per_block = -(-threads_per_block // self.warp_size)
        limits = [
            self.max_thread_blocks_per_sm,
            self.max_threads_per_sm // threads_per_block,
            self.max_warps_per_sm // warps_per_block,
        ]
        if registers_per_thread > 0:
            limits.append(self.registers_per_sm // (registers_per_thread * threads_per_block))
        if shared_bytes_per_block > 0:
            limits.append(self.shared_memory_per_sm_bytes // shared_bytes_per_block)
        return max(0, min(int(x) for x in limits))

    def occupancy(
        self,
        threads_per_block: int,
        shared_bytes_per_block: int = 0,
        registers_per_thread: int = 32,
    ) -> float:
        """Fraction of the SM's maximum resident warps that a kernel achieves."""
        blocks = self.occupancy_limit_blocks(
            threads_per_block, shared_bytes_per_block, registers_per_thread
        )
        warps_per_block = -(-threads_per_block // self.warp_size)
        resident_warps = blocks * warps_per_block
        return min(1.0, resident_warps / self.max_warps_per_sm)


@dataclass(frozen=True)
class InstancePricing:
    """Cloud / purchase pricing for a hardware platform (Table 3)."""

    name: str
    rent_usd_per_hour: float
    purchase_usd_low: float
    purchase_usd_high: float
    description: str = ""

    @property
    def purchase_usd_mid(self) -> float:
        """Midpoint of the quoted purchase-cost range."""
        return 0.5 * (self.purchase_usd_low + self.purchase_usd_high)


@dataclass(frozen=True)
class Platform:
    """A CPU+GPU platform pairing used by the workload evaluation."""

    cpu: CPUSpec
    gpu: GPUSpec
    pcie_bandwidth: float
    cpu_pricing: InstancePricing | None = None
    gpu_pricing: InstancePricing | None = None
    notes: str = ""

    @property
    def bandwidth_ratio(self) -> float:
        """GPU global-memory read bandwidth over CPU DRAM read bandwidth."""
        return self.gpu.global_read_bandwidth / self.cpu.dram_read_bandwidth
