"""PCIe interconnect model.

The coprocessor experiments (Section 3.1, Figure 3) hinge on one fact: PCIe
bandwidth (12.8 GBps measured) is lower than both CPU DRAM bandwidth
(~54 GBps) and GPU HBM bandwidth (~880 GBps), so a query that must ship its
input over PCIe is lower-bounded by the transfer time even with perfect
overlap of transfer and execution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PCIeLink:
    """A host <-> device PCIe link.

    Attributes:
        bandwidth_bytes_per_s: Sustained transfer bandwidth in one direction.
        latency_s: Fixed per-transfer latency (kernel-launch / DMA setup).
        duplex: When True, host-to-device and device-to-host transfers can
            proceed concurrently at full bandwidth each.
    """

    bandwidth_bytes_per_s: float = 12.8e9
    latency_s: float = 10e-6
    duplex: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("PCIe bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("PCIe latency must be non-negative")

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` in one direction."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s

    def round_trip_seconds(self, bytes_to_device: float, bytes_to_host: float) -> float:
        """Time to ship inputs to the device and results back to the host."""
        down = self.transfer_seconds(bytes_to_device)
        up = self.transfer_seconds(bytes_to_host)
        if self.duplex:
            return max(down, up)
        return down + up

    def overlapped_with_kernel(self, transfer_bytes: float, kernel_seconds: float) -> float:
        """Runtime when the transfer is perfectly pipelined with execution.

        This is the best case the coprocessor model can achieve (the paper's
        lower bound ``16 L / B_p`` for SSB Q1.1): the slower of the transfer
        and the kernel dominates.
        """
        if kernel_seconds < 0:
            raise ValueError("kernel time must be non-negative")
        return max(self.transfer_seconds(transfer_bytes), kernel_seconds)
