"""Hardware substrate: device specifications and memory-hierarchy models.

The paper's analysis is grounded in a small set of hardware parameters
(Table 2 of the paper): memory bandwidths, cache sizes and bandwidths, cache
line / memory transaction granularities, and the PCIe link bandwidth.  This
package provides:

* :mod:`repro.hardware.specs` -- dataclasses describing a CPU, a GPU, and
  their cache levels.
* :mod:`repro.hardware.presets` -- the concrete Intel i7-6900 and Nvidia
  V100 specifications used throughout the paper, plus the measured PCIe
  bandwidth.
* :mod:`repro.hardware.cache` -- an analytic cache-hit-ratio model (used by
  the cost models) and a set-associative LRU cache simulator (used by tests
  and by the fidelity checks of the analytic model).
* :mod:`repro.hardware.memory` -- bandwidth/latency accounting for
  sequential and random memory traffic.
* :mod:`repro.hardware.interconnect` -- the PCIe transfer model used by the
  coprocessor experiments.
* :mod:`repro.hardware.counters` -- memory-traffic counters shared by the
  operator implementations and the simulators.
"""

from repro.hardware.cache import AnalyticCacheModel, CacheHierarchy, SetAssociativeCache
from repro.hardware.counters import TrafficCounter
from repro.hardware.interconnect import PCIeLink
from repro.hardware.memory import AccessPattern, MemoryRegion
from repro.hardware.presets import (
    AWS_P3_2XLARGE,
    AWS_R5_2XLARGE,
    DEFAULT_PCIE,
    INTEL_I7_6900,
    NVIDIA_V100,
    bandwidth_ratio,
)
from repro.hardware.specs import CacheLevelSpec, CPUSpec, GPUSpec

__all__ = [
    "AccessPattern",
    "AnalyticCacheModel",
    "AWS_P3_2XLARGE",
    "AWS_R5_2XLARGE",
    "CacheHierarchy",
    "CacheLevelSpec",
    "CPUSpec",
    "DEFAULT_PCIE",
    "GPUSpec",
    "INTEL_I7_6900",
    "MemoryRegion",
    "NVIDIA_V100",
    "PCIeLink",
    "SetAssociativeCache",
    "TrafficCounter",
    "bandwidth_ratio",
]
