"""GPU no-partitioning hash join (Section 4.3) as Crystal kernels."""

from __future__ import annotations

import numpy as np

from repro.crystal import BlockContext, CrystalKernel, Tile, block_aggregate, block_load, block_lookup
from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.ops.hash_table import LinearProbingHashTable
from repro.sim.gpu import GPUSimulator, KernelLaunch


def gpu_hash_join_build(
    build_keys: np.ndarray,
    build_values: np.ndarray,
    fill_factor: float = 0.5,
    simulator: GPUSimulator | None = None,
) -> tuple[LinearProbingHashTable, OperatorResult]:
    """Build the hash table on the GPU.

    Each thread inserts one tuple with an atomic compare-and-swap on the
    slot; writes to a table larger than the L2 go to global memory, so the
    build phase scales linearly with the build relation (the paper's
    build-phase discussion).
    """
    simulator = simulator or GPUSimulator()
    build_keys = np.asarray(build_keys)
    build_values = np.asarray(build_values)
    table = LinearProbingHashTable.build(build_keys, build_values, fill_factor=fill_factor)

    n = build_keys.shape[0]
    traffic = TrafficCounter(
        sequential_read_bytes=float(n * 8),
        random_accesses=float(n),
        random_working_set_bytes=float(table.size_bytes),
        random_access_bytes=float(table.slot_bytes),
        atomic_updates=float(n),
        atomic_targets=float(table.num_slots),
        compute_ops=float(n) * 4.0,
    )
    execution = simulator.run_kernel(traffic, KernelLaunch(label="gpu-join-build"))
    result = OperatorResult(
        value=table,
        time=execution.time,
        traffic=traffic,
        device="gpu",
        variant="build",
        stats={
            "build_rows": float(n),
            "hash_table_bytes": float(table.size_bytes),
            "collisions": float(table.build_stats.collisions),
        },
    )
    return table, result


def gpu_hash_join_probe(
    probe_keys: np.ndarray,
    probe_values: np.ndarray,
    table: LinearProbingHashTable,
    threads_per_block: int = 128,
    items_per_thread: int = 4,
    simulator: GPUSimulator | None = None,
) -> OperatorResult:
    """Probe the hash table and compute ``SUM(A.v + B.v)`` on the GPU.

    The kernel loads a tile of keys and payloads with ``block_load``, probes
    the table with ``block_lookup`` (random accesses served by L1/L2/global
    memory depending on the table size), accumulates a per-thread local sum,
    and reduces it with ``block_aggregate`` -- one atomic per thread block.
    """
    probe_keys = np.asarray(probe_keys)
    probe_values = np.asarray(probe_values)
    if probe_keys.shape != probe_values.shape:
        raise ValueError("probe keys and values must align")

    def body(ctx: BlockContext) -> float:
        key_tile = block_load(ctx, probe_keys)
        value_tile = block_load(ctx, probe_values)
        found, build_payload = block_lookup(ctx, key_tile, table)
        contributions = np.where(
            found, value_tile.values.astype(np.float64) + build_payload.astype(np.float64), 0.0
        )
        total = block_aggregate(ctx, Tile(values=contributions), op="sum", counter_name="checksum")
        return total

    kernel = CrystalKernel(
        body,
        threads_per_block=threads_per_block,
        items_per_thread=items_per_thread,
        label="gpu-join-probe",
        simulator=simulator,
    )
    result = kernel.run()
    checksum = float(result.value)
    n = probe_keys.shape[0]
    return OperatorResult(
        value=checksum,
        time=result.time,
        traffic=result.traffic,
        device="gpu",
        variant="crystal",
        stats={
            "probe_rows": float(n),
            "hash_table_bytes": float(table.size_bytes),
        },
    )
