"""GPU radix partitioning (Section 4.4).

Each thread block processes a tile: the histogram phase counts keys per
partition and writes per-block histograms to global memory; after a prefix
sum gives each block its write cursors, the shuffle phase re-reads its tile
and scatters entries to their partitions with coalesced per-partition runs.

Two variants differ in how the shuffle keeps order:

* ``stable`` (used by LSB radix sort, Merrill & Grimshaw): every *thread*
  needs its own 2^r-entry offset array held in registers, which caps the
  pass at 7 radix bits.
* ``unstable`` (used by MSB radix sort, Stehle & Jacobsen): a single
  2^r-entry offset array per *thread block* suffices, allowing 8 bits per
  pass -- which is why MSB sort needs only 4 passes for 32-bit keys.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.ops.cpu.radix_partition import RadixPartitionOutput, radix_of
from repro.sim.gpu import GPUSimulator, KernelLaunch

#: Maximum radix bits per pass for the stable (per-thread offsets) variant.
MAX_STABLE_BITS = 7
#: Maximum radix bits per pass for the unstable (per-block offsets) variant.
MAX_UNSTABLE_BITS = 8


def gpu_radix_partition(
    keys: np.ndarray,
    payloads: np.ndarray | None = None,
    radix_bits: int = 7,
    start_bit: int = 0,
    stable: bool = True,
    threads_per_block: int = 128,
    items_per_thread: int = 4,
    simulator: GPUSimulator | None = None,
) -> tuple[RadixPartitionOutput, OperatorResult, OperatorResult]:
    """Run one radix-partition pass on the GPU.

    Returns ``(output, histogram_result, shuffle_result)``.  The functional
    result is always produced with a stable partitioning (so tests can check
    it); the ``stable`` flag controls the *cost* model: the stable variant
    needs more registers per thread (reducing occupancy) and is limited to
    :data:`MAX_STABLE_BITS` bits per pass.
    """
    max_bits = MAX_STABLE_BITS if stable else MAX_UNSTABLE_BITS
    if radix_bits <= 0:
        raise ValueError("radix_bits must be positive")
    if radix_bits > max_bits:
        raise ValueError(
            f"{'stable' if stable else 'unstable'} GPU radix partitioning supports at most "
            f"{max_bits} bits per pass, got {radix_bits}"
        )
    keys = np.asarray(keys)
    if payloads is None:
        payloads = np.zeros_like(keys)
    payloads = np.asarray(payloads)
    if payloads.shape != keys.shape:
        raise ValueError("payloads must align with keys")
    simulator = simulator or GPUSimulator()

    n = keys.shape[0]
    num_partitions = 1 << radix_bits
    tile_size = threads_per_block * items_per_thread
    num_tiles = -(-n // tile_size) if n else 0
    radix = radix_of(keys, radix_bits, start_bit)

    # --- histogram phase -------------------------------------------------
    histogram = np.bincount(radix, minlength=num_partitions).astype(np.int64)
    histogram_traffic = TrafficCounter(
        sequential_read_bytes=float(keys.nbytes),
        sequential_write_bytes=float(num_tiles * num_partitions * 4),
        shared_bytes=float(num_tiles * num_partitions * 4),
        compute_ops=float(n) * 2.0,
    )
    histogram_launch = KernelLaunch(
        threads_per_block=threads_per_block,
        items_per_thread=items_per_thread,
        shared_bytes_per_block=num_partitions * 4,
        registers_per_thread=32,
        barriers_per_tile=2,
        grid_tiles=num_tiles,
        label="gpu-radix-histogram",
    )
    histogram_exec = simulator.run_kernel(histogram_traffic, histogram_launch)
    histogram_result = OperatorResult(
        value=histogram,
        time=histogram_exec.time,
        traffic=histogram_traffic,
        device="gpu",
        variant="stable" if stable else "unstable",
        stats={"rows": float(n), "radix_bits": float(radix_bits)},
    )

    # --- shuffle phase ---------------------------------------------------
    offsets = np.zeros(num_partitions, dtype=np.int64)
    np.cumsum(histogram[:-1], out=offsets[1:])
    order = np.argsort(radix, kind="stable")
    out_keys = keys[order]
    out_payloads = payloads[order]

    # Per-thread offset arrays of the stable variant consume registers and
    # spill beyond 7 bits; per-block offsets of the unstable variant live in
    # shared memory.
    registers_per_thread = 32 + (num_partitions if stable else 0)
    shuffle_traffic = TrafficCounter(
        sequential_read_bytes=float(keys.nbytes + payloads.nbytes + num_tiles * num_partitions * 4),
        sequential_write_bytes=float(keys.nbytes + payloads.nbytes),
        shared_bytes=float(keys.nbytes + payloads.nbytes),
        compute_ops=float(n) * 4.0,
    )
    shuffle_launch = KernelLaunch(
        threads_per_block=threads_per_block,
        items_per_thread=items_per_thread,
        shared_bytes_per_block=tile_size * 8 + num_partitions * 4,
        registers_per_thread=min(registers_per_thread, 255),
        barriers_per_tile=3,
        grid_tiles=num_tiles,
        label="gpu-radix-shuffle",
    )
    shuffle_exec = simulator.run_kernel(shuffle_traffic, shuffle_launch)
    shuffle_result = OperatorResult(
        value=None,
        time=shuffle_exec.time,
        traffic=shuffle_traffic,
        device="gpu",
        variant="stable" if stable else "unstable",
        stats={"rows": float(n), "radix_bits": float(radix_bits)},
    )

    output = RadixPartitionOutput(
        keys=out_keys,
        payloads=out_payloads,
        partition_offsets=offsets,
        radix_bits=radix_bits,
        start_bit=start_bit,
    )
    return output, histogram_result, shuffle_result
