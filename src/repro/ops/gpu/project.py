"""GPU projection (Section 4.1) as a fused Crystal kernel."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.crystal import BlockContext, CrystalKernel, Tile, block_load, block_store
from repro.ops.base import OperatorResult
from repro.sim.gpu import GPUSimulator


def gpu_project(
    x1: np.ndarray,
    x2: np.ndarray,
    a: float = 2.0,
    b: float = 3.0,
    udf: Callable[[np.ndarray], np.ndarray] | None = None,
    threads_per_block: int = 128,
    items_per_thread: int = 4,
    simulator: GPUSimulator | None = None,
) -> OperatorResult:
    """Compute ``udf(a * x1 + b * x2)`` with a single fused GPU kernel.

    The kernel performs two ``block_load``s (one per column), the arithmetic
    on register-resident tiles, and a ``block_store`` of the result -- so it
    reads each input byte exactly once and is memory-bandwidth bound on the
    simulated V100 for both Q1 and the sigmoid Q2.
    """
    x1 = np.asarray(x1, dtype=np.float32)
    x2 = np.asarray(x2, dtype=np.float32)
    if x1.shape != x2.shape:
        raise ValueError("x1 and x2 must have equal length")

    out = np.zeros_like(x1)

    def body(ctx: BlockContext) -> np.ndarray:
        tile1 = block_load(ctx, x1)
        tile2 = block_load(ctx, x2)
        combined = a * tile1.values + b * tile2.values
        if udf is not None:
            combined = udf(combined)
            ctx.charge_compute(combined.shape[0] * 20.0)
        else:
            ctx.charge_compute(combined.shape[0] * 3.0)
        result_tile = Tile(values=combined.astype(np.float32))
        block_store(ctx, result_tile, out, 0, combined.shape[0])
        return out

    kernel = CrystalKernel(
        body,
        threads_per_block=threads_per_block,
        items_per_thread=items_per_thread,
        label="gpu-project",
        simulator=simulator,
    )
    result = kernel.run()
    return OperatorResult(
        value=result.value,
        time=result.time,
        traffic=result.traffic,
        device="gpu",
        variant="crystal",
        stats={"rows": float(x1.shape[0])},
    )
