"""GPU radix sort (Section 4.4): LSB (stable) and MSB (unstable) variants.

The LSB sort must use stable partition passes and is therefore limited to
7 bits per pass (five passes of 6,6,6,7,7 bits for 32-bit keys); the MSB
sort of Stehle & Jacobsen does not need stability and processes 8 bits per
pass (four passes).  The MSB variant is the one the paper compares against
the CPU's four-pass LSB sort (27.08 ms vs 464 ms at 2^28 entries).
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.ops.gpu.radix_partition import MAX_STABLE_BITS, MAX_UNSTABLE_BITS, gpu_radix_partition
from repro.sim.gpu import GPUSimulator
from repro.sim.timing import TimeBreakdown


def _pass_plan(key_bits: int, max_bits: int) -> list[int]:
    """Split ``key_bits`` into per-pass radix widths of at most ``max_bits``.

    Matches the paper's plans: 32 bits at <=7 bits/pass -> [6, 6, 6, 7, 7];
    32 bits at <=8 bits/pass -> [8, 8, 8, 8].
    """
    num_passes = -(-key_bits // max_bits)
    base = key_bits // num_passes
    remainder = key_bits - base * num_passes
    plan = [base] * num_passes
    for i in range(remainder):
        plan[num_passes - 1 - i] += 1
    return plan


def gpu_radix_sort(
    keys: np.ndarray,
    payloads: np.ndarray | None = None,
    key_bits: int = 32,
    variant: str = "msb",
    simulator: GPUSimulator | None = None,
) -> OperatorResult:
    """Sort 32-bit keys (with payloads) on the GPU.

    Args:
        keys: Key column (non-negative integers).
        payloads: Optional payload column.
        key_bits: Number of key bits to order.
        variant: ``"msb"`` (unstable passes, 8 bits each) or ``"lsb"``
            (stable passes, at most 7 bits each).
        simulator: Override the GPU simulator.
    """
    if variant not in ("msb", "lsb"):
        raise ValueError(f"unknown GPU sort variant {variant!r}")
    keys = np.asarray(keys)
    if payloads is None:
        payloads = np.zeros_like(keys)
    payloads = np.asarray(payloads)
    if np.any(keys < 0):
        raise ValueError("radix sort expects non-negative keys")
    simulator = simulator or GPUSimulator()

    stable = variant == "lsb"
    max_bits = MAX_STABLE_BITS if stable else MAX_UNSTABLE_BITS
    plan = _pass_plan(key_bits, max_bits)

    total_time = TimeBreakdown()
    total_traffic = TrafficCounter()
    current_keys, current_payloads = keys, payloads
    # For cost purposes both variants are charged pass by pass; the
    # functional result is produced with LSB ordering (stable passes from
    # the low bits), which yields an identical sorted output.
    start_bit = 0
    for pass_index, bits in enumerate(plan):
        output, hist_result, shuffle_result = gpu_radix_partition(
            current_keys,
            current_payloads,
            radix_bits=bits,
            start_bit=start_bit,
            stable=stable,
            simulator=simulator,
        )
        current_keys, current_payloads = output.keys, output.payloads
        start_bit += bits
        total_time.merge(hist_result.time, prefix=f"pass{pass_index}.hist.")
        total_time.merge(shuffle_result.time, prefix=f"pass{pass_index}.shuffle.")
        total_traffic.merge(hist_result.traffic)
        total_traffic.merge(shuffle_result.traffic)

    return OperatorResult(
        value=(current_keys, current_payloads),
        time=total_time,
        traffic=total_traffic,
        device="gpu",
        variant=variant,
        stats={"rows": float(keys.shape[0]), "passes": float(len(plan))},
    )
