"""GPU selection scans (Sections 3.2, 3.3, and 4.2).

Two implementations are provided:

* :func:`gpu_select` -- the tile-based single-kernel selection of
  Figure 4(b)/Figure 8: load a tile, evaluate the predicate, block-wide
  prefix sum, one atomic per thread block to claim output space, shuffle the
  matches into a contiguous run, and store coalesced.  ``variant="if"`` and
  ``variant="pred"`` only differ in how the predicate lane is written; on
  the GPU the difference does not matter (SIMT has no branch predictor) and
  the simulator reflects that.
* :func:`gpu_select_independent_threads` -- the three-kernel
  thread-per-stride baseline of Figure 4(a) used by earlier GPU databases:
  count, prefix sum, and a second full pass that writes matches to scattered
  per-thread offsets.  It reads the input twice and its writes are not
  coalesced, which is why it is ~9x slower in the Section 3.3 comparison.
"""

from __future__ import annotations

import numpy as np

from repro.crystal import (
    BlockContext,
    CrystalKernel,
    block_load,
    block_pred,
    block_scan,
    block_shuffle,
    block_store,
)
from repro.engine.expr import (
    evaluate_pred,
    evaluate_pred_at,
    predicate_leaf_count,
    predicate_or_branches,
)
from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.ops.cpu.select import packed_scan_bytes
from repro.sim.gpu import GPUSimulator, KernelLaunch
from repro.ssb.queries import as_pred
from repro.storage import BitPackedColumn, Table

_VARIANTS = ("if", "pred")


def gpu_select(
    y: np.ndarray,
    threshold: float,
    variant: str = "pred",
    threads_per_block: int = 128,
    items_per_thread: int = 4,
    simulator: GPUSimulator | None = None,
) -> OperatorResult:
    """Run ``SELECT y FROM R WHERE y < threshold`` as one fused Crystal kernel."""
    if variant not in _VARIANTS:
        raise ValueError(f"unknown GPU select variant {variant!r}; expected one of {_VARIANTS}")
    y = np.asarray(y)
    out = np.zeros_like(y)

    def body(ctx: BlockContext) -> np.ndarray:
        tile = block_load(ctx, y)
        tile = block_pred(ctx, tile, lambda values: values < threshold)
        offsets, _, total = block_scan(ctx, tile)
        cursor = ctx.atomic_add("output_cursor", total)
        shuffled = block_shuffle(ctx, tile, offsets)
        block_store(ctx, shuffled, out, cursor, total)
        return out[:total]

    kernel = CrystalKernel(
        body,
        threads_per_block=threads_per_block,
        items_per_thread=items_per_thread,
        label=f"gpu-select-{variant}",
        simulator=simulator,
    )
    result = kernel.run()
    n = y.shape[0]
    matched = result.value.shape[0]
    return OperatorResult(
        value=result.value,
        time=result.time,
        traffic=result.traffic,
        device="gpu",
        variant=variant,
        stats={
            "rows": float(n),
            "matched": float(matched),
            "selectivity": matched / n if n else 0.0,
            "occupancy": result.execution.occupancy,
        },
    )


#: Memory-transaction granularity of a selection-vector gather on the GPU.
TRANSACTION_BYTES = 32


def gpu_gather_packed(
    packed: BitPackedColumn,
    sel: np.ndarray,
    threads_per_block: int = 128,
    items_per_thread: int = 4,
    simulator: GPUSimulator | None = None,
) -> OperatorResult:
    """Gather ``sel``'s values from a bit-packed column as one tile kernel.

    The GPU flavour of the vectorized unpack kernel: each thread locates
    its value's 64-bit word, gathers it (plus the next word for straddling
    values -- packing always leaves a guard word), and shifts/masks the
    value out in registers.  The paper's Section 5.5 point is that the
    GPU's compute-to-bandwidth ratio makes this decode essentially free
    while the read traffic drops to ``ceil(k x bit_width / 8)`` bytes.
    """
    simulator = simulator or GPUSimulator()
    sel = np.asarray(sel)
    values = packed.unpack_at(sel)
    k = float(sel.size)
    read_bytes = min(packed_scan_bytes(packed, k), float(packed.packed_bytes))
    launch = KernelLaunch(
        threads_per_block=threads_per_block,
        items_per_thread=items_per_thread,
        label="gpu-gather-packed",
    )
    traffic = TrafficCounter(
        sequential_read_bytes=read_bytes + float(sel.nbytes),
        sequential_write_bytes=float(values.nbytes),
        shared_bytes=read_bytes,
        compute_ops=k * 4.0,
    )
    execution = simulator.run_kernel(traffic, launch)
    return OperatorResult(
        value=values,
        time=execution.time,
        traffic=traffic,
        device="gpu",
        variant="packed-gather",
        stats={
            "rows": k,
            "bit_width": float(packed.bit_width),
            "packed_bytes": float(packed.packed_bytes),
            "compression_ratio": packed.compression_ratio,
            "occupancy": execution.occupancy,
        },
    )


def gpu_select_pred(
    table: Table,
    pred,
    threads_per_block: int = 128,
    items_per_thread: int = 4,
    simulator: GPUSimulator | None = None,
    sel: np.ndarray | None = None,
    packed: dict | None = None,
) -> OperatorResult:
    """Run ``SELECT row ids FROM table WHERE <pred>`` as one fused tile kernel.

    Pushdown of arbitrary boolean predicate trees into the Figure 4(b)/
    Figure 8 selection kernel: each thread block loads a tile of every
    referenced column, evaluates all leaves into predicate lanes, merges
    them in registers, prefix-sums, claims output space with one atomic per
    block, and stores the matching row ids coalesced.

    SIMT has no branch predictor and every lane is evaluated predicated, so
    -- unlike the CPU variants -- a branchy OR costs only the extra
    per-leaf compute, never a branch penalty or an extra memory pass.  That
    asymmetry (tile kernels shrug at disjunctions, operator-at-a-time
    engines materialize one intermediate per leaf) is exactly the Section
    3.3 comparison, and why the OmniSci-like baseline is charged extra for
    OR terms while this kernel is not.

    With ``sel`` (an incoming selection vector of row ids) the kernel runs
    late-materialized: threads gather only the surviving rows of each
    referenced column (charged at memory-transaction granularity, capped at
    the full column) and the value is the refined selection vector.

    ``packed`` maps column names to bit-packed twins: those columns read
    packed words (decoded in registers, exact) and are charged
    ``ceil(rows x bit_width / 8)`` bytes instead of 4-byte values or
    32-byte transactions -- with the V100's compute-to-bandwidth ratio the
    extra shift/mask ops vanish under the saved traffic, the paper's
    Section 5.5 case for compression on GPUs.
    """
    pred = as_pred(pred)
    simulator = simulator or GPUSimulator()
    packed = packed or {}

    def column_scan_bytes(column: str, rows: int, gathered: bool) -> float:
        twin = packed.get(column)
        if twin is not None:
            return min(packed_scan_bytes(twin, float(rows)), float(twin.packed_bytes))
        full = float(table.column(column).nbytes)
        if not gathered:
            return full
        return float(min(full, rows * TRANSACTION_BYTES))

    if sel is None:
        mask = evaluate_pred(table, pred, packed=packed)
        matched = np.flatnonzero(mask)
        n = table.num_rows
        column_bytes = float(sum(column_scan_bytes(c, n, False) for c in pred.columns()))
        sel_read_bytes = 0.0
    else:
        keep = evaluate_pred_at(table, pred, sel, packed=packed)
        matched = sel[keep]
        n = int(sel.size)
        column_bytes = float(sum(column_scan_bytes(c, n, True) for c in pred.columns()))
        sel_read_bytes = float(sel.nbytes)
    selectivity = (matched.size / n) if n else 0.0

    leaves = predicate_leaf_count(pred)
    or_branches = predicate_or_branches(pred)
    decode_ops = float(n) * 3.0 * sum(1 for c in pred.columns() if c in packed)

    launch = KernelLaunch(
        threads_per_block=threads_per_block,
        items_per_thread=items_per_thread,
        label="gpu-select-pred",
    )
    num_tiles = -(-n // launch.tile_size) if n else 0
    traffic = TrafficCounter(
        sequential_read_bytes=column_bytes + sel_read_bytes,
        sequential_write_bytes=float(matched.nbytes),
        # Tiles staged through shared memory for the block-wide shuffle.
        shared_bytes=column_bytes,
        # One output-cursor claim per thread block, all on the same counter.
        atomic_updates=float(num_tiles),
        atomic_targets=1.0,
        compute_ops=float(n) * (max(leaves, 1) + or_branches) + decode_ops,
    )
    execution = simulator.run_kernel(traffic, launch)
    return OperatorResult(
        value=matched,
        time=execution.time,
        traffic=traffic,
        device="gpu",
        variant="fused-pred",
        stats={
            "rows": float(n),
            "selectivity": selectivity,
            "matched": float(matched.shape[0]),
            "leaves": float(leaves),
            "or_branches": float(or_branches),
            "packed_columns": float(sum(1 for c in pred.columns() if c in packed)),
            "scan_bytes": column_bytes,
            "occupancy": execution.occupancy,
        },
    )


def gpu_select_independent_threads(
    y: np.ndarray,
    threshold: float,
    num_threads: int = 409600,
    simulator: GPUSimulator | None = None,
) -> OperatorResult:
    """The three-kernel thread-per-stride selection of Figure 4(a).

    Kernel K1 scans the column and counts matches per thread; K2 computes a
    prefix sum over the per-thread counts; K3 re-reads the column and writes
    each thread's matches starting at its prefix-sum offset.  The value
    returned matches :func:`gpu_select` exactly; only the simulated cost
    differs (two full reads, intermediate arrays, and scattered writes).
    """
    y = np.asarray(y)
    simulator = simulator or GPUSimulator()
    n = y.shape[0]

    mask = y < threshold
    matched = y[mask]

    # K1: strided read + per-thread counts.
    k1_traffic = TrafficCounter(
        sequential_read_bytes=float(y.nbytes),
        sequential_write_bytes=float(num_threads * 4),
        compute_ops=float(n),
    )
    k1 = simulator.run_kernel(k1_traffic, KernelLaunch(items_per_thread=1, label="k1-count"))

    # K2: prefix sum over the per-thread counts (a Thrust-style scan).
    k2_traffic = TrafficCounter(
        sequential_read_bytes=float(num_threads * 4),
        sequential_write_bytes=float(num_threads * 4),
        compute_ops=float(num_threads),
    )
    k2 = simulator.run_kernel(k2_traffic, KernelLaunch(items_per_thread=1, label="k2-prefix-sum"))

    # K3: second full read plus scattered, uncoalesced writes of the matches.
    k3_traffic = TrafficCounter(
        sequential_read_bytes=float(y.nbytes + num_threads * 4),
        random_accesses=float(matched.shape[0]),
        random_working_set_bytes=float(max(matched.nbytes, 1)),
        random_access_bytes=32.0,
        compute_ops=float(n),
    )
    k3 = simulator.run_kernel(k3_traffic, KernelLaunch(items_per_thread=1, label="k3-scatter"))

    time = simulator.run_kernels([k1, k2, k3])
    traffic = TrafficCounter()
    traffic.merge(k1_traffic)
    traffic.merge(k2_traffic)
    traffic.merge(k3_traffic)
    return OperatorResult(
        value=matched,
        time=time,
        traffic=traffic,
        device="gpu",
        variant="independent-threads",
        stats={
            "rows": float(n),
            "matched": float(matched.shape[0]),
            "selectivity": matched.shape[0] / n if n else 0.0,
        },
    )
