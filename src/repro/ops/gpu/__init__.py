"""GPU operator implementations built on the Crystal primitives (Section 4).

* Project (Q1/Q2): a single fused kernel of two ``block_load``s, the
  arithmetic, and a ``block_store``.
* Select (Q3): the Figure 4(b)/Figure 8 single-kernel tile-based selection,
  plus the three-kernel independent-threads baseline of Figure 4(a) used in
  the Section 3.3 comparison.
* Hash join (Q4): ``block_load`` + ``block_lookup`` + ``block_aggregate``.
* Radix partitioning / sort: the stable (LSB, 7 bits per pass) and unstable
  (MSB, 8 bits per pass) GPU variants.
* A hash group-by aggregate used by the SSB engines.
"""

from repro.ops.gpu.aggregate import gpu_group_by_aggregate
from repro.ops.gpu.hash_join import gpu_hash_join_build, gpu_hash_join_probe
from repro.ops.gpu.project import gpu_project
from repro.ops.gpu.radix_join import gpu_radix_join
from repro.ops.gpu.radix_partition import gpu_radix_partition
from repro.ops.gpu.radix_sort import gpu_radix_sort
from repro.ops.gpu.select import (
    gpu_gather_packed,
    gpu_select,
    gpu_select_independent_threads,
    gpu_select_pred,
)

__all__ = [
    "gpu_group_by_aggregate",
    "gpu_hash_join_build",
    "gpu_hash_join_probe",
    "gpu_project",
    "gpu_radix_join",
    "gpu_radix_partition",
    "gpu_radix_sort",
    "gpu_gather_packed",
    "gpu_select",
    "gpu_select_independent_threads",
    "gpu_select_pred",
]
