"""GPU hash group-by aggregation.

SSB group-bys have at most a few hundred groups, so the aggregation hash
table stays resident in the GPU's L2 cache; each thread block accumulates
matches into it with atomic adds spread over the group slots (so contention
is far lower than a single global counter).
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.sim.gpu import GPUSimulator, KernelLaunch


def gpu_group_by_aggregate(
    group_keys,
    values: np.ndarray,
    threads_per_block: int = 128,
    items_per_thread: int = 4,
    simulator: GPUSimulator | None = None,
) -> OperatorResult:
    """Compute ``SUM(values) GROUP BY group_keys`` on the GPU."""
    simulator = simulator or GPUSimulator()
    if isinstance(group_keys, (tuple, list)):
        key_arrays = [np.asarray(k) for k in group_keys]
    else:
        key_arrays = [np.asarray(group_keys)]
    values = np.asarray(values)
    n = values.shape[0]
    for array in key_arrays:
        if array.shape[0] != n:
            raise ValueError("group key columns must align with the value column")

    if n == 0:
        groups: dict = {}
    else:
        stacked = np.stack(key_arrays, axis=1)
        unique_keys, inverse = np.unique(stacked, axis=0, return_inverse=True)
        sums = np.bincount(inverse, weights=values.astype(np.float64))
        if len(key_arrays) == 1:
            groups = {int(k[0]): float(s) for k, s in zip(unique_keys, sums)}
        else:
            groups = {tuple(int(x) for x in k): float(s) for k, s in zip(unique_keys, sums)}

    num_groups = max(len(groups), 1)
    slot_bytes = 8 + 8 * len(key_arrays)
    tile_size = threads_per_block * items_per_thread
    traffic = TrafficCounter(
        sequential_read_bytes=float(sum(a.nbytes for a in key_arrays) + values.nbytes),
        sequential_write_bytes=float(num_groups * slot_bytes),
        random_accesses=float(n),
        random_working_set_bytes=float(num_groups * slot_bytes),
        random_access_bytes=float(slot_bytes),
        atomic_updates=float(n),
        atomic_targets=float(num_groups),
        compute_ops=float(n) * 4.0,
    )
    launch = KernelLaunch(
        threads_per_block=threads_per_block,
        items_per_thread=items_per_thread,
        shared_bytes_per_block=tile_size * 4,
        grid_tiles=-(-n // tile_size) if n else 0,
        barriers_per_tile=1,
        label="gpu-groupby",
    )
    execution = simulator.run_kernel(traffic, launch)
    return OperatorResult(
        value=groups,
        time=execution.time,
        traffic=traffic,
        device="gpu",
        variant="hash",
        stats={"rows": float(n), "groups": float(len(groups))},
    )
