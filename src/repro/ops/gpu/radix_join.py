"""GPU partitioned (radix) hash join (Section 4.3 discussion).

Same structure as :mod:`repro.ops.cpu.radix_join`: radix-partition both
relations so that each partition's hash table fits in the GPU's shared
memory / L2, then join partition pairs with cache-resident probes.  Like the
CPU variant it cannot pipeline across multiple joins, which is why the SSB
engines stick to the no-partitioning join.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.ops.cpu.radix_partition import radix_of
from repro.ops.gpu.radix_partition import MAX_UNSTABLE_BITS, gpu_radix_partition
from repro.ops.hash_table import LinearProbingHashTable
from repro.sim.gpu import GPUSimulator, KernelLaunch
from repro.sim.timing import TimeBreakdown


def gpu_radix_join(
    build_keys: np.ndarray,
    build_values: np.ndarray,
    probe_keys: np.ndarray,
    probe_values: np.ndarray,
    target_partition_bytes: int = 48 * 1024,
    fill_factor: float = 0.5,
    simulator: GPUSimulator | None = None,
) -> OperatorResult:
    """Radix-partitioned hash join on the GPU computing ``SUM(A.v + B.v)``."""
    simulator = simulator or GPUSimulator()
    build_keys = np.asarray(build_keys)
    build_values = np.asarray(build_values)
    probe_keys = np.asarray(probe_keys)
    probe_values = np.asarray(probe_values)
    if build_keys.shape != build_values.shape or probe_keys.shape != probe_values.shape:
        raise ValueError("key and value columns must align")

    table_bytes = build_keys.shape[0] / fill_factor * 8.0
    radix_bits = 0
    while (table_bytes / (1 << radix_bits)) > target_partition_bytes and radix_bits < MAX_UNSTABLE_BITS:
        radix_bits += 1

    time = TimeBreakdown()
    traffic = TrafficCounter()
    if radix_bits == 0:
        build_parts = [(build_keys, build_values)]
        probe_parts = [(probe_keys, probe_values)]
    else:
        build_out, b_hist, b_shuffle = gpu_radix_partition(
            build_keys, build_values, radix_bits=radix_bits, stable=False, simulator=simulator
        )
        probe_out, p_hist, p_shuffle = gpu_radix_partition(
            probe_keys, probe_values, radix_bits=radix_bits, stable=False, simulator=simulator
        )
        for label, result in (
            ("partition.build.hist", b_hist), ("partition.build.shuffle", b_shuffle),
            ("partition.probe.hist", p_hist), ("partition.probe.shuffle", p_shuffle),
        ):
            time.merge(result.time, prefix=label + ".")
            traffic.merge(result.traffic)
        build_radix = radix_of(build_out.keys, radix_bits, 0)
        probe_radix = radix_of(probe_out.keys, radix_bits, 0)
        build_parts = []
        probe_parts = []
        for p in range(1 << radix_bits):
            build_mask = build_radix == p
            probe_mask = probe_radix == p
            build_parts.append((build_out.keys[build_mask], build_out.payloads[build_mask]))
            probe_parts.append((probe_out.keys[probe_mask], probe_out.payloads[probe_mask]))

    checksum = 0.0
    matches = 0
    partition_table_bytes = 0.0
    for (b_keys, b_values), (p_keys, p_values) in zip(build_parts, probe_parts):
        if b_keys.shape[0] == 0 or p_keys.shape[0] == 0:
            continue
        table = LinearProbingHashTable.build(b_keys, b_values, fill_factor=fill_factor)
        partition_table_bytes = max(partition_table_bytes, float(table.size_bytes))
        found, payload = table.probe(p_keys)
        checksum += float(np.sum(p_values[found].astype(np.float64) + payload[found].astype(np.float64)))
        matches += int(np.count_nonzero(found))

    join_traffic = TrafficCounter(
        sequential_read_bytes=float(build_keys.nbytes + build_values.nbytes
                                    + probe_keys.nbytes + probe_values.nbytes),
        random_accesses=float(probe_keys.shape[0] + build_keys.shape[0]),
        random_working_set_bytes=max(partition_table_bytes, 1.0),
        random_access_bytes=8.0,
        shared_bytes=float(probe_keys.nbytes + probe_values.nbytes),
        compute_ops=float(probe_keys.shape[0] + build_keys.shape[0]) * 4.0,
    )
    join_exec = simulator.run_kernel(join_traffic, KernelLaunch(label="partitioned-join"))
    time.merge(join_exec.time, prefix="join.")
    traffic.merge(join_traffic)

    return OperatorResult(
        value=checksum,
        time=time,
        traffic=traffic,
        device="gpu",
        variant="radix",
        stats={
            "probe_rows": float(probe_keys.shape[0]),
            "build_rows": float(build_keys.shape[0]),
            "matches": float(matches),
            "radix_bits": float(radix_bits),
            "partition_hash_table_bytes": partition_table_bytes,
        },
    )
