"""Relational operators on the CPU and the GPU.

Each operator is provided in the algorithm variants the paper evaluates
(Section 4) and returns both the computed result and a simulated execution
(time breakdown plus memory-traffic counters) on the paper's hardware.

CPU variants live in :mod:`repro.ops.cpu`, GPU (Crystal-based) variants in
:mod:`repro.ops.gpu`, and the shared hash-table data structure in
:mod:`repro.ops.hash_table`.
"""

from repro.ops.base import OperatorResult
from repro.ops.hash_table import LinearProbingHashTable

__all__ = ["LinearProbingHashTable", "OperatorResult"]
