"""CPU selection scans (Section 4.2, query Q3).

Three variants:

* ``if`` -- branching implementation (Figure 15a); pays the branch
  misprediction penalty when the selectivity is neither very low nor very
  high.
* ``pred`` -- branch-free predication (Figure 15b); turns the control
  dependency into a data dependency and always writes the slot.
* ``simd_pred`` -- vectorized selective stores with streaming writes
  (Polychroniou et al.); the variant that tracks the bandwidth model.

All variants use the vector-at-a-time two-pass scheme of Section 3.2: each
core counts matches in an L1-resident vector, claims output space from a
shared atomic cursor once per vector, and then copies the matches.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.sim.cpu import CPUSimulator

#: Entries per L1-resident vector a core processes between cursor updates.
VECTOR_SIZE = 1024

_VARIANTS = ("if", "pred", "simd_pred")


def _branch_miss_rate(selectivity: float) -> float:
    """Fraction of branches mispredicted at a given selectivity.

    A two-outcome branch with independent outcomes is mispredicted at a rate
    of roughly ``2 * s * (1 - s)``: fully predictable at 0 or 1, worst at 0.5.
    """
    return 2.0 * selectivity * (1.0 - selectivity)


def cpu_select(
    y: np.ndarray,
    threshold: float,
    variant: str = "simd_pred",
    simulator: CPUSimulator | None = None,
) -> OperatorResult:
    """Run ``SELECT y FROM R WHERE y < threshold`` on the CPU.

    Args:
        y: Input column.
        threshold: Selection constant ``v``.
        variant: ``"if"``, ``"pred"``, or ``"simd_pred"``.
        simulator: Override the CPU simulator (defaults to the paper CPU).

    Returns:
        An :class:`~repro.ops.base.OperatorResult` whose value is the array
        of matching entries (in input order).
    """
    if variant not in _VARIANTS:
        raise ValueError(f"unknown CPU select variant {variant!r}; expected one of {_VARIANTS}")
    y = np.asarray(y)
    simulator = simulator or CPUSimulator()

    mask = y < threshold
    matched = y[mask]
    n = y.shape[0]
    selectivity = float(mask.mean()) if n else 0.0
    num_vectors = -(-n // VECTOR_SIZE) if n else 0

    traffic = TrafficCounter(
        sequential_read_bytes=float(y.nbytes),
        sequential_write_bytes=float(matched.nbytes),
        # Second pass over each vector is served from L1 (charged as shared).
        shared_bytes=float(y.nbytes),
        # One cursor update per vector; with ~1000 entries between updates
        # the counter is effectively uncontended (Section 3.2), so the
        # updates proceed in parallel across the cores.
        atomic_updates=float(num_vectors),
        atomic_targets=8.0,
        compute_ops=float(n) * 2.0,
    )

    use_simd = False
    non_temporal = False
    if variant == "if":
        traffic.data_dependent_branches = float(n)
        traffic.branch_miss_rate = _branch_miss_rate(selectivity)
        if selectivity == 0.0:
            # The branching variant writes nothing at selectivity zero.
            traffic.sequential_write_bytes = 0.0
    elif variant == "pred":
        # Predication always performs the (possibly discarded) store slot
        # write, touching the output line even for non-matching entries when
        # selectivity is low; model this as a small constant write overhead.
        traffic.compute_ops = float(n) * 3.0
    else:  # simd_pred
        use_simd = True
        non_temporal = True
        traffic.compute_ops = float(n) * 2.0

    execution = simulator.run(
        traffic,
        use_simd=use_simd,
        non_temporal_writes=non_temporal,
        label=f"cpu-select-{variant}",
    )
    return OperatorResult(
        value=matched,
        time=execution.time,
        traffic=traffic,
        device="cpu",
        variant=variant,
        stats={"rows": float(n), "selectivity": selectivity, "matched": float(matched.shape[0])},
    )
