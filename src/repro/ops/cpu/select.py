"""CPU selection scans (Section 4.2, query Q3).

Three variants:

* ``if`` -- branching implementation (Figure 15a); pays the branch
  misprediction penalty when the selectivity is neither very low nor very
  high.
* ``pred`` -- branch-free predication (Figure 15b); turns the control
  dependency into a data dependency and always writes the slot.
* ``simd_pred`` -- vectorized selective stores with streaming writes
  (Polychroniou et al.); the variant that tracks the bandwidth model.

All variants use the vector-at-a-time two-pass scheme of Section 3.2: each
core counts matches in an L1-resident vector, claims output space from a
shared atomic cursor once per vector, and then copies the matches.
"""

from __future__ import annotations

import numpy as np

from repro.engine.expr import (
    evaluate_pred,
    evaluate_pred_at,
    predicate_leaf_count,
    predicate_or_branches,
)
from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.sim.cpu import CPUSimulator
from repro.ssb.queries import as_pred
from repro.storage import BitPackedColumn, Table

#: Entries per L1-resident vector a core processes between cursor updates.
VECTOR_SIZE = 1024

#: Cache-line granularity of a selection-vector gather on the CPU.
LINE_BYTES = 64

_VARIANTS = ("if", "pred", "simd_pred")


def _branch_miss_rate(selectivity: float) -> float:
    """Fraction of branches mispredicted at a given selectivity.

    A two-outcome branch with independent outcomes is mispredicted at a rate
    of roughly ``2 * s * (1 - s)``: fully predictable at 0 or 1, worst at 0.5.
    """
    return 2.0 * selectivity * (1.0 - selectivity)


def cpu_select(
    y: np.ndarray,
    threshold: float,
    variant: str = "simd_pred",
    simulator: CPUSimulator | None = None,
) -> OperatorResult:
    """Run ``SELECT y FROM R WHERE y < threshold`` on the CPU.

    Args:
        y: Input column.
        threshold: Selection constant ``v``.
        variant: ``"if"``, ``"pred"``, or ``"simd_pred"``.
        simulator: Override the CPU simulator (defaults to the paper CPU).

    Returns:
        An :class:`~repro.ops.base.OperatorResult` whose value is the array
        of matching entries (in input order).
    """
    if variant not in _VARIANTS:
        raise ValueError(f"unknown CPU select variant {variant!r}; expected one of {_VARIANTS}")
    y = np.asarray(y)
    simulator = simulator or CPUSimulator()

    mask = y < threshold
    matched = y[mask]
    n = y.shape[0]
    selectivity = float(mask.mean()) if n else 0.0
    num_vectors = -(-n // VECTOR_SIZE) if n else 0

    traffic = TrafficCounter(
        sequential_read_bytes=float(y.nbytes),
        sequential_write_bytes=float(matched.nbytes),
        # Second pass over each vector is served from L1 (charged as shared).
        shared_bytes=float(y.nbytes),
        # One cursor update per vector; with ~1000 entries between updates
        # the counter is effectively uncontended (Section 3.2), so the
        # updates proceed in parallel across the cores.
        atomic_updates=float(num_vectors),
        atomic_targets=8.0,
        compute_ops=float(n) * 2.0,
    )

    use_simd = False
    non_temporal = False
    if variant == "if":
        traffic.data_dependent_branches = float(n)
        traffic.branch_miss_rate = _branch_miss_rate(selectivity)
        if selectivity == 0.0:
            # The branching variant writes nothing at selectivity zero.
            traffic.sequential_write_bytes = 0.0
    elif variant == "pred":
        # Predication always performs the (possibly discarded) store slot
        # write, touching the output line even for non-matching entries when
        # selectivity is low; model this as a small constant write overhead.
        traffic.compute_ops = float(n) * 3.0
    else:  # simd_pred
        use_simd = True
        non_temporal = True
        traffic.compute_ops = float(n) * 2.0

    execution = simulator.run(
        traffic,
        use_simd=use_simd,
        non_temporal_writes=non_temporal,
        label=f"cpu-select-{variant}",
    )
    return OperatorResult(
        value=matched,
        time=execution.time,
        traffic=traffic,
        device="cpu",
        variant=variant,
        stats={"rows": float(n), "selectivity": selectivity, "matched": float(matched.shape[0])},
    )


def packed_scan_bytes(packed: BitPackedColumn, rows: float) -> float:
    """Bytes a scan of ``rows`` values moves from a packed column.

    The compressed scan path charges ``ceil(rows x bit_width / 8)`` --
    the bits actually needed -- instead of 4-byte values or whole cache
    lines, which is the Section 5.5 argument for bit packing: the scan is
    bandwidth bound, so bytes saved are time saved.
    """
    return float(np.ceil(rows * packed.bit_width / 8.0))


def cpu_gather_packed(
    packed: BitPackedColumn,
    sel: np.ndarray,
    simulator: CPUSimulator | None = None,
) -> OperatorResult:
    """Gather ``sel``'s values from a bit-packed column (one fused kernel).

    The vectorized unpack kernel of the compressed scan path: locate each
    selected value's 64-bit word (word-aligned gather), shift its low part
    down, OR in the spill from the next word for values straddling a word
    boundary, and mask to ``bit_width`` bits.  Decoding is exact -- the
    values equal a plain gather from the unpacked column -- while the
    memory system moves ``ceil(k x bit_width / 8)`` packed bytes instead
    of a cache line per selected row.
    """
    simulator = simulator or CPUSimulator()
    sel = np.asarray(sel)
    values = packed.unpack_at(sel)
    k = float(sel.size)
    read_bytes = min(packed_scan_bytes(packed, k), float(packed.packed_bytes))
    traffic = TrafficCounter(
        sequential_read_bytes=read_bytes + float(sel.nbytes),
        sequential_write_bytes=float(values.nbytes),
        shared_bytes=read_bytes,
        # Shift, OR, and mask per value (plus the position arithmetic).
        compute_ops=k * 4.0,
    )
    execution = simulator.run(traffic, use_simd=True, label="cpu-gather-packed")
    return OperatorResult(
        value=values,
        time=execution.time,
        traffic=traffic,
        device="cpu",
        variant="packed-gather",
        stats={
            "rows": k,
            "bit_width": float(packed.bit_width),
            "packed_bytes": float(packed.packed_bytes),
            "compression_ratio": packed.compression_ratio,
        },
    )


def cpu_select_pred(
    table: Table,
    pred,
    variant: str = "simd_pred",
    simulator: CPUSimulator | None = None,
    sel: np.ndarray | None = None,
    packed: dict | None = None,
) -> OperatorResult:
    """Run ``SELECT row ids FROM table WHERE <pred>`` for a predicate tree.

    Pushdown of arbitrary boolean predicates (:class:`~repro.ssb.queries.Pred`
    trees, bare specs, or legacy tuples) into the Section 4.2 selection scan.
    The value is the selection vector (matching row ids, in row order) --
    what the operator hands the rest of the pipeline.

    With ``sel`` (an incoming selection vector of row ids) the scan runs
    late-materialized: the predicate evaluates only at the surviving rows,
    and each referenced column is charged ``min(full column, survivors x
    cache line)`` bytes -- a refinement over a 1% survivor set touches ~1%
    of the lines a fresh scan would, which is how chained selection-vector
    filters stay cheap.  The returned value is the refined selection vector
    (``sel`` rows also satisfying ``pred``).

    Cost shape: each referenced column is read once no matter how many
    leaves mention it (a single scan feeds every comparison), but the
    predicate's *shape* changes the work per row:

    * A fused band predicate -- any pure conjunction, e.g. ``between`` --
      evaluates branch-free in one pass, exactly like :func:`cpu_select`.
    * Each extra OR alternative costs one more predicated pass over the
      L1-resident vector (``pred`` / ``simd_pred``) to merge its lane into
      the selection mask, or one more data-dependent short-circuit branch
      per row (``if``), which is why branchy disjunctions are charged more
      than band predicates of equal selectivity.

    ``packed`` maps column names to their
    :class:`~repro.storage.compression.BitPackedColumn` twins: those
    columns are read through the compressed scan path -- the comparisons
    decode packed words (exact, so the selection vector is unchanged) and
    the column is charged ``ceil(rows x bit_width / 8)`` bytes instead of
    4-byte values (full scans) or whole cache lines (gathers), plus the
    per-value shift/mask decode ops.
    """
    if variant not in _VARIANTS:
        raise ValueError(f"unknown CPU select variant {variant!r}; expected one of {_VARIANTS}")
    pred = as_pred(pred)
    simulator = simulator or CPUSimulator()
    packed = packed or {}

    def column_scan_bytes(column: str, rows: int, line_bytes: int | None) -> float:
        twin = packed.get(column)
        if twin is not None:
            return min(packed_scan_bytes(twin, float(rows)), float(twin.packed_bytes))
        full = float(table.column(column).nbytes)
        if line_bytes is None:
            return full
        return float(min(full, rows * line_bytes))

    if sel is None:
        mask = evaluate_pred(table, pred, packed=packed)
        matched = np.flatnonzero(mask)
        n = table.num_rows
        column_bytes = float(sum(column_scan_bytes(c, n, None) for c in pred.columns()))
        sel_read_bytes = 0.0
    else:
        keep = evaluate_pred_at(table, pred, sel, packed=packed)
        matched = sel[keep]
        n = int(sel.size)
        # Gathers touch whole cache lines (packed columns: just the needed
        # bits); a near-full selection degenerates to the streaming column
        # scan (the min rule the engines also use).
        column_bytes = float(sum(column_scan_bytes(c, n, LINE_BYTES) for c in pred.columns()))
        sel_read_bytes = float(sel.nbytes)
    selectivity = (matched.size / n) if n else 0.0
    num_vectors = -(-n // VECTOR_SIZE) if n else 0

    leaves = predicate_leaf_count(pred)
    or_branches = predicate_or_branches(pred)
    #: Decode work for the packed columns: shift + OR + mask per value read.
    decode_ops = float(n) * 3.0 * sum(1 for c in pred.columns() if c in packed)

    traffic = TrafficCounter(
        sequential_read_bytes=column_bytes + sel_read_bytes,
        sequential_write_bytes=float(matched.nbytes),
        # Second pass over each vector is served from L1 (charged as shared).
        shared_bytes=column_bytes,
        atomic_updates=float(num_vectors),
        atomic_targets=8.0,
        compute_ops=float(n) * 2.0 * max(leaves, 1) + decode_ops,
    )

    use_simd = False
    non_temporal = False
    if variant == "if":
        # Short-circuit evaluation: one data-dependent branch per leaf.
        traffic.data_dependent_branches = float(n) * max(leaves, 1)
        traffic.branch_miss_rate = _branch_miss_rate(selectivity)
        if selectivity == 0.0:
            traffic.sequential_write_bytes = 0.0
    elif variant == "pred":
        traffic.compute_ops = float(n) * (3.0 * max(leaves, 1) + or_branches) + decode_ops
    else:  # simd_pred
        use_simd = True
        non_temporal = True
        # Each extra OR alternative merges its lane with one more predicated
        # pass over the L1-resident vector.
        traffic.compute_ops = float(n) * (2.0 * max(leaves, 1) + or_branches) + decode_ops
        traffic.shared_bytes += float(n) * 4.0 * or_branches

    execution = simulator.run(
        traffic,
        use_simd=use_simd,
        non_temporal_writes=non_temporal,
        label=f"cpu-select-pred-{variant}",
    )
    return OperatorResult(
        value=matched,
        time=execution.time,
        traffic=traffic,
        device="cpu",
        variant=variant,
        stats={
            "rows": float(n),
            "selectivity": selectivity,
            "matched": float(matched.shape[0]),
            "leaves": float(leaves),
            "or_branches": float(or_branches),
            "packed_columns": float(sum(1 for c in pred.columns() if c in packed)),
            "scan_bytes": column_bytes,
        },
    )
