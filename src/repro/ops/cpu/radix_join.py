"""CPU partitioned (radix) hash join (Section 4.3 discussion).

The radix join first radix-partitions both input relations into
cache-sized chunks and then joins the corresponding partitions with small,
cache-resident hash tables.  It avoids the random DRAM accesses of the
no-partitioning join at the price of extra partitioning passes and of losing
pipelining: the whole input must be materialized before the join can start,
which is why the paper (and this reproduction's SSB engines) still use the
no-partitioning join for multi-join queries.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.ops.cpu.radix_partition import cpu_radix_partition, radix_of
from repro.ops.hash_table import LinearProbingHashTable
from repro.sim.cpu import CPUSimulator
from repro.sim.timing import TimeBreakdown


def _partitions_needed(build_rows: int, target_partition_bytes: int, fill_factor: float) -> int:
    """Radix bits needed so each partition's hash table fits the target size."""
    table_bytes = build_rows / fill_factor * 8.0
    bits = 0
    while (table_bytes / (1 << bits)) > target_partition_bytes and bits < 16:
        bits += 1
    return bits


def cpu_radix_join(
    build_keys: np.ndarray,
    build_values: np.ndarray,
    probe_keys: np.ndarray,
    probe_values: np.ndarray,
    target_partition_bytes: int = 96 * 1024,
    fill_factor: float = 0.5,
    simulator: CPUSimulator | None = None,
) -> OperatorResult:
    """Radix-partitioned hash join computing ``SUM(A.v + B.v)`` over matches.

    Both relations are partitioned on the same low-order key bits so that
    matching keys land in the same partition; each partition pair is then
    joined with a cache-resident linear-probing hash table.

    Args:
        build_keys / build_values: The (smaller) build relation.
        probe_keys / probe_values: The probe relation.
        target_partition_bytes: Partition hash tables are sized to fit within
            this budget (the per-core L2 by default).
        fill_factor: Hash-table fill factor within each partition.
        simulator: Override the CPU simulator.
    """
    simulator = simulator or CPUSimulator()
    build_keys = np.asarray(build_keys)
    build_values = np.asarray(build_values)
    probe_keys = np.asarray(probe_keys)
    probe_values = np.asarray(probe_values)
    if build_keys.shape != build_values.shape or probe_keys.shape != probe_values.shape:
        raise ValueError("key and value columns must align")

    radix_bits = _partitions_needed(build_keys.shape[0], target_partition_bytes, fill_factor)
    time = TimeBreakdown()
    traffic = TrafficCounter()

    if radix_bits == 0:
        build_parts = [(build_keys, build_values)]
        probe_parts = [(probe_keys, probe_values)]
    else:
        build_out, b_hist, b_shuffle = cpu_radix_partition(
            build_keys, build_values, radix_bits=radix_bits, simulator=simulator
        )
        probe_out, p_hist, p_shuffle = cpu_radix_partition(
            probe_keys, probe_values, radix_bits=radix_bits, simulator=simulator
        )
        for label, result in (
            ("partition.build.hist", b_hist), ("partition.build.shuffle", b_shuffle),
            ("partition.probe.hist", p_hist), ("partition.probe.shuffle", p_shuffle),
        ):
            time.merge(result.time, prefix=label + ".")
            traffic.merge(result.traffic)

        build_radix = radix_of(build_out.keys, radix_bits, 0)
        probe_radix = radix_of(probe_out.keys, radix_bits, 0)
        build_parts = []
        probe_parts = []
        for p in range(1 << radix_bits):
            build_mask = build_radix == p
            probe_mask = probe_radix == p
            build_parts.append((build_out.keys[build_mask], build_out.payloads[build_mask]))
            probe_parts.append((probe_out.keys[probe_mask], probe_out.payloads[probe_mask]))

    # Join each partition pair with a cache-resident hash table.
    checksum = 0.0
    matches = 0
    partition_table_bytes = 0.0
    for (b_keys, b_values), (p_keys, p_values) in zip(build_parts, probe_parts):
        if b_keys.shape[0] == 0 or p_keys.shape[0] == 0:
            continue
        table = LinearProbingHashTable.build(b_keys, b_values, fill_factor=fill_factor)
        partition_table_bytes = max(partition_table_bytes, float(table.size_bytes))
        found, payload = table.probe(p_keys)
        checksum += float(np.sum(p_values[found].astype(np.float64) + payload[found].astype(np.float64)))
        matches += int(np.count_nonzero(found))

    join_traffic = TrafficCounter(
        sequential_read_bytes=float(build_keys.nbytes + build_values.nbytes
                                    + probe_keys.nbytes + probe_values.nbytes),
        random_accesses=float(probe_keys.shape[0] + build_keys.shape[0]),
        random_working_set_bytes=max(partition_table_bytes, 1.0),
        random_access_bytes=8.0,
        compute_ops=float(probe_keys.shape[0] + build_keys.shape[0]) * 6.0,
    )
    join_exec = simulator.run(join_traffic, label="partitioned-join")
    time.merge(join_exec.time, prefix="join.")
    traffic.merge(join_traffic)

    return OperatorResult(
        value=checksum,
        time=time,
        traffic=traffic,
        device="cpu",
        variant="radix",
        stats={
            "probe_rows": float(probe_keys.shape[0]),
            "build_rows": float(build_keys.shape[0]),
            "matches": float(matches),
            "radix_bits": float(radix_bits),
            "partition_hash_table_bytes": partition_table_bytes,
        },
    )
