"""CPU radix partitioning (Section 4.4, Figure 14).

One radix-partition pass splits a key/payload array into ``2^r`` contiguous
output partitions by ``r`` bits of the key, in two phases:

* **histogram** -- each thread scans its chunk and counts keys per partition
  (the per-thread histograms live in L1);
* **shuffle** -- after a prefix sum over the per-thread histograms gives
  every thread its write cursors, each thread re-reads its chunk and
  scatters entries to their partitions through L1-resident software
  buffers, flushing full cache lines with streaming stores (Polychroniou &
  Ross).  The pass is *stable*: ties keep their input order.

Beyond 8 radix bits the per-thread buffers (``2^r`` cache lines) no longer
fit in L1 and the shuffle phase falls off the bandwidth-bound plateau, which
is the knee in Figure 14b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.sim.cpu import CPUSimulator

#: Number of software threads the partitioning is striped over.
_NUM_THREADS = 16

#: Bytes of L1 available for the per-thread partition buffers (the other half
#: of the 32 KB L1 holds the input vector and the histogram).
_L1_BUFFER_BYTES = 16 * 1024


@dataclass
class RadixPartitionOutput:
    """The result of one radix-partition pass."""

    keys: np.ndarray
    payloads: np.ndarray
    partition_offsets: np.ndarray
    radix_bits: int
    start_bit: int

    @property
    def num_partitions(self) -> int:
        return 1 << self.radix_bits


def radix_of(keys: np.ndarray, radix_bits: int, start_bit: int) -> np.ndarray:
    """Extract the ``radix_bits`` bits starting at ``start_bit`` of each key."""
    mask = (1 << radix_bits) - 1
    return (keys.astype(np.int64) >> start_bit) & mask


def cpu_radix_partition(
    keys: np.ndarray,
    payloads: np.ndarray | None = None,
    radix_bits: int = 8,
    start_bit: int = 0,
    simulator: CPUSimulator | None = None,
) -> tuple[RadixPartitionOutput, OperatorResult, OperatorResult]:
    """Run one stable radix-partition pass on the CPU.

    Returns ``(output, histogram_result, shuffle_result)`` so callers (and
    the Figure 14 benchmark) can report the two phases separately.
    """
    if radix_bits <= 0 or radix_bits > 16:
        raise ValueError("radix_bits must be in [1, 16]")
    keys = np.asarray(keys)
    if payloads is None:
        payloads = np.zeros_like(keys)
    payloads = np.asarray(payloads)
    if payloads.shape != keys.shape:
        raise ValueError("payloads must align with keys")
    simulator = simulator or CPUSimulator()

    n = keys.shape[0]
    num_partitions = 1 << radix_bits
    radix = radix_of(keys, radix_bits, start_bit)

    # --- histogram phase -------------------------------------------------
    histogram = np.bincount(radix, minlength=num_partitions).astype(np.int64)
    histogram_traffic = TrafficCounter(
        sequential_read_bytes=float(keys.nbytes),
        sequential_write_bytes=float(num_partitions * 8 * _NUM_THREADS),
        compute_ops=float(n) * 2.0,
    )
    histogram_exec = simulator.run(histogram_traffic, use_simd=True, label="cpu-radix-histogram")
    histogram_result = OperatorResult(
        value=histogram,
        time=histogram_exec.time,
        traffic=histogram_traffic,
        device="cpu",
        variant="stable",
        stats={"rows": float(n), "radix_bits": float(radix_bits)},
    )

    # --- shuffle phase ---------------------------------------------------
    offsets = np.zeros(num_partitions, dtype=np.int64)
    np.cumsum(histogram[:-1], out=offsets[1:])
    order = np.argsort(radix, kind="stable")
    out_keys = keys[order]
    out_payloads = payloads[order]

    shuffle_traffic = TrafficCounter(
        sequential_read_bytes=float(keys.nbytes + payloads.nbytes),
        sequential_write_bytes=float(keys.nbytes + payloads.nbytes),
        shared_bytes=float(keys.nbytes + payloads.nbytes),
        compute_ops=float(n) * 4.0,
    )
    # Once the per-thread partition buffers exceed L1, partially-filled buffer
    # lines get evicted and re-fetched before they are full, so the scattered
    # flushes amplify the write traffic by up to a cache line per tuple; this
    # produces the Figure 14b knee past 8 radix bits.
    line_bytes = simulator.spec.cache_line_bytes
    buffer_bytes = num_partitions * line_bytes
    if buffer_bytes > _L1_BUFFER_BYTES:
        overflow_fraction = 1.0 - _L1_BUFFER_BYTES / buffer_bytes
        tuple_bytes = float(keys.dtype.itemsize + payloads.dtype.itemsize)
        amplification = overflow_fraction * float(n) * max(line_bytes - tuple_bytes, 0.0)
        shuffle_traffic.sequential_write_bytes += amplification
    shuffle_exec = simulator.run(
        shuffle_traffic, use_simd=True, non_temporal_writes=True, label="cpu-radix-shuffle"
    )
    shuffle_result = OperatorResult(
        value=None,
        time=shuffle_exec.time,
        traffic=shuffle_traffic,
        device="cpu",
        variant="stable",
        stats={"rows": float(n), "radix_bits": float(radix_bits)},
    )

    output = RadixPartitionOutput(
        keys=out_keys,
        payloads=out_payloads,
        partition_offsets=offsets,
        radix_bits=radix_bits,
        start_bit=start_bit,
    )
    return output, histogram_result, shuffle_result
