"""CPU hash group-by aggregation.

The SSB queries end in a grouped sum with a small number of groups (at most
a few hundred), so the aggregation hash table is always cache resident.
Each core accumulates into a private table and the per-core tables are
merged at the end -- the standard strategy for low-cardinality group-bys.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.sim.cpu import CPUSimulator


def cpu_group_by_aggregate(
    group_keys: np.ndarray,
    values: np.ndarray,
    simulator: CPUSimulator | None = None,
) -> OperatorResult:
    """Compute ``SUM(values) GROUP BY group_keys`` on the CPU.

    ``group_keys`` may be a single array or a tuple of arrays (composite
    group-by); the result value is a dict mapping group key (or key tuple)
    to the sum.
    """
    simulator = simulator or CPUSimulator()
    if isinstance(group_keys, (tuple, list)):
        key_arrays = [np.asarray(k) for k in group_keys]
    else:
        key_arrays = [np.asarray(group_keys)]
    values = np.asarray(values)
    n = values.shape[0]
    for array in key_arrays:
        if array.shape[0] != n:
            raise ValueError("group key columns must align with the value column")

    if n == 0:
        groups: dict = {}
    else:
        stacked = np.stack(key_arrays, axis=1)
        unique_keys, inverse = np.unique(stacked, axis=0, return_inverse=True)
        sums = np.bincount(inverse, weights=values.astype(np.float64))
        if len(key_arrays) == 1:
            groups = {int(k[0]): float(s) for k, s in zip(unique_keys, sums)}
        else:
            groups = {tuple(int(x) for x in k): float(s) for k, s in zip(unique_keys, sums)}

    num_groups = max(len(groups), 1)
    slot_bytes = 8 + 8 * len(key_arrays)
    traffic = TrafficCounter(
        sequential_read_bytes=float(sum(a.nbytes for a in key_arrays) + values.nbytes),
        sequential_write_bytes=float(num_groups * slot_bytes),
        random_accesses=float(n),
        random_working_set_bytes=float(num_groups * slot_bytes),
        random_access_bytes=float(slot_bytes),
        compute_ops=float(n) * 4.0,
    )
    execution = simulator.run(traffic, label="cpu-groupby")
    return OperatorResult(
        value=groups,
        time=execution.time,
        traffic=traffic,
        device="cpu",
        variant="hash",
        stats={"rows": float(n), "groups": float(len(groups))},
    )
