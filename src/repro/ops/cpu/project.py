"""CPU projection (Section 4.1, queries Q1 and Q2).

Two variants are provided:

* ``naive`` -- the straightforward multi-threaded projection: each core
  scans its partition with scalar arithmetic and regular stores.
* ``opt`` -- the optimized version with SIMD arithmetic and non-temporal
  (streaming) stores that bypass the cache hierarchy; this is the variant
  that saturates memory bandwidth even for the sigmoid projection (Q2).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.sim.cpu import CPUSimulator

#: Scalar operation count per output element for the linear combination Q1.
_LINEAR_OPS_PER_ELEMENT = 3.0
#: Scalar operation count per output element for the sigmoid UDF Q2
#: (multiply-adds plus a polynomial exp approximation).
_SIGMOID_OPS_PER_ELEMENT = 22.0


def sigmoid(x: np.ndarray) -> np.ndarray:
    """The logistic function used as the UDF in Q2."""
    return 1.0 / (1.0 + np.exp(-x))


def cpu_project(
    x1: np.ndarray,
    x2: np.ndarray,
    a: float = 2.0,
    b: float = 3.0,
    udf: Callable[[np.ndarray], np.ndarray] | None = None,
    variant: str = "opt",
    simulator: CPUSimulator | None = None,
) -> OperatorResult:
    """Compute ``udf(a * x1 + b * x2)`` over two float columns.

    Args:
        x1, x2: Input columns (4-byte floats in the microbenchmark).
        a, b: Linear-combination coefficients.
        udf: Optional user-defined function applied to the combination
            (Q2 uses :func:`sigmoid`); ``None`` reproduces Q1.
        variant: ``"naive"`` or ``"opt"``.
        simulator: Override the CPU simulator (defaults to the paper CPU).

    Returns:
        An :class:`~repro.ops.base.OperatorResult` whose value is the
        projected column.
    """
    if variant not in ("naive", "opt"):
        raise ValueError(f"unknown CPU project variant {variant!r}")
    x1 = np.asarray(x1, dtype=np.float32)
    x2 = np.asarray(x2, dtype=np.float32)
    if x1.shape != x2.shape:
        raise ValueError("x1 and x2 must have equal length")
    simulator = simulator or CPUSimulator()

    combined = a * x1 + b * x2
    result = udf(combined).astype(np.float32) if udf is not None else combined.astype(np.float32)

    n = x1.shape[0]
    ops_per_element = _SIGMOID_OPS_PER_ELEMENT if udf is not None else _LINEAR_OPS_PER_ELEMENT
    traffic = TrafficCounter(
        sequential_read_bytes=float(x1.nbytes + x2.nbytes),
        sequential_write_bytes=float(result.nbytes),
        compute_ops=float(n) * ops_per_element,
    )
    execution = simulator.run(
        traffic,
        use_simd=(variant == "opt"),
        non_temporal_writes=(variant == "opt"),
        label=f"cpu-project-{variant}",
    )
    return OperatorResult(
        value=result,
        time=execution.time,
        traffic=traffic,
        device="cpu",
        variant=variant,
        stats={"rows": float(n), "ops_per_element": ops_per_element},
    )
