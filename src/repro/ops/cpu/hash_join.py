"""CPU no-partitioning hash join (Section 4.3, query Q4).

The join is split into the two standard phases:

* :func:`cpu_hash_join_build` populates a shared linear-probing hash table
  from the build relation in parallel.
* :func:`cpu_hash_join_probe` probes the table with the probe relation and
  computes the ``SUM(A.v + B.v)`` checksum of the microbenchmark.  Three
  probe variants are provided: ``scalar`` (tuple at a time), ``simd``
  (vertical vectorization with gathers -- slower in practice because every
  8-key round needs two gathers plus de-interleaving), and ``prefetch``
  (group prefetching, which only helps once the table spills out of the LLC
  and costs extra instructions when it does not).
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.ops.base import OperatorResult
from repro.ops.hash_table import LinearProbingHashTable
from repro.sim.cpu import CPUSimulator

_PROBE_VARIANTS = ("scalar", "simd", "prefetch")

#: Scalar-equivalent instruction cost per probed tuple for each variant.
#: The SIMD variant's gathers and de-interleave shuffles do not vectorize
#: the probe loop's latency chain, so its per-tuple cost is the highest
#: (this is what makes CPU SIMD slower than CPU Scalar in Figure 13).
_PROBE_OPS = {"scalar": 6.0, "simd": 11.0, "prefetch": 8.5}

#: Effective fraction of DRAM bandwidth achieved on probe misses.  Group
#: prefetching keeps more misses in flight and gets closer to peak.
_RANDOM_EFFICIENCY = {"scalar": 0.62, "simd": 0.62, "prefetch": 0.72}


def cpu_hash_join_build(
    build_keys: np.ndarray,
    build_values: np.ndarray,
    fill_factor: float = 0.5,
    simulator: CPUSimulator | None = None,
) -> tuple[LinearProbingHashTable, OperatorResult]:
    """Build the shared hash table from the build relation.

    Returns the table and the simulated build-phase execution (the build
    scans the build relation once and scatters one slot write per tuple;
    writes to a large table stream to memory, as the paper's discussion of
    the build phase notes).
    """
    simulator = simulator or CPUSimulator()
    build_keys = np.asarray(build_keys)
    build_values = np.asarray(build_values)
    table = LinearProbingHashTable.build(build_keys, build_values, fill_factor=fill_factor)

    n = build_keys.shape[0]
    traffic = TrafficCounter(
        sequential_read_bytes=float(n * 8),
        random_accesses=float(n),
        random_working_set_bytes=float(table.size_bytes),
        random_access_bytes=float(table.slot_bytes),
        compute_ops=float(n) * 4.0,
    )
    execution = simulator.run(traffic, label="cpu-join-build")
    result = OperatorResult(
        value=table,
        time=execution.time,
        traffic=traffic,
        device="cpu",
        variant="build",
        stats={
            "build_rows": float(n),
            "hash_table_bytes": float(table.size_bytes),
            "collisions": float(table.build_stats.collisions),
        },
    )
    return table, result


def cpu_hash_join_probe(
    probe_keys: np.ndarray,
    probe_values: np.ndarray,
    table: LinearProbingHashTable,
    variant: str = "scalar",
    simulator: CPUSimulator | None = None,
) -> OperatorResult:
    """Probe the hash table and compute ``SUM(A.v + B.v)`` over matches.

    Args:
        probe_keys / probe_values: Columns of the probe relation.
        table: Hash table produced by :func:`cpu_hash_join_build`.
        variant: ``"scalar"``, ``"simd"``, or ``"prefetch"``.
        simulator: Override the CPU simulator.

    Returns:
        An :class:`~repro.ops.base.OperatorResult` whose value is the
        checksum (a float) and whose stats include the match count.
    """
    if variant not in _PROBE_VARIANTS:
        raise ValueError(f"unknown CPU probe variant {variant!r}; expected one of {_PROBE_VARIANTS}")
    simulator = simulator or CPUSimulator()
    probe_keys = np.asarray(probe_keys)
    probe_values = np.asarray(probe_values)
    if probe_keys.shape != probe_values.shape:
        raise ValueError("probe keys and values must align")

    found, build_payload = table.probe(probe_keys)
    checksum = float(np.sum(probe_values[found].astype(np.float64) + build_payload[found].astype(np.float64)))

    n = probe_keys.shape[0]
    traffic = TrafficCounter(
        sequential_read_bytes=float(n * 8),
        random_accesses=float(n),
        random_working_set_bytes=float(table.size_bytes),
        random_access_bytes=float(table.slot_bytes),
        compute_ops=float(n) * _PROBE_OPS[variant],
        atomic_updates=float(simulator.spec.cores),
        atomic_targets=1.0,
    )
    execution = simulator.run(
        traffic,
        use_simd=False,
        random_efficiency=_RANDOM_EFFICIENCY[variant],
        label=f"cpu-join-probe-{variant}",
    )
    return OperatorResult(
        value=checksum,
        time=execution.time,
        traffic=traffic,
        device="cpu",
        variant=variant,
        stats={
            "probe_rows": float(n),
            "matches": float(np.count_nonzero(found)),
            "match_rate": float(np.count_nonzero(found)) / n if n else 0.0,
            "hash_table_bytes": float(table.size_bytes),
        },
    )
