"""CPU LSB radix sort (Section 4.4).

The least-significant-bit radix sort chains stable radix-partition passes
from the low bits to the high bits of the key.  With 8 bits per pass (the
most the L1-resident partition buffers allow while staying bandwidth bound),
sorting 32-bit keys takes four passes -- the configuration whose runtime the
paper reports as 464 ms for 2^28 key/value pairs.
"""

from __future__ import annotations

import numpy as np

from repro.ops.base import OperatorResult
from repro.ops.cpu.radix_partition import cpu_radix_partition
from repro.sim.cpu import CPUSimulator
from repro.sim.timing import TimeBreakdown


def cpu_radix_sort(
    keys: np.ndarray,
    payloads: np.ndarray | None = None,
    key_bits: int = 32,
    bits_per_pass: int = 8,
    simulator: CPUSimulator | None = None,
) -> OperatorResult:
    """Sort 32-bit keys (with payloads) using LSB radix sort.

    Args:
        keys: Key column (non-negative integers).
        payloads: Optional payload column carried along with the keys.
        key_bits: Number of key bits that must be ordered (32 by default).
        bits_per_pass: Radix width per pass (8 on the CPU).
        simulator: Override the CPU simulator.

    Returns:
        An :class:`~repro.ops.base.OperatorResult` whose value is the tuple
        ``(sorted_keys, sorted_payloads)``.
    """
    keys = np.asarray(keys)
    if payloads is None:
        payloads = np.zeros_like(keys)
    payloads = np.asarray(payloads)
    if np.any(keys < 0):
        raise ValueError("radix sort expects non-negative keys")
    simulator = simulator or CPUSimulator()

    total_time = TimeBreakdown()
    current_keys, current_payloads = keys, payloads
    num_passes = -(-key_bits // bits_per_pass)
    from repro.hardware.counters import TrafficCounter

    total_traffic = TrafficCounter()
    for pass_index in range(num_passes):
        start_bit = pass_index * bits_per_pass
        bits = min(bits_per_pass, key_bits - start_bit)
        output, hist_result, shuffle_result = cpu_radix_partition(
            current_keys, current_payloads, radix_bits=bits, start_bit=start_bit, simulator=simulator
        )
        current_keys, current_payloads = output.keys, output.payloads
        total_time.merge(hist_result.time, prefix=f"pass{pass_index}.hist.")
        total_time.merge(shuffle_result.time, prefix=f"pass{pass_index}.shuffle.")
        total_traffic.merge(hist_result.traffic)
        total_traffic.merge(shuffle_result.traffic)

    return OperatorResult(
        value=(current_keys, current_payloads),
        time=total_time,
        traffic=total_traffic,
        device="cpu",
        variant=f"lsb-{bits_per_pass}bit",
        stats={"rows": float(keys.shape[0]), "passes": float(num_passes)},
    )
