"""CPU operator implementations (Section 4, CPU side).

Each operator comes in the variants the paper evaluates:

* Project (Q1/Q2): ``naive`` (multi-threaded scalar) and ``opt``
  (SIMD + non-temporal writes).
* Select (Q3): ``if`` (branching), ``pred`` (predicated), ``simd_pred``
  (vectorized selective stores).
* Hash join (Q4): ``scalar``, ``simd`` (vertical vectorization), and
  ``prefetch`` (group prefetching), all over the shared linear-probing hash
  table.
* Radix partitioning / LSB radix sort following Polychroniou & Ross.
* A hash group-by aggregate used by the SSB engines.
"""

from repro.ops.cpu.aggregate import cpu_group_by_aggregate
from repro.ops.cpu.hash_join import cpu_hash_join_build, cpu_hash_join_probe
from repro.ops.cpu.project import cpu_project
from repro.ops.cpu.radix_join import cpu_radix_join
from repro.ops.cpu.radix_partition import cpu_radix_partition
from repro.ops.cpu.radix_sort import cpu_radix_sort
from repro.ops.cpu.select import cpu_gather_packed, cpu_select, cpu_select_pred

__all__ = [
    "cpu_group_by_aggregate",
    "cpu_hash_join_build",
    "cpu_hash_join_probe",
    "cpu_project",
    "cpu_radix_join",
    "cpu_radix_partition",
    "cpu_radix_sort",
    "cpu_gather_packed",
    "cpu_select",
    "cpu_select_pred",
]
