"""Common result type for operator executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.hardware.counters import TrafficCounter
from repro.sim.timing import TimeBreakdown


@dataclass
class OperatorResult:
    """The outcome of running one operator variant.

    Attributes:
        value: The computed result (an array, a scalar aggregate, a table...).
        time: Simulated execution time on the paper's hardware.
        traffic: The memory traffic the operator charged.
        device: ``"cpu"`` or ``"gpu"``.
        variant: The algorithm variant (e.g. ``"simd_pred"``, ``"prefetch"``).
        stats: Data-dependent statistics observed during execution
            (selectivity, match counts, ...), useful for feeding the analytic
            models and for scaling runs up to the paper's data sizes.
    """

    value: Any
    time: TimeBreakdown
    traffic: TrafficCounter
    device: str
    variant: str
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def milliseconds(self) -> float:
        return self.time.total_ms

    @property
    def seconds(self) -> float:
        return self.time.total_seconds

    def stat(self, name: str, default: float = 0.0) -> float:
        return float(self.stats.get(name, default))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OperatorResult(device={self.device!r}, variant={self.variant!r}, "
            f"time={self.milliseconds:.3f}ms)"
        )
