"""Linear-probing open-addressing hash table.

This is the hash table of Section 4.3: an array of slots, each holding a
4-byte key and a 4-byte payload, no pointers, probed with linear probing.
It is shared by the CPU and GPU join implementations (the algorithms differ
only in how the probe loop is scheduled, which the simulators account for).

Keys must be non-negative; the table reserves one sentinel value for empty
slots, exactly like the CUDA implementation reserves a key outside the
domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Sentinel stored in empty slots.  SSB keys and the microbenchmark keys are
#: all non-negative, matching the paper's setup.
EMPTY_KEY = np.int64(-1)


def _next_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << (int(value - 1).bit_length())


@dataclass
class _BuildStats:
    """Statistics from building the table (used by build-phase models)."""

    num_keys: int = 0
    num_slots: int = 0
    collisions: int = 0

    @property
    def fill_factor(self) -> float:
        return self.num_keys / self.num_slots if self.num_slots else 0.0


class LinearProbingHashTable:
    """An open-addressing hash table with linear probing.

    Args:
        num_slots: Number of slots; rounded up to a power of two so the hash
            can use a mask instead of a modulo.
        key_bytes / payload_bytes: Logical width of the stored key and
            payload; the microbenchmark uses 4 + 4 bytes per slot.
    """

    def __init__(self, num_slots: int, key_bytes: int = 4, payload_bytes: int = 4) -> None:
        if num_slots <= 0:
            raise ValueError("hash table needs at least one slot")
        self.num_slots = _next_power_of_two(num_slots)
        self._mask = self.num_slots - 1
        self.key_bytes = key_bytes
        self.payload_bytes = payload_bytes
        self._keys = np.full(self.num_slots, EMPTY_KEY, dtype=np.int64)
        self._values = np.zeros(self.num_slots, dtype=np.int64)
        self.build_stats = _BuildStats(num_slots=self.num_slots)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        values: np.ndarray | None = None,
        fill_factor: float = 0.5,
        key_bytes: int = 4,
        payload_bytes: int = 4,
    ) -> "LinearProbingHashTable":
        """Build a table over ``keys`` (and optional payloads).

        ``fill_factor`` controls how many slots are allocated relative to the
        number of keys (the paper uses 50%).
        """
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("keys must be a one-dimensional array")
        if np.any(keys < 0):
            raise ValueError("keys must be non-negative (the sentinel is negative)")
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError("fill factor must be in (0, 1]")
        if values is None:
            values = np.zeros_like(keys)
        values = np.asarray(values)
        if values.shape != keys.shape:
            raise ValueError("values must align with keys")
        num_slots = max(1, int(np.ceil(keys.shape[0] / fill_factor)))
        table = cls(num_slots, key_bytes=key_bytes, payload_bytes=payload_bytes)
        table.insert(keys, values)
        return table

    @property
    def size_bytes(self) -> int:
        """Logical size of the table (what the paper's x-axes plot)."""
        return self.num_slots * self.slot_bytes

    @property
    def slot_bytes(self) -> int:
        return self.key_bytes + self.payload_bytes

    @property
    def num_keys(self) -> int:
        return self.build_stats.num_keys

    def _hash(self, keys: np.ndarray) -> np.ndarray:
        # Multiplicative (Knuth) hashing followed by a mask.  Deterministic
        # and fast; the distribution quality only affects collision counts.
        h = (keys.astype(np.uint64) * np.uint64(2654435761)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        return (h & np.uint64(self._mask)).astype(np.int64)

    # ------------------------------------------------------------------
    def insert(self, keys: np.ndarray, values: np.ndarray) -> int:
        """Insert key/value pairs; returns the number of collision steps.

        Duplicate keys are allowed (the last write wins), matching the
        microbenchmark's unique-key build relation and the SSB dimension
        tables, whose keys are unique.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.shape != values.shape:
            raise ValueError("keys and values must have equal length")
        if keys.shape[0] + self.build_stats.num_keys > self.num_slots:
            raise ValueError("hash table over capacity")

        positions = self._hash(keys)
        pending = np.arange(keys.shape[0])
        collisions = 0
        # Resolve collisions in rounds: in each round, every pending key
        # claims its current slot if that slot is empty and it is the first
        # pending key targeting it; the rest advance one slot.
        while pending.size:
            pos = positions[pending]
            slot_keys = self._keys[pos]
            empty = slot_keys == EMPTY_KEY
            duplicate = slot_keys == keys[pending]
            # First pending key per slot wins the claim this round.
            order = np.argsort(pos, kind="stable")
            pos_sorted = pos[order]
            first_of_slot = np.ones(pos_sorted.shape[0], dtype=bool)
            first_of_slot[1:] = pos_sorted[1:] != pos_sorted[:-1]
            winner = np.zeros(pos.shape[0], dtype=bool)
            winner[order] = first_of_slot
            claim = (empty & winner) | duplicate

            claim_idx = pending[claim]
            self._keys[positions[claim_idx]] = keys[claim_idx]
            self._values[positions[claim_idx]] = values[claim_idx]

            pending = pending[~claim]
            if pending.size:
                positions[pending] = (positions[pending] + 1) & self._mask
                collisions += int(pending.size)

        self.build_stats.num_keys += int(keys.shape[0])
        self.build_stats.collisions += collisions
        return collisions

    def probe(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Probe the table with ``keys``.

        Returns ``(found, values)``: a boolean mask of keys present and the
        matching payloads (zero where absent).
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = keys.shape[0]
        found = np.zeros(n, dtype=bool)
        values = np.zeros(n, dtype=np.int64)
        if n == 0:
            return found, values

        positions = self._hash(keys)
        active = np.arange(n)
        steps = 0
        while active.size:
            pos = positions[active]
            slot_keys = self._keys[pos]
            match = slot_keys == keys[active]
            empty = slot_keys == EMPTY_KEY

            matched_idx = active[match]
            found[matched_idx] = True
            values[matched_idx] = self._values[pos[match]]

            # Keys that neither matched nor hit an empty slot continue.
            active = active[~(match | empty)]
            if active.size:
                positions[active] = (positions[active] + 1) & self._mask
                steps += 1
                if steps > self.num_slots:
                    raise RuntimeError("probe did not terminate; table is corrupt")
        return found, values

    def average_probe_length(self, sample_keys: np.ndarray | None = None) -> float:
        """Average number of slots inspected per probe (build-quality metric)."""
        keys = self._keys[self._keys != EMPTY_KEY] if sample_keys is None else np.asarray(sample_keys)
        if keys.size == 0:
            return 0.0
        positions = self._hash(keys.astype(np.int64))
        lengths = np.ones(keys.shape[0])
        active = np.arange(keys.shape[0])
        step = 0
        while active.size and step <= self.num_slots:
            pos = positions[active]
            slot_keys = self._keys[pos]
            done = (slot_keys == keys[active]) | (slot_keys == EMPTY_KEY)
            active = active[~done]
            if active.size:
                positions[active] = (positions[active] + 1) & self._mask
                lengths[active] += 1
            step += 1
        return float(lengths.mean())
