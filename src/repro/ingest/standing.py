"""Incrementally maintained aggregate queries over a growing fact table.

A :class:`StandingQuery` keeps a registered query's answer current across
micro-batch appends without re-scanning the whole fact table.  Each
refresh runs the *ordinary* staged pipeline -- the same lowering, the same
operators -- but over a delta database whose fact table is a zero-copy
view of just the newly appended rows (dimensions are shared snapshots),
then merges the delta's grouped partials into persistent per-group state.

Exactness, not approximation: every SSB measure is integer-valued and the
running sums stay far below 2**53, so float64 partial sums are exact and
merging them is associative -- the maintained answer is byte-identical to
a from-scratch evaluation at every version (the differential suite in
``tests/test_ingest.py`` proves it for all 13 queries).  The non-trivial
ops decompose classically:

* ``sum`` / ``count`` merge by addition, ``min`` / ``max`` by comparison;
* ``avg`` is not self-decomposable, so the query is rewritten into a
  ``sum`` part and a ``count`` part (:func:`dataclasses.replace` on the
  frozen spec) and the answer is their exact quotient -- the same
  division NumPy's ``mean``/grouped ``avg`` performs over exact sums.

Group keys are tuples of dictionary codes / small integers (the packed
radix keys of :func:`repro.engine.plan.factorize_group_keys` decode to
exactly these), so per-group state is a plain dict keyed by tuple and the
merge is a dict update.  Answers come back with keys in lexicographic
order, matching the from-scratch executor's ``np.unique`` ordering.

Dimension appends cannot be folded incrementally (an updated dimension
re-labels *old* fact rows), so a changed dimension version triggers one
full re-evaluation; the per-query build cache still keys its artifacts by
``(build, dimension version)``, so only the changed dimension rebuilds.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING

from repro.engine.cache import BuildArtifactCache, activate_builds
from repro.engine.plan import execute_query
from repro.ssb.queries import AggregateSpec, SSBQuery
from repro.storage.column import Column
from repro.storage.database import Database
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only (api imports this module)
    from repro.api.session import Session


def _tail_view(fact: Table, start: int) -> Table:
    """A zero-copy table over ``fact``'s rows from ``start`` on.

    NumPy slices share the underlying buffers, so the view costs no copy
    regardless of how large the sealed prefix is -- the whole point of
    incremental maintenance.
    """
    view = Table(name=fact.name, dictionaries=fact.dictionaries)
    for name, column in fact.columns.items():
        view.add_column(
            Column(name=name, values=column.values[start:], device=column.device, encoding=column.encoding)
        )
    return view


def _decompose(query: SSBQuery) -> "tuple[tuple[str, SSBQuery], ...]":
    """The delta queries to run per tick, as ``(slot, query)`` pairs.

    Every op except ``avg`` maintains itself under one slot; ``avg``
    splits into exact ``sum`` and ``count`` parts.
    """
    aggregate = query.aggregate
    if aggregate.op != "avg":
        return ((aggregate.op, query),)
    sum_part = dataclasses.replace(
        query,
        name=f"{query.name}#sum",
        aggregate=dataclasses.replace(aggregate, op="sum"),
    )
    count_part = dataclasses.replace(
        query,
        name=f"{query.name}#count",
        aggregate=AggregateSpec(columns=(), combine=None, op="count"),
    )
    return (("sum", sum_part), ("count", count_part))


def _merge_scalar(op: str, acc: "float | None", delta: "float | None") -> "float | None":
    if delta is None:
        return acc
    if acc is None:
        return delta
    if op in ("sum", "count"):
        return acc + delta
    return min(acc, delta) if op == "min" else max(acc, delta)


def _merge_groups(op: str, acc: "dict[tuple, float]", delta: "dict[tuple, float]") -> None:
    for key, value in delta.items():
        if key not in acc:
            acc[key] = value
        elif op in ("sum", "count"):
            acc[key] += value
        elif op == "min":
            acc[key] = min(acc[key], value)
        else:
            acc[key] = max(acc[key], value)


class StandingQuery:
    """One registered query plus its incrementally maintained answer.

    Construct through :meth:`repro.api.Session.register_standing`, which
    runs the initial full evaluation and refreshes the instance on every
    :meth:`~repro.api.Session.ingest`.  :meth:`refresh` is also safe to
    call directly after out-of-band appends.
    """

    def __init__(self, session: "Session", query: SSBQuery, *, name: "str | None" = None) -> None:
        self.session = session
        self.query = query
        self.name = name if name is not None else query.name
        self._parts = _decompose(query)
        self._lock = threading.Lock()
        # Per-slot state: a float (or None) for scalar queries, a dict of
        # group-key tuple -> float for grouped ones.
        self._state: dict[str, object] = {}
        self._rows = 0
        self._versions: dict[str, int] = {}
        # One persistent artifact cache per standing query: entries are
        # keyed by (build, dimension version), so unchanged dimensions hit
        # across every tick and a dimension append misses exactly once.
        # The cache's database binding is repointed at each tick's delta
        # database (artifacts embed dimension arrays, which the delta
        # shares by snapshot, so reuse across rebinds is sound).
        self._build_cache = BuildArtifactCache(None, maxsize=64)
        #: Refresh ticks that folded new data (or fully re-evaluated).
        self.ticks = 0
        #: Fact rows folded incrementally over the query's lifetime.
        self.delta_rows = 0
        #: Full re-evaluations (registration, or a dimension changed).
        self.full_refreshes = 0

    # ------------------------------------------------------------------
    def _dimension_names(self) -> list[str]:
        names = []
        for join in self.query.joins:
            names.append(join.dimension)
            if join.source is not None and join.source != self.query.fact:
                names.append(join.source)
        return names

    def refresh(self) -> bool:
        """Fold any data published since the last refresh into the answer.

        Incremental when only the fact table grew (the pipeline runs over
        just the appended rows); a full re-evaluation when a dimension's
        version changed or on first call.  Returns whether any work was
        done (``False`` for a no-op tick: nothing new anywhere).
        """
        with self._lock:
            db = self.session.db
            fact = db.table(self.query.fact)
            if hasattr(fact, "snapshot"):
                fact = fact.snapshot()
            versions = {self.query.fact: getattr(fact, "version", 0)}
            for name in self._dimension_names():
                versions[name] = getattr(db.table(name), "version", 0)

            dims_changed = any(
                versions[name] != self._versions.get(name) for name in versions if name != self.query.fact
            )
            first = not self._versions
            if first or dims_changed:
                start = 0
                self._state = {}
                self.full_refreshes += 1
            elif fact.num_rows > self._rows:
                start = self._rows
            else:
                self._versions = versions
                return False

            delta_db = Database(name=f"{db.name}#delta", tables=dict(db.tables))
            delta_db.tables[self.query.fact] = _tail_view(fact, start)
            for name in self._dimension_names():
                dimension = db.table(name)
                if hasattr(dimension, "snapshot"):
                    delta_db.tables[name] = dimension.snapshot()

            self._build_cache.db = delta_db
            with activate_builds(self._build_cache):
                for slot, part in self._parts:
                    value, _ = execute_query(delta_db, part)
                    self._fold(slot, value)

            self._rows = fact.num_rows
            self._versions = versions
            self.ticks += 1
            self.delta_rows += fact.num_rows - start
            return True

    def _fold(self, slot: str, value: object) -> None:
        op = slot if slot in ("sum", "count") else self.query.aggregate.op
        if isinstance(value, dict):
            acc = self._state.setdefault(slot, {})
            _merge_groups(op, acc, value)
        else:
            self._state[slot] = _merge_scalar(op, self._state.get(slot), value)

    # ------------------------------------------------------------------
    def answer(self) -> object:
        """The maintained answer at the last refreshed version.

        Same shape as :func:`repro.engine.plan.execute_query`'s value: a
        scalar for ungrouped queries, a dict of group-key tuple -> value
        (keys lexicographically sorted) for grouped ones.
        """
        with self._lock:
            if self.query.aggregate.op != "avg":
                state = self._state.get(self.query.aggregate.op)
                if isinstance(state, dict):
                    return {key: state[key] for key in sorted(state)}
                return state
            sums = self._state.get("sum")
            counts = self._state.get("count")
            if isinstance(sums, dict):
                counts = counts if isinstance(counts, dict) else {}
                return {key: sums[key] / counts[key] for key in sorted(sums)}
            if counts is None or counts == 0.0 or sums is None:
                return None
            return sums / counts

    @property
    def versions(self) -> dict[str, int]:
        """The table versions the maintained answer reflects."""
        with self._lock:
            return dict(self._versions)

    def build_cache_info(self):
        """Hit/miss counters of the query's private build-artifact cache."""
        return self._build_cache.info()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StandingQuery({self.name!r}, ticks={self.ticks}, "
            f"delta_rows={self.delta_rows}, full_refreshes={self.full_refreshes})"
        )
