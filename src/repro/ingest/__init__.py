"""Streaming ingest: micro-batch appends and incrementally maintained queries.

The storage layer already makes appends atomic and versioned
(:meth:`repro.storage.Table.append` seals a micro-batch off to the side and
publishes it with one tuple flip), and the engine caches invalidate by
``(table, version)`` instead of being wiped.  This package adds the two
pieces that turn those primitives into a streaming path:

* :class:`IngestBuffer` accumulates arriving rows and seals them into
  zone-aligned micro-batches (one :meth:`~repro.storage.Table.append` per
  batch), so zone-map maintenance extends whole sealed zones instead of
  repeatedly re-reducing a ragged tail.

* :class:`StandingQuery` keeps a registered aggregate query's answer
  maintained incrementally: each ingest tick evaluates the pipeline over
  only the newly appended fact rows and merges the grouped partials into
  persistent state -- byte-identical to a from-scratch run at every
  version.

:class:`~repro.api.Session` wires them together: ``session.ingest(...)``
appends and refreshes every query registered via
``session.register_standing(...)``.
"""

from repro.ingest.buffer import IngestBuffer
from repro.ingest.standing import StandingQuery

__all__ = ["IngestBuffer", "StandingQuery"]
