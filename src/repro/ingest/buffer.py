"""Zone-aligned micro-batch buffering for streaming appends.

Rows can arrive in any chunk size; what the storage layer wants is appends
whose batches align with the zone-map geometry, so that every sealed batch
turns into whole zones whose statistics are reduced exactly once and then
carried forward verbatim by :meth:`~repro.storage.zonemap.ColumnZoneStats.
extend`.  :class:`IngestBuffer` does that impedance matching: it stages
arriving chunks and seals one :meth:`~repro.storage.Table.append` per
``batch_rows`` accumulated, leaving any remainder staged until the next
arrival (or an explicit :meth:`flush`, which seals a partial batch).

Durability note: the buffer seals through the ordinary ``Table.append``
path, so when the owning session was opened with
``durability=DurabilityConfig(...)`` every sealed batch is written (and,
per policy, fsynced) to the write-ahead log *before* its version
publishes -- sealed means durable, while rows still staged in the buffer
are not yet: a crash loses at most the unsealed remainder, never a
published version.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

from repro.storage.table import Table
from repro.storage.zonemap import DEFAULT_ZONE_SIZE


class IngestBuffer:
    """Stages arriving rows and seals them into zone-aligned micro-batches.

    ``batch_rows`` defaults to the zone size (4096), so every sealed batch
    adds exactly one zone of rows; any multiple of the zone size keeps the
    alignment.  ``on_seal(version, rows)`` is invoked after each batch
    publishes -- the hook :meth:`repro.api.Session.ingest` uses to refresh
    standing queries -- and runs outside the buffer's own critical work, so
    it may itself read the table.

    Thread-safe: concurrent :meth:`add` calls interleave whole chunks (a
    chunk's rows are never split across *interleaved* writers, though one
    chunk may span two sealed batches).
    """

    def __init__(
        self,
        table: Table,
        *,
        batch_rows: int = DEFAULT_ZONE_SIZE,
        on_seal: "Callable[[int, int], None] | None" = None,
    ) -> None:
        if batch_rows < 1:
            raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
        self.table = table
        self.batch_rows = batch_rows
        self.on_seal = on_seal
        self._lock = threading.Lock()
        self._chunks: "list[dict[str, np.ndarray]]" = []
        self._staged_rows = 0
        #: Batches sealed (appends published) over the buffer's lifetime.
        self.sealed_batches = 0
        #: Rows published over the buffer's lifetime (excludes staged rows).
        self.sealed_rows = 0

    # ------------------------------------------------------------------
    @property
    def staged_rows(self) -> int:
        """Rows accepted but not yet sealed into a published batch."""
        with self._lock:
            return self._staged_rows

    def add(self, arrays: "dict[str, np.ndarray | Sequence]") -> list[int]:
        """Stage one chunk of rows; seal every full batch it completes.

        ``arrays`` maps every column of the table to equal-length values
        (validation and string encoding are delegated to
        :meth:`Table.append` at seal time; the column-name set and chunk
        raggedness are checked here so bad chunks fail fast, before they
        are mixed with good ones).  Returns the versions published by the
        batches this chunk sealed -- usually ``[]`` (still accumulating)
        or one version; a chunk larger than ``batch_rows`` can seal
        several.
        """
        chunk = {name: np.asarray(values) for name, values in arrays.items()}
        if set(chunk) != set(self.table.columns):
            missing = sorted(set(self.table.columns) - set(chunk))
            extra = sorted(set(chunk) - set(self.table.columns))
            raise ValueError(
                f"ingest chunk for table {self.table.name!r} must supply every column"
                + (f"; missing {missing}" if missing else "")
                + (f"; unknown {extra}" if extra else "")
            )
        lengths = {int(values.shape[0]) for values in chunk.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged ingest chunk for table {self.table.name!r}: lengths {sorted(lengths)}")
        rows = lengths.pop() if lengths else 0
        if rows == 0:
            return []

        sealed: list[int] = []
        while True:
            with self._lock:
                if chunk is not None:
                    self._chunks.append(chunk)
                    self._staged_rows += rows
                    chunk = None
                if self._staged_rows < self.batch_rows:
                    break
                batch = self._take(self.batch_rows)
            sealed.append(self._seal(batch, self.batch_rows))
        return sealed

    def flush(self) -> "int | None":
        """Seal whatever is staged as one final (possibly partial) batch.

        Returns the published version, or ``None`` if nothing was staged.
        The batch may be smaller than ``batch_rows`` -- its rows land in a
        partial tail zone, which zone-map maintenance re-reduces on the
        next extension.
        """
        with self._lock:
            rows = self._staged_rows
            if rows == 0:
                return None
            batch = self._take(rows)
        return self._seal(batch, rows)

    # ------------------------------------------------------------------
    def _take(self, rows: int) -> "dict[str, np.ndarray]":
        """Remove exactly ``rows`` staged rows (caller holds the lock)."""
        merged = {
            name: np.concatenate([chunk[name] for chunk in self._chunks])
            for name in self._chunks[0]
        }
        batch = {name: values[:rows] for name, values in merged.items()}
        remainder = {name: values[rows:] for name, values in merged.items()}
        leftover = int(next(iter(remainder.values())).shape[0])
        self._chunks = [remainder] if leftover else []
        self._staged_rows = leftover
        return batch

    def _seal(self, batch: "dict[str, np.ndarray]", rows: int) -> int:
        version = self.table.append(batch)
        self.sealed_batches += 1
        self.sealed_rows += rows
        if self.on_seal is not None:
            self.on_seal(version, rows)
        return version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IngestBuffer({self.table.name!r}, batch_rows={self.batch_rows}, "
            f"staged={self.staged_rows}, sealed={self.sealed_batches})"
        )
