"""repro: a reproduction of the SIGMOD 2020 GPU-vs-CPU database analytics study.

The package reimplements, in pure Python on simulated hardware, the systems
built and evaluated by Shanbhag, Madden, and Yu in *A Study of the
Fundamental Performance Characteristics of GPUs and CPUs for Database
Analytics*:

* :mod:`repro.crystal` -- the Crystal library of block-wide functions and
  the tile-based execution model (the paper's primary contribution).
* :mod:`repro.ops` -- CPU and GPU implementations of project, select, hash
  join, and radix sort/partitioning in the algorithm variants of Section 4.
* :mod:`repro.models` -- the analytic cost models of Sections 4 and 5.3.
* :mod:`repro.ssb` -- a Star Schema Benchmark data generator and the 13
  benchmark queries.
* :mod:`repro.engine` -- full-query engines: Standalone CPU, Standalone GPU
  (Crystal), GPU-as-coprocessor, and calibrated Hyper/MonetDB/OmniSci-like
  baselines.
* :mod:`repro.hardware` / :mod:`repro.sim` -- the simulated Intel i7-6900 and
  Nvidia V100 platforms all timings are reported on.
* :mod:`repro.analysis` -- the experiment registry that regenerates every
  figure and table of the paper's evaluation, plus the Table 3 cost model.

Quickstart::

    from repro.ssb import generate_ssb
    from repro.engine import CPUStandaloneEngine, GPUStandaloneEngine
    from repro.ssb.queries import QUERIES

    db = generate_ssb(scale_factor=0.01, seed=42)
    cpu = CPUStandaloneEngine(db)
    gpu = GPUStandaloneEngine(db)
    result = gpu.run(QUERIES["q2.1"])
    print(result.simulated_ms, result.rows)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
