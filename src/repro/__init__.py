"""repro: a reproduction of the SIGMOD 2020 GPU-vs-CPU database analytics study.

The package reimplements, in pure Python on simulated hardware, the systems
built and evaluated by Shanbhag, Madden, and Yu in *A Study of the
Fundamental Performance Characteristics of GPUs and CPUs for Database
Analytics*:

* :mod:`repro.api` -- the unified query API: the fluent :func:`Q` builder
  for arbitrary star-schema queries, the engine registry, and the
  :class:`Session` facade that dispatches to any engine by name.
* :mod:`repro.crystal` -- the Crystal library of block-wide functions and
  the tile-based execution model (the paper's primary contribution).
* :mod:`repro.ops` -- CPU and GPU implementations of project, select, hash
  join, and radix sort/partitioning in the algorithm variants of Section 4.
* :mod:`repro.models` -- the analytic cost models of Sections 4 and 5.3.
* :mod:`repro.ssb` -- a Star Schema Benchmark data generator and the 13
  benchmark queries.
* :mod:`repro.engine` -- full-query engines: Standalone CPU, Standalone GPU
  (Crystal), GPU-as-coprocessor, and calibrated Hyper/MonetDB/OmniSci-like
  baselines.
* :mod:`repro.hardware` / :mod:`repro.sim` -- the simulated Intel i7-6900 and
  Nvidia V100 platforms all timings are reported on.
* :mod:`repro.analysis` -- the experiment registry that regenerates every
  figure and table of the paper's evaluation, plus the Table 3 cost model.
* :mod:`repro.faults` -- deterministic fault injection (:class:`FaultPlan`)
  and the :class:`ResiliencePolicy` knobs of the degradation ladder the
  shard, storage, and service layers climb down under failure.
* :mod:`repro.storage.wal` -- crash-consistent durability: a checksummed
  write-ahead log and checkpoints behind
  ``Session(durability=DurabilityConfig(dir=...))``, with byte-identical
  recovery via ``Session.open``.

Quickstart::

    from repro import Q, Session, QUERIES, generate_ssb

    db = generate_ssb(scale_factor=0.01, seed=42)
    session = Session(db)

    # A canonical SSB query on the GPU engine.
    result = session.run(QUERIES["q2.1"], engine="gpu")
    print(result.simulated_ms, result.rows)

    # An ad-hoc query, compared across execution strategies.
    orders = (
        Q("lineorder")
        .filter("lo_quantity", "lt", 25)
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year")
        .agg("count")
    )
    print(session.compare(orders, engines=["cpu", "gpu", "coprocessor"]))
"""

__version__ = "1.4.0"

from repro.api import (
    FaultPlan,
    FaultPoint,
    Q,
    QueryBuilder,
    QueryValidationError,
    ResiliencePolicy,
    ResultSet,
    Session,
    available_engines,
    col,
    register_engine,
)
from repro.engine import (
    BuildArtifactCache,
    CoprocessorEngine,
    CPUStandaloneEngine,
    GPUStandaloneEngine,
    HyperLikeEngine,
    JoinOrderPlanner,
    LogicalPlan,
    MonetDBLikeEngine,
    OmnisciLikeEngine,
    PhysicalPlan,
    QueryResult,
    lower_query,
)
from repro.ingest import IngestBuffer, StandingQuery
from repro.service import (
    IngestResult,
    OverloadError,
    QueryService,
    QueryTimeoutError,
    RequestTrace,
    ServiceResult,
)
from repro.ssb import QUERIES, And, FilterSpec, Not, Or, Pred, SSBQuery, generate_ssb
from repro.storage import DurabilityConfig, DurabilityManager, RecoveryReport
from repro.workload import QueryClass, WorkloadDriver, WorkloadReport, WorkloadSpec

__all__ = [
    "And",
    "BuildArtifactCache",
    "CPUStandaloneEngine",
    "CoprocessorEngine",
    "DurabilityConfig",
    "DurabilityManager",
    "FaultPlan",
    "FaultPoint",
    "FilterSpec",
    "GPUStandaloneEngine",
    "HyperLikeEngine",
    "IngestBuffer",
    "IngestResult",
    "JoinOrderPlanner",
    "LogicalPlan",
    "MonetDBLikeEngine",
    "Not",
    "OmnisciLikeEngine",
    "Or",
    "OverloadError",
    "PhysicalPlan",
    "Pred",
    "Q",
    "QUERIES",
    "QueryBuilder",
    "QueryClass",
    "QueryResult",
    "QueryService",
    "QueryTimeoutError",
    "QueryValidationError",
    "RecoveryReport",
    "RequestTrace",
    "ResiliencePolicy",
    "ResultSet",
    "SSBQuery",
    "ServiceResult",
    "Session",
    "StandingQuery",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "available_engines",
    "col",
    "generate_ssb",
    "lower_query",
    "register_engine",
    "__version__",
]
