"""Workload statistics: per-class tail latencies and run-table artifacts.

The reporting shape follows the Locust/``dbworkload`` methodology: every
(run, repetition, class) triple gets one row of latency percentiles,
throughput, and failure/rejection rates, with an ``__all__`` aggregate row
per repetition, written to a ``run_table.csv`` whose rows downstream
analysis can pool, and a summary JSON with repetition-aware statistics
(mean/min/max of each percentile across repetitions -- never percentiles
of percentiles pooled silently).
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
import tempfile
from dataclasses import dataclass, fields
from typing import Iterable, Optional, Sequence

#: The class tag of the per-repetition aggregate row.
ALL_CLASSES = "__all__"

#: Column order of ``run_table.csv`` (one row per run x repetition x class).
RUN_TABLE_COLUMNS = (
    "run",
    "repetition",
    "class",
    "arrival",
    "target_rps",
    "users",
    "duration_s",
    "engine",
    "seed",
    "ingest_durability",
    "requests",
    "completed",
    "rejected",
    "shed",
    "timed_out",
    "failed",
    "attempts",
    "throughput_rps",
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    "failure_rate",
    "rejection_rate",
)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation (NumPy default).

    Pure Python so the math under the p99 numbers is inspectable and unit
    tested directly; raises on an empty sample rather than inventing a 0.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    fraction = position - lower
    return float(ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction)


@dataclass(frozen=True)
class ClassStats:
    """Latency and outcome statistics of one class in one repetition.

    Percentiles cover *completed* requests only (a rejection answers in
    microseconds and would flatter the tail); the failure and rejection
    rates put the refused traffic back into view.  Percentile fields are
    ``None`` when nothing completed.  ``attempts`` counts execution
    attempts including the service's transparent retries -- ``attempts >
    requests`` is the tell that completed-looking traffic was absorbing
    transient failures underneath.
    """

    class_tag: str
    requests: int
    completed: int
    rejected: int
    shed: int
    timed_out: int
    failed: int
    attempts: int
    throughput_rps: float
    mean_ms: Optional[float]
    p50_ms: Optional[float]
    p95_ms: Optional[float]
    p99_ms: Optional[float]
    max_ms: Optional[float]

    @property
    def failure_rate(self) -> float:
        """Requests that errored or timed out, as a fraction of submitted."""
        if not self.requests:
            return 0.0
        return (self.failed + self.timed_out) / self.requests

    @property
    def rejection_rate(self) -> float:
        """Requests refused by admission control (rejected or shed)."""
        if not self.requests:
            return 0.0
        return (self.rejected + self.shed) / self.requests

    @classmethod
    def from_outcomes(
        cls, class_tag: str, outcomes: Iterable[tuple], duration_s: float
    ) -> "ClassStats":
        """Fold ``(status, latency_ms[, attempts])`` outcomes into one stats row.

        The optional third element is the request's execution-attempt count
        (the driver reads it off the trace); two-tuples count one attempt,
        so pre-resilience outcome streams keep folding unchanged.
        """
        counts = {"ok": 0, "rejected": 0, "shed": 0, "timeout": 0, "error": 0}
        latencies: list[float] = []
        attempts = 0
        for status, latency_ms, *rest in outcomes:
            if status not in counts:
                raise ValueError(f"unknown outcome status {status!r}")
            counts[status] += 1
            attempts += rest[0] if rest else 1
            if status == "ok":
                latencies.append(latency_ms)
        return cls(
            class_tag=class_tag,
            requests=sum(counts.values()),
            completed=counts["ok"],
            rejected=counts["rejected"],
            shed=counts["shed"],
            timed_out=counts["timeout"],
            failed=counts["error"],
            attempts=attempts,
            throughput_rps=counts["ok"] / duration_s if duration_s > 0 else 0.0,
            mean_ms=sum(latencies) / len(latencies) if latencies else None,
            p50_ms=percentile(latencies, 50) if latencies else None,
            p95_ms=percentile(latencies, 95) if latencies else None,
            p99_ms=percentile(latencies, 99) if latencies else None,
            max_ms=max(latencies) if latencies else None,
        )

    def as_dict(self) -> dict:
        record = {f.name: getattr(self, f.name) for f in fields(self)}
        record["failure_rate"] = self.failure_rate
        record["rejection_rate"] = self.rejection_rate
        return record


@dataclass(frozen=True)
class RepetitionResult:
    """Everything measured in one repetition of one run."""

    repetition: int
    duration_s: float
    per_class: dict
    aggregate: ClassStats
    service: dict

    def as_dict(self) -> dict:
        return {
            "repetition": self.repetition,
            "duration_s": self.duration_s,
            "aggregate": self.aggregate.as_dict(),
            "per_class": {tag: stats.as_dict() for tag, stats in self.per_class.items()},
            "service": self.service,
        }


def run_table_rows(spec, repetitions: Sequence[RepetitionResult], run: str) -> list[dict]:
    """One dict per (run, repetition, class), aggregate row included."""
    rows = []
    for result in repetitions:
        stats_rows = [result.aggregate] + [
            result.per_class[tag] for tag in sorted(result.per_class)
        ]
        for stats in stats_rows:
            row = {
                "run": run,
                "repetition": result.repetition,
                "class": stats.class_tag,
                "arrival": spec.arrival,
                "target_rps": spec.target_rps if spec.arrival == "poisson" else "",
                "users": spec.users if spec.arrival == "closed" else "",
                "duration_s": round(result.duration_s, 6),
                "engine": spec.engine,
                "seed": spec.seed + result.repetition,
                # Older specs predate the field; blank means "not recorded",
                # matching the target_rps/users convention above.
                "ingest_durability": getattr(spec, "ingest_durability", None) or "",
                "requests": stats.requests,
                "completed": stats.completed,
                "rejected": stats.rejected,
                "shed": stats.shed,
                "timed_out": stats.timed_out,
                "failed": stats.failed,
                "attempts": stats.attempts,
                "throughput_rps": round(stats.throughput_rps, 3),
                "mean_ms": _round(stats.mean_ms),
                "p50_ms": _round(stats.p50_ms),
                "p95_ms": _round(stats.p95_ms),
                "p99_ms": _round(stats.p99_ms),
                "max_ms": _round(stats.max_ms),
                "failure_rate": round(stats.failure_rate, 6),
                "rejection_rate": round(stats.rejection_rate, 6),
            }
            rows.append(row)
    return rows


def _round(value: Optional[float], digits: int = 3) -> "float | str":
    return "" if value is None else round(value, digits)


def summarize_repetitions(repetitions: Sequence[RepetitionResult]) -> dict:
    """Repetition-aware per-class statistics: mean/min/max across reps.

    Percentiles are summarized *across* repetitions (the mean p99 of N
    repetitions, and its spread), never recomputed over pooled latencies --
    pooling would let a fast repetition mask a slow one's tail.
    """
    tags = sorted({tag for result in repetitions for tag in result.per_class})
    summary = {}
    for tag in tags + [ALL_CLASSES]:
        rows = [
            result.aggregate if tag == ALL_CLASSES else result.per_class[tag]
            for result in repetitions
            if tag == ALL_CLASSES or tag in result.per_class
        ]
        entry = {
            "repetitions": len(rows),
            "requests": sum(row.requests for row in rows),
            "completed": sum(row.completed for row in rows),
            "rejected": sum(row.rejected for row in rows),
            "shed": sum(row.shed for row in rows),
            "timed_out": sum(row.timed_out for row in rows),
            "failed": sum(row.failed for row in rows),
            "attempts": sum(row.attempts for row in rows),
            "throughput_rps": _spread([row.throughput_rps for row in rows]),
            "failure_rate": _spread([row.failure_rate for row in rows]),
            "rejection_rate": _spread([row.rejection_rate for row in rows]),
        }
        for name in ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"):
            values = [getattr(row, name) for row in rows if getattr(row, name) is not None]
            entry[name] = _spread(values) if values else None
        summary[tag] = entry
    return summary


def _spread(values: Sequence[float]) -> dict:
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }


# ----------------------------------------------------------------------
def write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a temp file + :func:`os.replace`."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".workload-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def render_run_table(rows: Sequence[dict]) -> str:
    """The run-table rows as CSV text in :data:`RUN_TABLE_COLUMNS` order."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=RUN_TABLE_COLUMNS, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_run_table(path: str, rows: Sequence[dict]) -> None:
    """Write (atomically) the ``run_table.csv`` artifact."""
    write_text_atomic(path, render_run_table(rows))


def write_summary_json(path: str, payload: dict) -> None:
    """Write (atomically) a summary JSON next to the run table."""
    write_text_atomic(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
