"""Declarative workload descriptions: what to replay, how fast, how long.

A :class:`WorkloadSpec` describes a mixed read workload the way load
generators like Locust or ``dbworkload`` do: a set of named *query
classes* with percentage weights, an arrival process (open-loop Poisson at
a target RPS, or closed-loop with N virtual users), a duration, and a
repetition count -- everything the driver needs to replay the same traffic
deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.api.builder import QueryBuilder
from repro.ssb.queries import SSBQuery

#: Arrival processes the driver understands.  ``poisson`` is open-loop
#: (arrivals keep coming at the target rate no matter how slow the service
#: is -- the honest way to measure tail latency under load); ``closed`` is
#: N virtual users in submit -> wait -> think loops (throughput self-limits
#: to the service's capacity, like a connection pool).
ARRIVALS = ("poisson", "closed")


@dataclass(frozen=True)
class QueryClass:
    """One named traffic class: a query and its share of the mix."""

    name: str
    query: "SSBQuery | QueryBuilder"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("query class needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"class {self.name!r}: weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class WorkloadSpec:
    """A replayable mixed workload.

    ``classes`` weights are relative (percentages work, any positive scale
    works); :attr:`fractions` normalizes them.  ``seed`` makes the whole
    replay deterministic -- repetition ``r`` derives its RNG from
    ``seed + r``, so repetitions differ from each other but reproduce
    run-to-run.  ``warmup=True`` (default) runs each class once, unmeasured,
    before the clock starts, so one-time work (zone-map construction,
    dimension build artifacts) does not pollute the first percentiles.
    """

    classes: tuple
    arrival: str = "poisson"
    target_rps: float = 50.0
    users: int = 4
    think_time_s: float = 0.0
    duration_s: float = 2.0
    repetitions: int = 1
    seed: int = 0
    engine: str = "cpu"
    timeout_s: Optional[float] = None
    warmup: bool = field(default=True, repr=False)
    #: The durability fsync policy ingest ran under while these latencies
    #: were measured (``"always"``/``"batch"``/``"off"``), or ``None`` for
    #: an in-memory session.  Purely descriptive -- the session owns the
    #: actual :class:`~repro.storage.DurabilityConfig` -- but recorded in
    #: ``run_table.csv`` and the summary JSON so an SLO number can never be
    #: quoted without the durability mode it was bought at.
    ingest_durability: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("workload needs at least one query class")
        names = [qclass.name for qclass in self.classes]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(f"duplicate query class name(s): {duplicates}")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"arrival must be one of {ARRIVALS}, got {self.arrival!r}")
        if self.arrival == "poisson" and self.target_rps <= 0:
            raise ValueError(f"target_rps must be positive, got {self.target_rps}")
        if self.arrival == "closed" and self.users < 1:
            raise ValueError(f"users must be >= 1, got {self.users}")
        if self.think_time_s < 0:
            raise ValueError(f"think_time_s must be >= 0, got {self.think_time_s}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.ingest_durability is not None and self.ingest_durability not in (
            "always",
            "batch",
            "off",
        ):
            raise ValueError(
                f"ingest_durability must be 'always', 'batch', or 'off', "
                f"got {self.ingest_durability!r}"
            )

    # ------------------------------------------------------------------
    @property
    def fractions(self) -> "dict[str, float]":
        """The class mix normalized to fractions summing to 1."""
        total = sum(qclass.weight for qclass in self.classes)
        return {qclass.name: qclass.weight / total for qclass in self.classes}

    def by_name(self, name: str) -> QueryClass:
        for qclass in self.classes:
            if qclass.name == name:
                return qclass
        raise KeyError(f"no query class named {name!r}")

    # ------------------------------------------------------------------
    @classmethod
    def ssb_mix(
        cls,
        *,
        percentages: "dict[str, float] | None" = None,
        extra: Sequence[QueryClass] = (),
        **kwargs,
    ) -> "WorkloadSpec":
        """The 13 canonical SSB queries as a workload mix.

        ``percentages`` overrides the default equal weights (name a subset
        to restrict the mix to it); ``extra`` appends custom classes --
        e.g. a :class:`~repro.api.builder.QueryBuilder` query -- on top.
        Remaining keyword arguments pass through to the spec.
        """
        from repro.ssb.queries import QUERIES, QUERY_ORDER

        if percentages is None:
            percentages = {name: 1.0 for name in QUERY_ORDER}
        unknown = sorted(set(percentages) - set(QUERIES))
        if unknown:
            raise ValueError(f"unknown SSB query name(s) in mix: {unknown}")
        classes = tuple(
            QueryClass(name, QUERIES[name], weight) for name, weight in percentages.items()
        ) + tuple(extra)
        return cls(classes=classes, **kwargs)
