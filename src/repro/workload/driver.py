"""The workload driver: replay a :class:`WorkloadSpec` against the service.

The driver is the load generator half of the serving story: it samples a
deterministic request schedule from the spec's seed, submits it to a fresh
:class:`~repro.service.QueryService` per repetition, records every
outcome (completed, rejected, shed, timed out, errored) with its latency,
and folds the outcomes into per-class and aggregate
:class:`~repro.workload.report.ClassStats`.

Two arrival processes:

* **open-loop Poisson** -- arrivals fire at the target RPS on an
  exponential clock regardless of how the service is doing.  This is the
  honest way to measure tail latency under load: a slow service faces a
  growing queue, not a politely waiting client.
* **closed-loop** -- N virtual users in submit -> await -> think loops.
  Throughput self-limits to service capacity, like a connection pool.

Determinism: all randomness (arrival gaps, class picks) is drawn from
``random.Random(seed + repetition)`` *before* any request is submitted, so
two runs of the same spec replay byte-identical schedules no matter how
the event loop interleaves.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.api.session import Session
from repro.service import OverloadError, QueryService, QueryTimeoutError
from repro.workload.report import (
    ALL_CLASSES,
    ClassStats,
    RepetitionResult,
    run_table_rows,
    summarize_repetitions,
    write_run_table,
    write_summary_json,
)
from repro.workload.spec import QueryClass, WorkloadSpec


def poisson_arrivals(target_rps: float, duration_s: float, rng: random.Random) -> list[float]:
    """Open-loop arrival offsets (seconds) on an exponential clock."""
    offsets: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(target_rps)
        if t >= duration_s:
            return offsets
        offsets.append(t)


def class_sequence(spec: WorkloadSpec, count: int, rng: random.Random) -> list[QueryClass]:
    """``count`` class picks drawn by weight from the spec's mix."""
    classes = list(spec.classes)
    weights = [qclass.weight for qclass in classes]
    return rng.choices(classes, weights=weights, k=count)


@dataclass(frozen=True)
class WorkloadReport:
    """The full result of one driver run: spec, repetitions, artifacts."""

    spec: WorkloadSpec
    repetitions: tuple
    run: str
    errors: tuple = ()

    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        """``run_table.csv`` rows: one per repetition x class (+ aggregate)."""
        return run_table_rows(self.spec, self.repetitions, self.run)

    def summary(self) -> dict:
        """Repetition-aware summary (the JSON artifact's payload)."""
        spec = self.spec
        return {
            "run": self.run,
            "spec": {
                "arrival": spec.arrival,
                "target_rps": spec.target_rps if spec.arrival == "poisson" else None,
                "users": spec.users if spec.arrival == "closed" else None,
                "think_time_s": spec.think_time_s,
                "duration_s": spec.duration_s,
                "repetitions": spec.repetitions,
                "seed": spec.seed,
                "engine": spec.engine,
                "timeout_s": spec.timeout_s,
                "ingest_durability": getattr(spec, "ingest_durability", None),
                "mix": {qclass.name: qclass.weight for qclass in spec.classes},
            },
            "classes": summarize_repetitions(self.repetitions),
            "repetitions": [result.as_dict() for result in self.repetitions],
            "errors": list(self.errors),
        }

    def write_run_table(self, path: str) -> None:
        write_run_table(path, self.rows())

    def write_summary(self, path: str) -> None:
        write_summary_json(path, self.summary())

    # ------------------------------------------------------------------
    @property
    def aggregate(self) -> ClassStats:
        """The last repetition's aggregate row (convenience accessor)."""
        return self.repetitions[-1].aggregate

    def __str__(self) -> str:
        lines = [f"workload {self.run}: {len(self.repetitions)} repetition(s)"]
        header = (
            f"  {'class':<16} {'reqs':>6} {'ok':>6} {'rej':>5} {'p50ms':>8} "
            f"{'p95ms':>8} {'p99ms':>8} {'rps':>8}"
        )
        lines.append(header)
        summary = summarize_repetitions(self.repetitions)
        for tag, entry in summary.items():
            p50 = entry["p50_ms"]["mean"] if entry["p50_ms"] else float("nan")
            p95 = entry["p95_ms"]["mean"] if entry["p95_ms"] else float("nan")
            p99 = entry["p99_ms"]["mean"] if entry["p99_ms"] else float("nan")
            lines.append(
                f"  {tag:<16} {entry['requests']:>6} {entry['completed']:>6} "
                f"{entry['rejected'] + entry['shed']:>5} {p50:>8.2f} {p95:>8.2f} "
                f"{p99:>8.2f} {entry['throughput_rps']['mean']:>8.1f}"
            )
        return "\n".join(lines)


class WorkloadDriver:
    """Replays one :class:`WorkloadSpec` and measures what came back.

    ``service_config`` passes through to each repetition's fresh
    :class:`~repro.service.QueryService` (admission limits, overload
    policy); the spec's ``engine``/``timeout_s`` are applied on top.  The
    session is shared across repetitions -- its caches persist, which is
    the production situation (a warm server), and ``warmup`` covers the
    first repetition's cold start.
    """

    def __init__(
        self,
        session: Session,
        spec: WorkloadSpec,
        *,
        service_config: "dict | None" = None,
    ) -> None:
        self.session = session
        self.spec = spec
        self.service_config = dict(service_config or {})
        for reserved in ("engine", "timeout_s"):
            if reserved in self.service_config:
                raise ValueError(f"{reserved!r} is set by the WorkloadSpec, not service_config")

    # ------------------------------------------------------------------
    def run(self, run: str = "run_1") -> WorkloadReport:
        """Execute every repetition and return the full report."""
        repetitions = []
        errors: list[str] = []
        for rep in range(self.spec.repetitions):
            result, rep_errors = asyncio.run(self._repetition(rep))
            repetitions.append(result)
            errors.extend(rep_errors)
        return WorkloadReport(self.spec, tuple(repetitions), run, tuple(errors))

    # ------------------------------------------------------------------
    def _service(self) -> QueryService:
        return QueryService(
            self.session,
            engine=self.spec.engine,
            timeout_s=self.spec.timeout_s,
            **self.service_config,
        )

    async def _repetition(self, rep: int):
        spec = self.spec
        rng = random.Random(spec.seed + rep)
        service = self._service()
        outcomes: dict[str, list] = {qclass.name: [] for qclass in spec.classes}
        errors: list[str] = []

        if spec.warmup:
            # One unmeasured pass per class: builds zone maps and dimension
            # artifacts so the measured window starts warm.
            for qclass in spec.classes:
                await service.submit(qclass.query, class_tag=qclass.name, timeout=None)
        warmup_requests = len(spec.classes) if spec.warmup else 0

        loop = asyncio.get_running_loop()
        start = loop.time()
        if spec.arrival == "poisson":
            offsets = poisson_arrivals(spec.target_rps, spec.duration_s, rng)
            picks = class_sequence(spec, len(offsets), rng)
            tasks = []
            for offset, qclass in zip(offsets, picks):
                delay = start + offset - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(
                    asyncio.create_task(self._one(service, qclass, outcomes, errors))
                )
            if tasks:
                await asyncio.gather(*tasks)
        else:
            deadline = start + spec.duration_s
            user_rngs = [random.Random(rng.random()) for _ in range(spec.users)]

            async def virtual_user(user_rng: random.Random) -> None:
                while loop.time() < deadline:
                    qclass = class_sequence(spec, 1, user_rng)[0]
                    await self._one(service, qclass, outcomes, errors)
                    if spec.think_time_s:
                        await asyncio.sleep(spec.think_time_s)

            await asyncio.gather(*(virtual_user(user_rng) for user_rng in user_rngs))
        await service.close(drain=True)
        elapsed = loop.time() - start

        per_class = {
            tag: ClassStats.from_outcomes(tag, rows, elapsed)
            for tag, rows in outcomes.items()
            if rows
        }
        aggregate = ClassStats.from_outcomes(
            ALL_CLASSES, [row for rows in outcomes.values() for row in rows], elapsed
        )
        stats = service.stats
        service_dict = {
            "submitted": stats.submitted,
            "completed": stats.completed,
            "rejected": stats.rejected,
            "shed": stats.shed,
            "timed_out": stats.timed_out,
            "failed": stats.failed,
            "cancelled": stats.cancelled,
            "peak_queue_depth": stats.peak_queue_depth,
            "peak_inflight": stats.peak_inflight,
            "retries": stats.retries,
            "breaker_trips": stats.breaker_trips,
            "warmup_requests": warmup_requests,
        }
        result = RepetitionResult(
            repetition=rep,
            duration_s=elapsed,
            per_class=per_class,
            aggregate=aggregate,
            service=service_dict,
        )
        return result, errors

    async def _one(
        self,
        service: QueryService,
        qclass: QueryClass,
        outcomes: dict,
        errors: list,
    ) -> None:
        started = time.perf_counter()
        status = "ok"
        latency_ms: Optional[float] = None
        attempts = 1
        try:
            submitted = await service.submit(qclass.query, class_tag=qclass.name)
            latency_ms = submitted.latency_ms
            attempts = submitted.trace.attempts
        except OverloadError as exc:
            status = "shed" if exc.shed else "rejected"
        except QueryTimeoutError:
            status = "timeout"
        except Exception as exc:
            status = "error"
            errors.append(f"{qclass.name}: {type(exc).__name__}: {exc}")
        if latency_ms is None:
            latency_ms = (time.perf_counter() - started) * 1e3
        outcomes[qclass.name].append((status, latency_ms, attempts))
