"""Workload replay: mixed query traffic at a target rate, measured at the tail.

The driver half of the serving story (the service half is
:mod:`repro.service`):

* :mod:`repro.workload.spec` -- :class:`WorkloadSpec` / :class:`QueryClass`,
  the declarative description of a mixed read workload (class percentages,
  open-loop Poisson or closed-loop arrivals, duration, repetitions, seed).
* :mod:`repro.workload.driver` -- :class:`WorkloadDriver`, which replays a
  spec against a :class:`~repro.service.QueryService` and returns a
  :class:`WorkloadReport`.
* :mod:`repro.workload.report` -- per-class tail-latency statistics
  (:class:`ClassStats`), repetition-aware summaries, and the
  ``run_table.csv`` / summary-JSON artifact writers.
"""

from repro.workload.driver import (
    WorkloadDriver,
    WorkloadReport,
    class_sequence,
    poisson_arrivals,
)
from repro.workload.report import (
    ALL_CLASSES,
    RUN_TABLE_COLUMNS,
    ClassStats,
    RepetitionResult,
    percentile,
    render_run_table,
    run_table_rows,
    summarize_repetitions,
    write_run_table,
    write_summary_json,
)
from repro.workload.spec import ARRIVALS, QueryClass, WorkloadSpec

__all__ = [
    "ALL_CLASSES",
    "ARRIVALS",
    "ClassStats",
    "QueryClass",
    "RepetitionResult",
    "RUN_TABLE_COLUMNS",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "class_sequence",
    "percentile",
    "poisson_arrivals",
    "render_run_table",
    "run_table_rows",
    "summarize_repetitions",
    "write_run_table",
    "write_summary_json",
]
