"""Checkpoint files: whole-table snapshots that bound WAL replay.

A write-ahead log alone makes recovery correct but not cheap -- replay
time grows with everything ever ingested.  A checkpoint caps it: the
published state of *every* table (full column arrays, dtypes, encodings,
dictionary labels, version) is serialized into ``checkpoint-<seq>.ckpt``
using the same framed-record codec as the WAL
(:func:`repro.storage.wal.frame_record`), closed by a footer record that
names the sequence number and the exact version frontier.  After the file
is durably in place, the WAL drops every record the snapshot covers.

Validity is structural, not advisory: a checkpoint counts only if the
whole file parses record-by-record to exact EOF, the footer is present,
and the footer's table set matches the table records.  Anything less --
a torn tail from a crash mid-write, a missing footer, trailing garbage --
is skipped by :func:`load_latest_checkpoint`, which walks newest to
oldest until one parses clean.  Writers never expose a partial file under
the real name: bytes go to a ``.tmp`` sibling, are fsynced, and only then
renamed into place (plus a directory fsync so the rename itself is
durable).  Orphaned ``.tmp`` files -- a writer that died mid-write -- are
swept by recovery (:func:`clean_orphan_tmp`).

The :data:`~repro.faults.CHECKPOINT_WRITE` fault site fires inside the
writer with the ``.tmp`` file in hand, so ``torn`` mode produces exactly
the orphan + partial-file shapes the loader is tested against.
"""

from __future__ import annotations

import os
import re
import struct
import time

from repro.faults.plan import (
    CHECKPOINT_WRITE,
    FaultAction,
    TransientFaultError,
)
from repro.faults.plan import KILL_EXIT_CODE as _KILL_EXIT_CODE

#: Checkpoint file header: magic + format version (12 bytes).
CHECKPOINT_MAGIC = b"REPROCKP"
CHECKPOINT_FORMAT_VERSION = 1
_CKPT_HEADER = CHECKPOINT_MAGIC + struct.pack("<I", CHECKPOINT_FORMAT_VERSION)

_CKPT_NAME = re.compile(r"^checkpoint-(\d+)\.ckpt$")


def checkpoint_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"checkpoint-{seq:08d}.ckpt")


def checkpoint_paths(directory: str) -> "list[tuple[int, str]]":
    """Every checkpoint file in ``directory`` as ``(seq, path)``, oldest first."""
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _CKPT_NAME.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort()
    return found


def next_checkpoint_seq(directory: str) -> int:
    existing = checkpoint_paths(directory)
    return (existing[-1][0] + 1) if existing else 1


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------

def write_checkpoint(
    directory: str,
    seq: int,
    table_payloads,
    versions: "dict[str, int]",
    *,
    faults=None,
) -> str:
    """Write one checkpoint generation atomically; return its final path.

    ``table_payloads`` are pre-encoded table record payloads (one per
    table, from :func:`repro.storage.wal.encode_table_payload`);
    ``versions`` the frontier they capture, recorded in the footer.  The
    fault site fires after the ``.tmp`` file is open but before it is
    complete, so an injected ``kill`` orphans the temp file and a ``torn``
    leaves it half-written -- both invisible to the loader, both swept by
    the next recovery.
    """
    # Local import: wal.py imports this module lazily for the same reason.
    from repro.storage.wal import frame_record
    import json

    footer = json.dumps(
        {"kind": "footer", "seq": int(seq), "versions": {k: int(v) for k, v in versions.items()}},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    footer_payload = struct.pack("<I", len(footer)) + footer
    blob = _CKPT_HEADER + b"".join(
        frame_record(payload) for payload in list(table_payloads) + [footer_payload]
    )
    final_path = checkpoint_path(directory, seq)
    tmp_path = final_path + ".tmp"
    with open(tmp_path, "wb") as handle:
        _fire(faults, handle, blob)
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, final_path)
    _fsync_dir(directory)
    return final_path


def _fire(faults, handle, blob: bytes) -> None:
    """Arm the :data:`CHECKPOINT_WRITE` site with the temp file in hand."""
    plan = faults() if callable(faults) else faults
    if plan is None:
        return
    action: "FaultAction | None" = plan.arm(CHECKPOINT_WRITE)
    if action is None:
        return
    if action.mode == "latency":
        time.sleep(action.delay_s)
        return
    if action.mode == "raise":
        raise TransientFaultError(
            f"injected transient fault at {CHECKPOINT_WRITE} (pid {os.getpid()})"
        )
    if action.mode == "torn":
        cut = max(1, min(len(blob) - 1, len(blob) // 2))
        handle.write(blob[:cut])
        handle.flush()
        os.fsync(handle.fileno())
    # "kill", and the crash half of "torn": the .tmp orphan stays behind.
    os._exit(_KILL_EXIT_CODE)


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def prune_checkpoints(directory: str, *, keep: int = 2) -> "list[str]":
    """Delete all but the ``keep`` newest checkpoint files; return removals."""
    existing = checkpoint_paths(directory)
    removed = []
    for _seq, path in existing[:-keep] if keep > 0 else existing:
        try:
            os.unlink(path)
            removed.append(path)
        except FileNotFoundError:  # pragma: no cover - concurrent prune
            pass
    return removed


def clean_orphan_tmp(directory: str, *, keep: "str | None" = None) -> "list[str]":
    """Remove leftover ``*.tmp`` files (crashed writers); return removals.

    ``keep`` exempts one live path (the WAL's own rewrite temp, should a
    rewrite be in flight in this very process).
    """
    if not os.path.isdir(directory):
        return []
    removed = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".tmp"):
            continue
        path = os.path.join(directory, name)
        if keep is not None and os.path.abspath(path) == os.path.abspath(keep):
            continue
        try:
            os.unlink(path)
            removed.append(path)
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            pass
    return removed


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def parse_checkpoint(path: str):
    """Parse one checkpoint file completely, or return ``None`` if invalid.

    Valid means: recognizable header, every record frames and checksums
    cleanly to *exact* EOF, the last record is a footer, and the footer's
    version map names exactly the tables that have records.  Returns
    ``(seq, states)`` with ``states`` mapping table name to
    ``(version, arrays, meta, labels)``.
    """
    from repro.storage.wal import (
        decode_payload_header,
        decode_table_payload,
        scan_records,
    )

    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    if data[: len(_CKPT_HEADER)] != _CKPT_HEADER:
        return None
    scan = scan_records(data, len(_CKPT_HEADER))
    if scan.torn or not scan.payloads:
        return None
    try:
        footer = decode_payload_header(scan.payloads[-1])
    except Exception:
        return None
    if footer.get("kind") != "footer":
        return None
    states = {}
    try:
        for payload in scan.payloads[:-1]:
            header, arrays = decode_table_payload(payload)
            meta = {name: (dtype, encoding) for name, dtype, encoding in header["columns"]}
            states[header["table"]] = (
                int(header["version"]),
                arrays,
                meta,
                header.get("labels", {}),
            )
    except Exception:
        return None
    versions = footer.get("versions", {})
    if set(versions) != set(states):
        return None
    for name, (version, _arrays, _meta, _labels) in states.items():
        if int(versions[name]) != version:
            return None
    return int(footer["seq"]), states


def load_latest_checkpoint(directory: str):
    """The newest checkpoint that parses clean, scanning newest to oldest.

    Returns ``(seq, states, invalid_count)``; ``(None, None, n)`` when no
    generation is valid (``n`` counts the invalid files encountered).
    """
    invalid = 0
    for seq, path in reversed(checkpoint_paths(directory)):
        parsed = parse_checkpoint(path)
        if parsed is None:
            invalid += 1
            continue
        parsed_seq, states = parsed
        # Trust the filename ordering but report the footer's own seq.
        return parsed_seq if parsed_seq == seq else seq, states, invalid
    return None, None, invalid
