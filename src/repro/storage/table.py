"""Tables: named collections of equal-length columns."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.memory import Device
from repro.storage.column import Column
from repro.storage.dictionary import DictionaryEncoder


@dataclass
class Table:
    """A columnar table.

    Columns are stored by name; all columns must have the same length.
    Dictionary encoders for encoded string columns are kept alongside so
    predicates can be rewritten and results decoded.
    """

    name: str
    columns: dict[str, Column] = field(default_factory=dict)
    dictionaries: dict[str, DictionaryEncoder] = field(default_factory=dict)

    @classmethod
    def from_arrays(cls, name: str, arrays: dict[str, np.ndarray], device: Device = Device.CPU) -> "Table":
        """Build a table from a mapping of column name to array."""
        table = cls(name=name)
        for column_name, values in arrays.items():
            table.add_column(Column(name=column_name, values=values, device=device))
        return table

    def add_column(self, column: Column) -> None:
        """Add a column, enforcing length consistency."""
        if self.columns and len(column) != self.num_rows:
            raise ValueError(
                f"column {column.name!r} has {len(column)} rows, table {self.name!r} "
                f"has {self.num_rows}"
            )
        self.columns[column.name] = column

    def add_encoded_column(
        self, name: str, raw_values, device: Device = Device.CPU, domain=None
    ) -> DictionaryEncoder:
        """Dictionary encode ``raw_values`` and store them as an int32 column.

        ``domain`` optionally supplies the full value domain for the
        dictionary; passing it keeps predicate constants resolvable even when
        a small generated sample does not contain every domain value.
        """
        encoder = DictionaryEncoder.from_values(domain if domain is not None else raw_values)
        codes = encoder.encode(raw_values)
        self.add_column(Column(name=name, values=codes, device=device, encoding="dictionary"))
        self.dictionaries[name] = encoder
        return encoder

    def column(self, name: str) -> Column:
        """Look up a column by name, with a helpful error message."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; available: {sorted(self.columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        """The raw values of a column (shorthand used by the operators)."""
        return self.column(name).values

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        """Total bytes across all columns."""
        return sum(column.nbytes for column in self.columns.values())

    def column_names(self) -> list[str]:
        return list(self.columns)

    def bytes_for(self, column_names) -> int:
        """Total bytes of a subset of columns (used for PCIe accounting)."""
        return sum(self.column(name).nbytes for name in column_names)

    def select_rows(self, mask_or_indices) -> "Table":
        """Materialize a row subset into a new table (used by tests/examples)."""
        result = Table(name=f"{self.name}_subset", dictionaries=dict(self.dictionaries))
        for name, column in self.columns.items():
            result.add_column(
                Column(
                    name=name,
                    values=column.values[mask_or_indices],
                    device=column.device,
                    encoding=column.encoding,
                )
            )
        return result

    def to_device(self, device: Device) -> "Table":
        """Return a table whose columns are marked resident on ``device``."""
        result = Table(name=self.name, dictionaries=dict(self.dictionaries))
        for column in self.columns.values():
            result.add_column(column.to_device(device))
        return result

    def encode_predicate_value(self, column_name: str, value: str) -> int:
        """Rewrite a string predicate constant into its dictionary code."""
        if column_name not in self.dictionaries:
            raise KeyError(f"column {column_name!r} of table {self.name!r} is not dictionary encoded")
        return self.dictionaries[column_name].encode_value(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.num_rows}, columns={self.column_names()})"
