"""Tables: named collections of equal-length columns, with versioned appends.

A table's data is published as one immutable ``(version, columns)`` tuple:
readers take a :meth:`Table.snapshot` (a single atomic read of the tuple)
and work against a frozen view, while :meth:`Table.append` builds the grown
column arrays off to the side and publishes them with one atomic tuple flip
under the per-table append lock.  A reader therefore never observes a torn
micro-batch -- it either sees all of version ``v`` or all of ``v + 1``, and
the columns of one snapshot are always mutually consistent lengths.

``version`` increases monotonically with every non-empty append, which is
what the engine caches key invalidation on: execution memo entries, build
artifacts, and zone maps are all keyed by ``(table, version)`` so an append
invalidates exactly the artifacts whose inputs changed
(:mod:`repro.engine.cache`).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.hardware.memory import Device
from repro.storage.column import Column
from repro.storage.dictionary import DictionaryEncoder


class Table:
    """A columnar table.

    Columns are stored by name; all columns must have the same length.
    Dictionary encoders for encoded string columns are kept alongside so
    predicates can be rewritten and results decoded.

    Construction (``add_column`` / ``add_encoded_column``) mutates the
    current column dict in place and is a single-threaded setup activity,
    exactly as before.  Once a table serves concurrent readers, the only
    legal mutation is :meth:`append`, which publishes a whole new
    ``(version, columns)`` state atomically.
    """

    def __init__(
        self,
        name: str,
        columns: dict[str, Column] | None = None,
        dictionaries: dict[str, DictionaryEncoder] | None = None,
    ) -> None:
        self.name = name
        self.dictionaries = dictionaries if dictionaries is not None else {}
        #: The single published state: ``(version, columns)``.  Read it once
        #: to get a consistent view; never mutate a published dict after a
        #: concurrent reader may hold it (append builds a fresh dict).
        self._published: tuple[int, dict[str, Column]] = (0, columns if columns is not None else {})
        self._append_lock = threading.Lock()
        self._frozen = False
        #: Durability hook: when set (by
        #: :class:`repro.storage.wal.DurabilityManager`), every non-empty
        #: append calls ``wal_sink(table, new_version, prepared_arrays)``
        #: *before* publishing -- the write-ahead contract.  Empty batches
        #: never reach it, so log records and version bumps stay 1:1.
        self.wal_sink = None

    # ------------------------------------------------------------------
    @property
    def columns(self) -> dict[str, Column]:
        """The published column dict (one atomic read of the state tuple)."""
        return self._published[1]

    @property
    def version(self) -> int:
        """Monotonic data version; bumped by every non-empty :meth:`append`."""
        return self._published[0]

    def snapshot(self) -> "Table":
        """A frozen read view of the table's current published state.

        The snapshot shares the column arrays and dictionaries with the
        source (zero copy) but pins one ``(version, columns)`` pair, so a
        query that captured it keeps seeing mutually consistent columns even
        while appends publish newer versions.  Snapshots refuse
        :meth:`append`; snapshotting a snapshot returns it unchanged.
        """
        if self._frozen:
            return self
        snap = Table.__new__(Table)
        snap.name = self.name
        snap.dictionaries = self.dictionaries
        snap._published = self._published  # the one atomic read
        snap._append_lock = threading.Lock()
        snap._frozen = True
        snap.wal_sink = None
        return snap

    @classmethod
    def from_published(
        cls,
        name: str,
        version: int,
        columns: dict[str, Column],
        dictionaries: dict[str, DictionaryEncoder] | None = None,
    ) -> "Table":
        """Reconstruct a frozen table around an already-published state.

        The cross-process counterpart of :meth:`snapshot`: a worker that
        attached a table's columns from shared memory
        (:mod:`repro.storage.shm`) rebuilds the same frozen,
        version-pinned view the parent exported, so version-keyed caches
        (zone maps, build artifacts) agree across the process boundary.
        """
        table = cls.__new__(cls)
        table.name = name
        table.dictionaries = dictionaries if dictionaries is not None else {}
        table._published = (version, dict(columns))
        table._append_lock = threading.Lock()
        table._frozen = True
        table.wal_sink = None
        return table

    @classmethod
    def from_arrays(cls, name: str, arrays: dict[str, np.ndarray], device: Device = Device.CPU) -> "Table":
        """Build a table from a mapping of column name to array."""
        table = cls(name=name)
        for column_name, values in arrays.items():
            table.add_column(Column(name=column_name, values=values, device=device))
        return table

    def add_column(self, column: Column) -> None:
        """Add a column, enforcing length consistency."""
        if self.columns and len(column) != self.num_rows:
            raise ValueError(
                f"column {column.name!r} has {len(column)} rows, table {self.name!r} "
                f"has {self.num_rows}"
            )
        self.columns[column.name] = column

    def add_encoded_column(
        self, name: str, raw_values, device: Device = Device.CPU, domain=None
    ) -> DictionaryEncoder:
        """Dictionary encode ``raw_values`` and store them as an int32 column.

        ``domain`` optionally supplies the full value domain for the
        dictionary; passing it keeps predicate constants resolvable even when
        a small generated sample does not contain every domain value.
        """
        encoder = DictionaryEncoder.from_values(domain if domain is not None else raw_values)
        codes = encoder.encode(raw_values)
        self.add_column(Column(name=name, values=codes, device=device, encoding="dictionary"))
        self.dictionaries[name] = encoder
        return encoder

    # ------------------------------------------------------------------
    def append(self, arrays: dict) -> int:
        """Append one micro-batch of rows and publish it atomically.

        ``arrays`` maps *every* column name to an equal-length 1-D array of
        new values.  String values for dictionary-encoded columns are
        encoded through the table's existing encoder (unknown labels raise,
        like predicate constants do); numeric values are cast to the stored
        dtype with a losslessness check, so an overflowing append fails
        instead of silently wrapping.

        The grown arrays are built entirely off to the side and then
        published with a single ``(version + 1, columns)`` tuple flip, so a
        concurrent :meth:`snapshot` sees either the old state or the new
        one, never a mix.  Returns the new version (the old one for an
        empty batch, which publishes nothing).
        """
        if self._frozen:
            raise ValueError(f"table {self.name!r} is a frozen snapshot; append to the source table")
        with self._append_lock:
            version, columns = self._published
            if not columns:
                raise ValueError(f"cannot append to table {self.name!r}: it has no columns yet")
            given, have = set(arrays), set(columns)
            if given != have:
                missing, extra = sorted(have - given), sorted(given - have)
                raise ValueError(
                    f"append to table {self.name!r} must supply every column exactly once"
                    + (f"; missing {missing}" if missing else "")
                    + (f"; unknown {extra}" if extra else "")
                )
            prepared: dict[str, np.ndarray] = {}
            batch_rows = None
            for name, column in columns.items():
                incoming = np.asarray(arrays[name])
                if incoming.dtype.kind in ("U", "S", "O"):
                    if name not in self.dictionaries:
                        raise TypeError(
                            f"column {name!r} of table {self.name!r} is not dictionary encoded; "
                            f"append numeric values"
                        )
                    incoming = self.dictionaries[name].encode(incoming)
                if incoming.ndim != 1:
                    raise ValueError(f"append values for column {name!r} must be 1-D")
                if batch_rows is None:
                    batch_rows = int(incoming.shape[0])
                elif int(incoming.shape[0]) != batch_rows:
                    raise ValueError(
                        f"ragged append to table {self.name!r}: column {name!r} has "
                        f"{incoming.shape[0]} rows, expected {batch_rows}"
                    )
                if incoming.dtype != column.values.dtype:
                    cast = incoming.astype(column.values.dtype)
                    if not np.array_equal(cast, incoming):
                        raise ValueError(
                            f"append values for column {name!r} do not fit dtype "
                            f"{column.values.dtype} losslessly"
                        )
                    incoming = cast
                prepared[name] = incoming
            if not batch_rows:
                # Empty batch: no version bump, and deliberately no WAL
                # record either -- replaying the log must bump versions
                # exactly as the original appends did, never skip.
                return version
            if self.wal_sink is not None:
                # Write-ahead: the record must be durable (per the
                # configured fsync policy) before the version flip below
                # makes the batch visible.  A failure here (injected or
                # real) aborts the append with nothing published.
                self.wal_sink(self, version + 1, prepared)
            new_columns = {
                name: Column(
                    name=name,
                    values=np.concatenate([column.values, prepared[name]]),
                    device=column.device,
                    encoding=column.encoding,
                )
                for name, column in columns.items()
            }
            # Seal-then-publish: the grown state becomes visible in one
            # atomic assignment, and only after every column is complete.
            self._published = (version + 1, new_columns)
            return version + 1

    # ------------------------------------------------------------------
    def replay_append(self, version: int, arrays: dict) -> bool:
        """Re-apply one WAL record during recovery; return whether it applied.

        ``arrays`` are the *prepared* batch exactly as logged (already
        dictionary-encoded, already cast), so this bypasses the encoders
        and concatenates byte-for-byte.  Records at or below the current
        version are duplicates -- a checkpoint already covers them, or a
        crash interrupted the log truncation -- and replay as no-ops, so
        version numbers never skip across recovery.  A gap (record version
        more than one ahead) means the log is from a different lineage and
        is an error, not data.
        """
        if self._frozen:
            raise ValueError(f"table {self.name!r} is a frozen snapshot; cannot replay into it")
        with self._append_lock:
            current, columns = self._published
            if version <= current:
                return False
            if version != current + 1:
                raise ValueError(
                    f"replay gap on table {self.name!r}: log record is version {version} "
                    f"but the table is at {current}"
                )
            if set(arrays) != set(columns):
                raise ValueError(
                    f"replay record for table {self.name!r} has columns {sorted(arrays)}, "
                    f"table has {sorted(columns)}"
                )
            new_columns = {
                name: Column(
                    name=name,
                    values=np.concatenate([column.values, arrays[name]]),
                    device=column.device,
                    encoding=column.encoding,
                )
                for name, column in columns.items()
            }
            self._published = (version, new_columns)
            return True

    def restore_published(
        self,
        version: int,
        columns: dict[str, Column],
        dictionaries: dict[str, DictionaryEncoder] | None = None,
    ) -> None:
        """Replace the published state wholesale (checkpoint restore).

        Unlike :meth:`append` this may move the version *backwards* in the
        in-memory sense -- recovery installs the checkpointed frontier and
        then replays the WAL tail forward.  ``dictionaries`` (when given)
        are copied *into* the existing encoder objects in place, because
        snapshots and the session's caches share those objects by identity.
        """
        if self._frozen:
            raise ValueError(f"table {self.name!r} is a frozen snapshot; cannot restore into it")
        with self._append_lock:
            if dictionaries:
                for name, restored in dictionaries.items():
                    existing = self.dictionaries.get(name)
                    if existing is None:
                        self.dictionaries[name] = restored
                    elif list(existing.values) != list(restored.values):
                        existing.values.clear()
                        existing._code_of.clear()
                        for label in restored.values:
                            existing.add(label)
            self._published = (int(version), dict(columns))

    # ------------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Look up a column by name, with a helpful error message."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; available: {sorted(self.columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        """The raw values of a column (shorthand used by the operators)."""
        return self.column(name).values

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    @property
    def num_rows(self) -> int:
        columns = self.columns
        if not columns:
            return 0
        return len(next(iter(columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        """Total bytes across all columns."""
        return sum(column.nbytes for column in self.columns.values())

    def column_names(self) -> list[str]:
        return list(self.columns)

    def bytes_for(self, column_names) -> int:
        """Total bytes of a subset of columns (used for PCIe accounting)."""
        return sum(self.column(name).nbytes for name in column_names)

    def select_rows(self, mask_or_indices) -> "Table":
        """Materialize a row subset into a new table (used by tests/examples)."""
        result = Table(name=f"{self.name}_subset", dictionaries=dict(self.dictionaries))
        for name, column in self.columns.items():
            result.add_column(
                Column(
                    name=name,
                    values=column.values[mask_or_indices],
                    device=column.device,
                    encoding=column.encoding,
                )
            )
        return result

    def to_device(self, device: Device) -> "Table":
        """Return a table whose columns are marked resident on ``device``."""
        result = Table(name=self.name, dictionaries=dict(self.dictionaries))
        for column in self.columns.values():
            result.add_column(column.to_device(device))
        return result

    def encode_predicate_value(self, column_name: str, value: str) -> int:
        """Rewrite a string predicate constant into its dictionary code."""
        if column_name not in self.dictionaries:
            raise KeyError(f"column {column_name!r} of table {self.name!r} is not dictionary encoded")
        return self.dictionaries[column_name].encode_value(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.num_rows}, columns={self.column_names()})"
