"""Crash-consistent durability: the write-ahead log and its manager.

Every appended micro-batch lives only in memory until this module gets
involved: a process crash between two queries silently erases every version
the ingest path published.  :class:`DurabilityManager` closes that hole with
the classic two-piece discipline:

* **Write-ahead log** (:class:`WriteAheadLog`): before a
  :meth:`~repro.storage.Table.append` publishes version ``v + 1``, the
  batch -- table name, version, every column's array bytes + dtype +
  encoding, and the dictionary labels of encoded columns -- is serialized
  into one CRC32-checksummed, length-prefixed record and written (and,
  per policy, fsynced) to ``wal.log``.  Only then does the version flip.
* **Checkpoints** (:mod:`repro.storage.checkpoint`): when the log grows
  past a configured threshold, whole published table states are
  snapshotted to a versioned ``checkpoint-<seq>.ckpt`` file (written to a
  ``.tmp`` sibling, fsynced, atomically renamed) and the log drops every
  record the checkpoint already covers.

Recovery (:meth:`DurabilityManager.recover`, surfaced as
``Session.open(durability=...)``) inverts the pipeline: load the newest
*valid* checkpoint (torn or corrupt ones are skipped, orphaned ``.tmp``
files removed), replay the WAL tail in version order (records at or below
a table's restored version are duplicates and replay as no-ops -- version
numbers never skip), and cleanly truncate a torn tail (partial header,
short payload, checksum mismatch) instead of crashing.  The recovered
frontier is *byte-identical* to the pre-crash published state: every
column array, dtype, and dictionary label round-trips exactly, so zone
maps, build artifacts, and standing queries rebuilt over the recovered
data equal their pre-crash counterparts.

Fsync policy (``DurabilityConfig.fsync``):

============  ====================================================
``always``    fsync after every record; an acknowledged append
              survives an OS crash (the strongest, slowest point).
``batch``     fsync every ``batch_every`` records and at every
              checkpoint/close; bounded loss window, much cheaper.
``off``       never fsync; the OS page cache decides.  Survives
              process crashes (the write itself is visible to other
              processes immediately), not kernel/power failures.
============  ====================================================

Fault injection rides through the same sites discipline as the shard plane
(:mod:`repro.faults.plan`): :data:`~repro.faults.WAL_APPEND`,
:data:`~repro.faults.WAL_FSYNC`, and
:data:`~repro.faults.CHECKPOINT_WRITE` arm the session's plan, with the
``torn`` mode writing a *prefix* of the in-flight record before exiting --
the exact tail shape recovery is tested against.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import (
    WAL_APPEND,
    WAL_FSYNC,
    FaultAction,
    TransientFaultError,
    active_fault_plan,
)
from repro.faults.plan import KILL_EXIT_CODE as _KILL_EXIT_CODE
from repro.storage.column import Column
from repro.storage.dictionary import DictionaryEncoder

#: File names inside a durability directory.
WAL_NAME = "wal.log"

#: WAL file header: magic + format version (12 bytes).
WAL_MAGIC = b"REPROWAL"
WAL_FORMAT_VERSION = 1
_WAL_HEADER = WAL_MAGIC + struct.pack("<I", WAL_FORMAT_VERSION)

#: Per-record frame: payload length + CRC32 of the payload.
_RECORD_FRAME = struct.Struct("<II")

#: Sanity ceiling on one record's payload (a length field beyond this is
#: treated as tail corruption, not an allocation request).
MAX_RECORD_BYTES = 1 << 31

#: Fsync policies (see the module docstring's table).
FSYNC_POLICIES = ("always", "batch", "off")

#: Every durability directory any manager in this process has opened --
#: the artifact-leak test guard sweeps these for orphaned ``.tmp`` files.
_KNOWN_DIRS: "set[str]" = set()


def known_durability_dirs() -> "set[str]":
    """Durability directories opened by this process (for leak guards)."""
    return set(_KNOWN_DIRS)


class DurabilityError(RuntimeError):
    """A durability invariant was violated (gap in the log, label drift)."""


@dataclass(frozen=True)
class DurabilityConfig:
    """The durability knobs a :class:`~repro.api.Session` is built with.

    ``dir`` is the one required field: the directory holding ``wal.log``
    and the checkpoint files (created if missing).  ``checkpoint_every``
    (appends) and ``checkpoint_bytes`` (WAL size) arm the threshold
    checkpointer -- whichever trips first; both ``None`` (the default)
    means checkpoints happen only on explicit ``Session.checkpoint()``
    calls.  ``keep_checkpoints`` bounds how many snapshot generations stay
    on disk (older ones are pruned after each successful write; at least
    one is always kept).
    """

    dir: str
    fsync: str = "always"
    batch_every: int = 32
    checkpoint_every: "int | None" = None
    checkpoint_bytes: "int | None" = None
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if not self.dir:
            raise ValueError("DurabilityConfig.dir must be a non-empty path")
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}")
        if self.batch_every < 1:
            raise ValueError(f"batch_every must be >= 1, got {self.batch_every}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {self.checkpoint_every}")
        if self.checkpoint_bytes is not None and self.checkpoint_bytes < 1:
            raise ValueError(f"checkpoint_bytes must be >= 1, got {self.checkpoint_bytes}")
        if self.keep_checkpoints < 1:
            raise ValueError(f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}")


@dataclass(frozen=True)
class DurabilityStats:
    """A point-in-time snapshot of the durability plane's bookkeeping."""

    mode: str
    records_logged: int
    bytes_logged: int
    wal_bytes: int
    fsyncs: int
    last_fsync_ms: "float | None"
    total_fsync_ms: float
    checkpoints_written: int
    appends_since_checkpoint: int


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`DurabilityManager.recover` pass found and did."""

    checkpoint_seq: "int | None"
    checkpoint_tables: tuple
    invalid_checkpoints: int
    replayed_records: int
    skipped_records: int
    torn_tail: bool
    dropped_bytes: int
    removed_tmp: tuple
    versions: dict

    @property
    def restored(self) -> bool:
        """Whether recovery changed anything (checkpoint load or replay)."""
        return self.checkpoint_seq is not None or self.replayed_records > 0


# ----------------------------------------------------------------------
# Record codec (shared by the WAL and the checkpoint files)
# ----------------------------------------------------------------------

def frame_record(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length-prefixed, CRC32-checksummed frame."""
    return _RECORD_FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class ScanResult:
    """One pass over a record stream: the intact payloads and the tear."""

    payloads: tuple
    good_end: int
    torn: bool
    dropped_bytes: int


def scan_records(buffer: bytes, offset: int = 0) -> ScanResult:
    """Walk frame-by-frame from ``offset``; stop cleanly at the first tear.

    A tear is any of: fewer than 8 frame-header bytes left, a length field
    pointing past the end of the buffer (short write), an absurd length
    (corruption), or a CRC mismatch.  Everything before the tear is intact
    and returned; ``good_end`` is the byte offset recovery truncates to.
    """
    payloads = []
    end = len(buffer)
    while True:
        if offset + _RECORD_FRAME.size > end:
            torn = offset != end
            return ScanResult(tuple(payloads), offset, torn, end - offset)
        length, crc = _RECORD_FRAME.unpack_from(buffer, offset)
        start = offset + _RECORD_FRAME.size
        if length > MAX_RECORD_BYTES or start + length > end:
            return ScanResult(tuple(payloads), offset, True, end - offset)
        payload = buffer[start:start + length]
        if zlib.crc32(payload) != crc:
            return ScanResult(tuple(payloads), offset, True, end - offset)
        payloads.append(payload)
        offset = start + length


def encode_table_payload(
    table_name: str,
    version: int,
    arrays: "dict[str, np.ndarray]",
    meta: "dict[str, tuple[str, str | None]]",
    labels: "dict[str, list[str]]",
) -> bytes:
    """Serialize one table state (or micro-batch) into a record payload.

    ``arrays`` maps column names to 1-D arrays; ``meta`` carries each
    column's ``(dtype_str, encoding)`` pair; ``labels`` the dictionary
    labels of encoded columns.  Layout: a length-prefixed JSON header
    (column order, dtypes, row count, labels) followed by each column's
    raw little-endian bytes in header order -- self-describing, byte-exact,
    no pickling.
    """
    names = sorted(arrays)
    rows = int(next(iter(arrays.values())).shape[0]) if arrays else 0
    header = {
        "kind": "table",
        "table": table_name,
        "version": int(version),
        "rows": rows,
        "columns": [[name, meta[name][0], meta[name][1]] for name in names],
        "labels": {name: list(values) for name, values in sorted(labels.items())},
    }
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    parts = [struct.pack("<I", len(header_bytes)), header_bytes]
    for name in names:
        values = np.ascontiguousarray(arrays[name])
        if values.dtype.str != meta[name][0]:  # pragma: no cover - caller bug guard
            raise DurabilityError(
                f"column {name!r}: array dtype {values.dtype.str} != declared {meta[name][0]}"
            )
        parts.append(values.tobytes())
    return b"".join(parts)


def decode_payload_header(payload: bytes) -> dict:
    """The JSON header of a record payload, without touching the arrays."""
    if len(payload) < 4:
        raise DurabilityError("record payload shorter than its header length field")
    (header_len,) = struct.unpack_from("<I", payload, 0)
    if 4 + header_len > len(payload):
        raise DurabilityError("record payload shorter than its declared header")
    return json.loads(payload[4:4 + header_len].decode("utf-8"))


def decode_table_payload(payload: bytes) -> "tuple[dict, dict[str, np.ndarray]]":
    """Deserialize a table record payload back into header + column arrays.

    Arrays are copied out of the payload buffer (writable, independent of
    the file bytes), in exactly the dtype they were written with.
    """
    header = decode_payload_header(payload)
    if header.get("kind") != "table":
        raise DurabilityError(f"expected a table record, got kind {header.get('kind')!r}")
    (header_len,) = struct.unpack_from("<I", payload, 0)
    offset = 4 + header_len
    rows = int(header["rows"])
    arrays: "dict[str, np.ndarray]" = {}
    for name, dtype_str, _encoding in header["columns"]:
        dtype = np.dtype(dtype_str)
        nbytes = rows * dtype.itemsize
        if offset + nbytes > len(payload):
            raise DurabilityError(
                f"record for table {header['table']!r} v{header['version']}: column "
                f"{name!r} truncated ({len(payload) - offset} of {nbytes} bytes)"
            )
        arrays[name] = np.frombuffer(payload, dtype=dtype, count=rows, offset=offset).copy()
        offset += nbytes
    if offset != len(payload):
        raise DurabilityError(
            f"record for table {header['table']!r} v{header['version']}: "
            f"{len(payload) - offset} trailing bytes"
        )
    return header, arrays


# ----------------------------------------------------------------------
# The write-ahead log file
# ----------------------------------------------------------------------

class WriteAheadLog:
    """An append-only, checksummed record log with a configurable fsync point.

    Opening the log validates it end to end: a torn tail (from a previous
    crash mid-write) is truncated away immediately, so appends always land
    after the last intact record.  All methods are thread-safe under one
    internal lock; the :data:`~repro.faults.WAL_APPEND` and
    :data:`~repro.faults.WAL_FSYNC` fault sites fire inside it, so an
    injected crash tears the file exactly where a real one would.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "always",
        batch_every: int = 32,
        faults=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.path = path
        self.fsync_policy = fsync
        self.batch_every = batch_every
        #: Zero-arg callable returning the active :class:`FaultPlan` (or
        #: ``None``); injected by the manager so plans ride the session,
        #: with a ContextVar fallback for ad-hoc scopes.
        self._faults = faults if faults is not None else active_fault_plan
        self._lock = threading.Lock()
        self.records_logged = 0
        self.bytes_logged = 0
        self.fsyncs = 0
        self.last_fsync_ms: "float | None" = None
        self.total_fsync_ms = 0.0
        self._since_fsync = 0
        #: What opening found: was the tail torn, and how many bytes went.
        self.opened_torn = False
        self.opened_dropped_bytes = 0
        self._fh = None
        self._open()

    # ------------------------------------------------------------------
    def _open(self) -> None:
        """Open (creating if needed), validate, and truncate a torn tail."""
        fresh = not os.path.exists(self.path)
        if fresh:
            with open(self.path, "wb") as handle:
                handle.write(_WAL_HEADER)
                handle.flush()
                os.fsync(handle.fileno())
        with open(self.path, "rb") as handle:
            data = handle.read()
        if data[: len(_WAL_HEADER)] != _WAL_HEADER:
            # Unrecognized or torn header (including a zero-length file): the
            # log holds nothing recoverable -- restart it cleanly.
            self.opened_torn = len(data) > 0
            self.opened_dropped_bytes = len(data)
            with open(self.path, "wb") as handle:
                handle.write(_WAL_HEADER)
                handle.flush()
                os.fsync(handle.fileno())
            good_end = len(_WAL_HEADER)
        else:
            scan = scan_records(data, len(_WAL_HEADER))
            self.opened_torn = scan.torn
            self.opened_dropped_bytes = scan.dropped_bytes
            good_end = scan.good_end
            if scan.torn:
                with open(self.path, "r+b") as handle:
                    handle.truncate(good_end)
                    handle.flush()
                    os.fsync(handle.fileno())
        self._fh = open(self.path, "r+b")
        self._fh.seek(good_end)

    def close(self) -> None:
        """Flush, fsync, and close (idempotent)."""
        with self._lock:
            if self._fh is None:
                return
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def size(self) -> int:
        """Current on-disk size of the log in bytes."""
        return os.path.getsize(self.path)

    # ------------------------------------------------------------------
    def append(self, payload: bytes) -> int:
        """Frame, write, and (per policy) fsync one record; return its size.

        This is the durability point of :meth:`repro.storage.Table.append`:
        the caller only publishes its version flip after this returns.  The
        ``wal.append`` fault site fires *before* any byte is written (a
        ``kill`` there loses the record whole -- a clean tail), and the
        ``torn`` mode writes half the frame before exiting.
        """
        record = frame_record(payload)
        with self._lock:
            if self._fh is None:
                raise DurabilityError(f"write-ahead log {self.path} is closed")
            self._fire(WAL_APPEND, record)
            self._fh.write(record)
            self.records_logged += 1
            self.bytes_logged += len(record)
            self._since_fsync += 1
            self._maybe_fsync()
        return len(record)

    def sync(self) -> None:
        """Force an fsync now (checkpoint barriers, graceful close)."""
        with self._lock:
            if self._fh is None:
                return
            self._fsync()

    def _maybe_fsync(self) -> None:
        self._fh.flush()
        if self.fsync_policy == "always":
            self._fsync()
        elif self.fsync_policy == "batch" and self._since_fsync >= self.batch_every:
            self._fsync()

    def _fsync(self) -> None:
        # Timed from before the fault site, so an injected ``latency``
        # fault (a simulated slow disk) shows up in the fsync stats the
        # request traces report.
        started = time.perf_counter()
        self._fire(WAL_FSYNC, None)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        elapsed_ms = (time.perf_counter() - started) * 1e3
        self.fsyncs += 1
        self.last_fsync_ms = elapsed_ms
        self.total_fsync_ms += elapsed_ms
        self._since_fsync = 0

    def _fire(self, site: str, record: "bytes | None") -> None:
        """Arm the active fault plan at ``site`` and execute what it says."""
        provider = self._faults
        plan = provider() if callable(provider) else provider
        if plan is None:
            return
        action: "FaultAction | None" = plan.arm(site)
        if action is None:
            return
        if action.mode == "latency":
            time.sleep(action.delay_s)
            return
        if action.mode == "raise":
            raise TransientFaultError(f"injected transient fault at {site} (pid {os.getpid()})")
        if action.mode == "torn" and record is not None:
            # The crash shape a power cut leaves: a prefix of the frame on
            # disk, then nothing.  Flush so the bytes actually land before
            # the process disappears.
            cut = max(1, min(len(record) - 1, len(record) // 2))
            self._fh.write(record[:cut])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os._exit(_KILL_EXIT_CODE)
        # "kill", and "torn" with no record in hand, end the process here.
        os._exit(_KILL_EXIT_CODE)

    # ------------------------------------------------------------------
    def read_payloads(self) -> ScanResult:
        """Re-scan the on-disk log and return every intact record payload."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
        with open(self.path, "rb") as handle:
            data = handle.read()
        if data[: len(_WAL_HEADER)] != _WAL_HEADER:
            return ScanResult((), len(_WAL_HEADER), len(data) > 0, len(data))
        return scan_records(data, len(_WAL_HEADER))

    def rewrite(self, payloads) -> None:
        """Atomically replace the log's contents with ``payloads``.

        The checkpoint path uses this to drop every record a snapshot
        already covers: the survivors are written to a ``.tmp`` sibling,
        fsynced, and renamed over the live log, so a crash mid-truncation
        leaves either the old log (stale records replay as no-ops) or the
        new one -- never a half-written file.
        """
        tmp_path = self.path + ".tmp"
        with self._lock:
            if self._fh is None:
                raise DurabilityError(f"write-ahead log {self.path} is closed")
            self._fh.flush()
            with open(tmp_path, "wb") as handle:
                handle.write(_WAL_HEADER)
                for payload in payloads:
                    handle.write(frame_record(payload))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
            _fsync_dir(os.path.dirname(os.path.abspath(self.path)))
            self._fh.close()
            self._fh = open(self.path, "r+b")
            self._fh.seek(0, os.SEEK_END)
            self._since_fsync = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({self.path!r}, fsync={self.fsync_policy!r}, "
            f"records={self.records_logged})"
        )


def _fsync_dir(path: str) -> None:
    """fsync a directory so a rename inside it is itself durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# The manager: tables in, WAL records + checkpoints out, recovery back
# ----------------------------------------------------------------------

class DurabilityManager:
    """Owns one durability directory on behalf of one database.

    Construction opens (and validates) the WAL but touches no table;
    :meth:`recover` replays existing durable state into the database and
    :meth:`attach` installs the per-table WAL hook
    (:attr:`repro.storage.Table.wal_sink`) so every subsequent non-empty
    append logs before it publishes.  ``Session`` drives all three in
    order, then calls :meth:`maybe_checkpoint` after each ingest and
    :meth:`close` at teardown.
    """

    def __init__(self, db, config: DurabilityConfig, *, faults=None) -> None:
        self.db = db
        self.config = config
        #: The session's fault plan (may be ``None``); the ContextVar scope
        #: is consulted as a fallback so ``activate_faults`` blocks work too.
        self.faults = faults
        os.makedirs(config.dir, exist_ok=True)
        _KNOWN_DIRS.add(os.path.abspath(config.dir))
        self._wal = WriteAheadLog(
            os.path.join(config.dir, WAL_NAME),
            fsync=config.fsync,
            batch_every=config.batch_every,
            faults=self._plan,
        )
        #: One lock serializes WAL appends against checkpoints, so a
        #: snapshot+truncate pair never races a record write.
        self._lock = threading.Lock()
        self._appends_since_checkpoint = 0
        self.checkpoints_written = 0
        self.last_recovery: "RecoveryReport | None" = None
        self._attached = False

    # ------------------------------------------------------------------
    def _plan(self):
        return self.faults if self.faults is not None else active_fault_plan()

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    def stats(self) -> DurabilityStats:
        wal = self._wal
        return DurabilityStats(
            mode=self.config.fsync,
            records_logged=wal.records_logged,
            bytes_logged=wal.bytes_logged,
            wal_bytes=wal.size(),
            fsyncs=wal.fsyncs,
            last_fsync_ms=wal.last_fsync_ms,
            total_fsync_ms=wal.total_fsync_ms,
            checkpoints_written=self.checkpoints_written,
            appends_since_checkpoint=self._appends_since_checkpoint,
        )

    @property
    def last_fsync_ms(self) -> "float | None":
        """Duration of the most recent WAL fsync (``None`` before the first)."""
        return self._wal.last_fsync_ms

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install the WAL hook on every (appendable) table (idempotent)."""
        for table in self.db.tables.values():
            if not getattr(table, "_frozen", False):
                table.wal_sink = self.log_append
        self._attached = True

    def detach(self) -> None:
        """Remove the WAL hooks (teardown; appends stop being logged)."""
        for table in self.db.tables.values():
            if getattr(table, "wal_sink", None) is self.log_append:
                table.wal_sink = None
        self._attached = False

    def close(self) -> None:
        """Final fsync, detach hooks, close the log file (idempotent)."""
        self.detach()
        self._wal.close()

    # ------------------------------------------------------------------
    def log_append(self, table, version: int, prepared: "dict[str, np.ndarray]") -> None:
        """The :attr:`Table.wal_sink` body: one record per non-empty append.

        Called by :meth:`Table.append` under the table's own append lock,
        *after* validation/encoding and *before* the version flip -- the
        write-ahead contract.  ``prepared`` holds the batch exactly as it
        will be concatenated (encoded, cast), so replay re-applies it
        byte-for-byte without consulting the encoders.
        """
        meta = {
            name: (column.values.dtype.str, column.encoding)
            for name, column in table.columns.items()
        }
        labels = {
            name: list(table.dictionaries[name].values)
            for name in prepared
            if name in table.dictionaries
        }
        payload = encode_table_payload(table.name, version, prepared, meta, labels)
        with self._lock:
            self._wal.append(payload)
            self._appends_since_checkpoint += 1

    # ------------------------------------------------------------------
    def checkpoint_due(self) -> bool:
        """Whether either checkpoint threshold has tripped."""
        cfg = self.config
        if cfg.checkpoint_every is not None and (
            self._appends_since_checkpoint >= cfg.checkpoint_every
        ):
            return True
        if cfg.checkpoint_bytes is not None and self._wal.size() >= cfg.checkpoint_bytes:
            return True
        return False

    def maybe_checkpoint(self) -> "str | None":
        """Checkpoint if a threshold tripped; returns the new path or None."""
        if not self.checkpoint_due():
            return None
        return self.checkpoint()

    def checkpoint(self) -> str:
        """Snapshot every table's published state and shrink the log.

        Runs under the manager lock, so no WAL record can land between the
        snapshot read and the log rewrite.  A record written by an append
        that has not yet *published* (its version flip races this lock) is
        deliberately kept by the version filter -- its version is newer
        than the snapshot's, so replay applies it.
        """
        from repro.storage.checkpoint import next_checkpoint_seq, prune_checkpoints, write_checkpoint

        with self._lock:
            states = []
            versions: "dict[str, int]" = {}
            for name, table in sorted(self.db.tables.items()):
                version, columns = table._published
                versions[name] = version
                arrays = {cname: column.values for cname, column in columns.items()}
                meta = {
                    cname: (column.values.dtype.str, column.encoding)
                    for cname, column in columns.items()
                }
                labels = {
                    cname: list(table.dictionaries[cname].values)
                    for cname in columns
                    if cname in table.dictionaries
                }
                states.append(encode_table_payload(name, version, arrays, meta, labels))
            seq = next_checkpoint_seq(self.config.dir)
            path = write_checkpoint(
                self.config.dir, seq, states, versions, faults=self._plan()
            )
            self.checkpoints_written += 1
            self._appends_since_checkpoint = 0
            survivors = [
                payload
                for payload in self._wal.read_payloads().payloads
                if decode_payload_header(payload)["version"]
                > versions.get(decode_payload_header(payload)["table"], -1)
            ]
            self._wal.rewrite(survivors)
            prune_checkpoints(self.config.dir, keep=self.config.keep_checkpoints)
        return path

    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Rebuild the durable frontier: checkpoint load + WAL replay.

        Safe to run on a fresh directory (trivial report), after a crash
        (the designed path), and repeatedly (replay of already-applied
        versions is a no-op).  Torn WAL tails were already truncated when
        the log was opened; this pass additionally removes orphaned
        ``.tmp`` files (a checkpoint writer that died mid-write) and skips
        invalid checkpoint generations until it finds one that parses
        clean end-to-end.
        """
        from repro.storage.checkpoint import clean_orphan_tmp, load_latest_checkpoint

        with self._lock:
            removed = clean_orphan_tmp(self.config.dir, keep=self._wal.path + ".tmp")
            checkpoint_seq, states, invalid = load_latest_checkpoint(self.config.dir)
            checkpoint_tables = ()
            if states is not None:
                checkpoint_tables = tuple(sorted(states))
                for name, (version, arrays, meta, labels) in states.items():
                    table = self.db.table(name)
                    columns = {
                        cname: Column(
                            name=cname,
                            values=arrays[cname],
                            device=(
                                table.columns[cname].device
                                if cname in table.columns
                                else _default_device()
                            ),
                            encoding=meta[cname][1],
                        )
                        for cname in arrays
                    }
                    dictionaries = {
                        cname: _encoder_from_labels(values) for cname, values in labels.items()
                    }
                    table.restore_published(version, columns, dictionaries=dictionaries)
            replayed = 0
            skipped = 0
            scan = self._wal.read_payloads()
            for payload in scan.payloads:
                header, arrays = decode_table_payload(payload)
                table = self.db.table(header["table"])
                self._verify_labels(table, header)
                if table.replay_append(header["version"], arrays):
                    replayed += 1
                else:
                    skipped += 1
            report = RecoveryReport(
                checkpoint_seq=checkpoint_seq,
                checkpoint_tables=checkpoint_tables,
                invalid_checkpoints=invalid,
                replayed_records=replayed,
                skipped_records=skipped,
                torn_tail=self._wal.opened_torn,
                dropped_bytes=self._wal.opened_dropped_bytes,
                removed_tmp=tuple(removed),
                versions={name: table.version for name, table in sorted(self.db.tables.items())},
            )
            self.last_recovery = report
        return report

    @staticmethod
    def _verify_labels(table, header: dict) -> None:
        """Replayed dictionary labels must match the table's encoders."""
        for name, recorded in header.get("labels", {}).items():
            encoder = table.dictionaries.get(name)
            current = list(encoder.values) if encoder is not None else None
            if current != list(recorded):
                raise DurabilityError(
                    f"dictionary drift on {table.name}.{name}: the WAL recorded "
                    f"{len(recorded)} labels but the table has "
                    f"{len(current) if current is not None else 'no'} -- the durability "
                    f"directory belongs to a different database lineage"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurabilityManager(dir={self.config.dir!r}, fsync={self.config.fsync!r}, "
            f"records={self._wal.records_logged}, checkpoints={self.checkpoints_written})"
        )


def _encoder_from_labels(labels) -> DictionaryEncoder:
    """Rebuild a dictionary encoder from its persisted label list."""
    encoder = DictionaryEncoder()
    for label in labels:
        encoder.add(label)
    return encoder


def _default_device():
    from repro.hardware.memory import Device

    return Device.CPU
