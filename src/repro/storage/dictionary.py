"""Dictionary encoding of string columns.

The benchmark dictionary encodes every string column into 4-byte integer
codes before loading and rewrites query predicates to compare against the
encoded value (e.g. ``s_region = 'ASIA'`` becomes ``s_region = 2``,
Section 5.2).  :class:`DictionaryEncoder` provides the encoding, the decode
path used when presenting results, and the predicate-rewrite lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DictionaryEncoder:
    """A sorted dictionary mapping strings to dense integer codes."""

    values: list[str] = field(default_factory=list)
    _code_of: dict[str, int] = field(default_factory=dict, repr=False)

    @classmethod
    def from_values(cls, values) -> "DictionaryEncoder":
        """Build a dictionary over the distinct values of ``values`` (sorted)."""
        distinct = sorted(set(str(v) for v in values))
        encoder = cls()
        for value in distinct:
            encoder.add(value)
        return encoder

    def add(self, value: str) -> int:
        """Add a value (if new) and return its code."""
        value = str(value)
        code = self._code_of.get(value)
        if code is not None:
            return code
        code = len(self.values)
        self.values.append(value)
        self._code_of[value] = code
        return code

    def encode_value(self, value: str) -> int:
        """Code of a single value; raises ``KeyError`` when absent.

        This is the lookup used to rewrite string predicates into integer
        comparisons.
        """
        return self._code_of[str(value)]

    def encode(self, values) -> np.ndarray:
        """Encode an iterable of values into an int32 code array."""
        return np.fromiter((self.encode_value(v) for v in values), dtype=np.int32)

    def decode_value(self, code: int) -> str:
        """Original string for a code; raises ``IndexError`` when out of range."""
        return self.values[int(code)]

    def decode(self, codes) -> list[str]:
        """Decode an array of codes back into strings."""
        return [self.decode_value(c) for c in np.asarray(codes)]

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: object) -> bool:
        return str(value) in self._code_of

    @property
    def width_bytes(self) -> int:
        """Smallest power-of-two byte width able to hold every code.

        The paper notes many SSB columns would fit 1-2 byte codes but keeps
        4 bytes for comparability; the compression ablation uses this.
        """
        cardinality = max(len(self.values), 1)
        for width in (1, 2, 4):
            if cardinality <= (1 << (8 * width)):
                return width
        return 8
