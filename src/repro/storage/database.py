"""A small in-memory database catalogue."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.memory import Device
from repro.storage.table import Table


@dataclass
class Database:
    """A named collection of tables plus device-capacity bookkeeping.

    The GPU-resident execution model requires the working set to fit in GPU
    memory (32 GB on the V100); :meth:`fits_on_device` performs that check so
    the engines can refuse (or fall back to the coprocessor path) when it
    does not, mirroring the paper's scoping discussion in Section 5.5.
    """

    name: str = "db"
    tables: dict[str, Table] = field(default_factory=dict)

    def add_table(self, table: Table) -> None:
        if table.name in self.tables:
            raise ValueError(f"database {self.name!r} already has a table named {table.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"database {self.name!r} has no table {name!r}; available: {sorted(self.tables)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __getitem__(self, name: str) -> Table:
        return self.table(name)

    @property
    def nbytes(self) -> int:
        """Total size of all tables in bytes."""
        return sum(table.nbytes for table in self.tables.values())

    def fits_on_device(self, capacity_bytes: int, headroom: float = 0.9) -> bool:
        """Whether the whole database fits in ``capacity_bytes`` of memory.

        ``headroom`` leaves room for intermediate results and hash tables.
        """
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        return self.nbytes <= capacity_bytes * headroom

    def to_device(self, device: Device) -> "Database":
        """Return a database with every table marked resident on ``device``."""
        moved = Database(name=self.name)
        for table in self.tables.values():
            moved.add_table(table.to_device(device))
        return moved

    def summary(self) -> str:
        """A human-readable one-line-per-table summary."""
        lines = [f"database {self.name!r}: {len(self.tables)} tables, {self.nbytes / 1e9:.2f} GB"]
        for table in self.tables.values():
            lines.append(
                f"  {table.name:<12} rows={table.num_rows:>12,} cols={table.num_columns:>3} "
                f"size={table.nbytes / 1e6:10.1f} MB"
            )
        return "\n".join(lines)
