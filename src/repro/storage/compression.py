"""Bit-packed column compression (Section 5.5, "Compression").

The paper keeps every column at 4 bytes for comparability but points out
that many SSB columns have tiny domains and that GPUs -- with their high
compute-to-bandwidth ratio -- are well placed to use non-byte-aligned
packing schemes to fit more data in HBM and to reduce scan traffic.

:class:`BitPackedColumn` implements that scheme: values are stored with just
enough bits to cover the column's domain, packed into a contiguous 64-bit
word array.  Decoding is exact (round-trips are tested); the
:func:`scan_speedup` helper quantifies the bandwidth saving a scan-heavy
query would see, which is what the compression ablation benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.column import Column


def bits_needed(max_value: int) -> int:
    """Bits required to represent values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("bit packing requires non-negative values")
    return max(1, int(max_value).bit_length())


@dataclass
class BitPackedColumn:
    """A column stored with ``bit_width`` bits per value."""

    name: str
    packed: np.ndarray
    bit_width: int
    num_values: int
    reference_bytes_per_value: int = 4

    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, column: Column | np.ndarray, name: str | None = None) -> "BitPackedColumn":
        """Pack a non-negative integer column into its minimal bit width."""
        if isinstance(column, Column):
            values = column.values
            name = name or column.name
        else:
            values = np.asarray(column)
            name = name or "column"
        if values.size and values.min() < 0:
            raise ValueError("bit packing requires non-negative values")
        width = bits_needed(int(values.max()) if values.size else 0)

        positions = np.arange(values.shape[0], dtype=np.uint64) * np.uint64(width)
        word_index = (positions // np.uint64(64)).astype(np.int64)
        bit_offset = (positions % np.uint64(64)).astype(np.uint64)
        num_words = int((values.shape[0] * width + 63) // 64) + 1
        words = np.zeros(num_words, dtype=np.uint64)

        value_bits = values.astype(np.uint64)
        # Low part goes into the word the value starts in...
        np.bitwise_or.at(words, word_index, value_bits << bit_offset)
        # ...and whatever spills past bit 63 goes into the next word.
        spill = np.uint64(64) - bit_offset
        has_spill = spill < np.uint64(width)
        if np.any(has_spill):
            np.bitwise_or.at(
                words,
                word_index[has_spill] + 1,
                value_bits[has_spill] >> spill[has_spill],
            )
        return cls(name=name, packed=words, bit_width=width, num_values=int(values.shape[0]))

    def extend(self, tail: np.ndarray) -> "BitPackedColumn":
        """Append ``tail`` values, repacking only the affected words.

        Values ``0 .. num_values - 1`` occupy bit positions strictly below
        ``num_values * bit_width``, and :meth:`pack` zero-fills every later
        position (including the guard word), so extension is a prefix copy
        of the existing words plus OR-ing the new values in at their final
        positions -- byte-identical to repacking the concatenated column
        from scratch, as long as the widened column still needs
        ``bit_width`` bits.  A tail value that needs more bits raises; the
        caller (zone-map maintenance) repacks fresh in that case, which is
        the same O(n) work a width change always costs.
        """
        tail = np.asarray(tail)
        if tail.size and tail.min() < 0:
            raise ValueError("bit packing requires non-negative values")
        if tail.size and bits_needed(int(tail.max())) > self.bit_width:
            raise ValueError(
                f"tail needs {bits_needed(int(tail.max()))} bits, packed column "
                f"{self.name!r} holds {self.bit_width}; repack from scratch"
            )
        if not tail.size:
            return self
        width = self.bit_width
        total = self.num_values + int(tail.shape[0])
        num_words = int((total * width + 63) // 64) + 1
        words = np.zeros(num_words, dtype=np.uint64)
        words[: self.packed.shape[0]] = self.packed

        positions = (
            np.arange(self.num_values, total, dtype=np.uint64) * np.uint64(width)
        )
        word_index = (positions >> np.uint64(6)).astype(np.int64)
        bit_offset = positions & np.uint64(63)
        value_bits = tail.astype(np.uint64)
        np.bitwise_or.at(words, word_index, value_bits << bit_offset)
        spill = np.uint64(64) - bit_offset
        has_spill = spill < np.uint64(width)
        if np.any(has_spill):
            np.bitwise_or.at(
                words,
                word_index[has_spill] + 1,
                value_bits[has_spill] >> spill[has_spill],
            )
        return BitPackedColumn(
            name=self.name,
            packed=words,
            bit_width=width,
            num_values=total,
            reference_bytes_per_value=self.reference_bytes_per_value,
        )

    def unpack(self) -> np.ndarray:
        """Decode the column back into an int64 array."""
        return self.unpack_at(np.arange(self.num_values, dtype=np.int64))

    def unpack_at(self, indices: np.ndarray) -> np.ndarray:
        """Decode only the values at ``indices`` (word-aligned gather + shift/mask).

        The selection-vector counterpart of :meth:`unpack`: each requested
        value's bit position is located, its 64-bit word (and, when the value
        straddles a word boundary, the next word -- :meth:`pack` always
        leaves a guard word at the end) is gathered, and the value is
        shifted/masked out.  Touching ``ceil(k * bit_width / 8)`` packed
        bytes for ``k`` gathered values instead of ``4 * k`` is the scan
        saving the compressed scan path charges.
        """
        width = np.uint64(self.bit_width)
        positions = np.asarray(indices).astype(np.uint64) * width
        word_index = (positions >> np.uint64(6)).astype(np.int64)
        bit_offset = positions & np.uint64(63)
        mask = (np.uint64(1) << width) - np.uint64(1) if self.bit_width < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)

        low = self.packed[word_index] >> bit_offset
        spill = np.uint64(64) - bit_offset
        has_spill = spill < width
        high = np.zeros_like(low)
        if np.any(has_spill):
            high[has_spill] = self.packed[word_index[has_spill] + 1] << spill[has_spill]
        return ((low | high) & mask).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def packed_bytes(self) -> int:
        """Bytes occupied by the packed representation."""
        return int(np.ceil(self.num_values * self.bit_width / 8))

    @property
    def uncompressed_bytes(self) -> int:
        """Bytes the column occupies in the benchmark's 4-byte layout."""
        return self.num_values * self.reference_bytes_per_value

    @property
    def compression_ratio(self) -> float:
        """Uncompressed size over packed size (>1 means the packing helps)."""
        if self.packed_bytes == 0:
            return 1.0
        return self.uncompressed_bytes / self.packed_bytes

    def scan_speedup(self, decode_ops_per_value: float = 4.0, compute_throughput: float = 0.0) -> float:
        """Speedup of a bandwidth-bound scan from reading the packed column.

        When ``compute_throughput`` (values/second the device can decode) is
        zero the decode is assumed free -- the right approximation for GPUs,
        whose compute-to-bandwidth ratio the paper highlights; otherwise the
        speedup is capped by the decode rate.
        """
        bandwidth_gain = self.compression_ratio
        if compute_throughput <= 0:
            return bandwidth_gain
        # Time per value: packed read vs decode, relative to uncompressed read.
        packed_read = self.bit_width / 8.0
        decode = decode_ops_per_value / compute_throughput * 1e9  # pseudo-bytes equivalent
        uncompressed_read = float(self.reference_bytes_per_value)
        return uncompressed_read / max(packed_read, decode)


def pack_table_columns(columns: dict[str, np.ndarray]) -> dict[str, BitPackedColumn]:
    """Pack every column of a mapping; convenience for the ablation bench."""
    return {name: BitPackedColumn.pack(values, name=name) for name, values in columns.items()}
