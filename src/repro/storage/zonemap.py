"""Zone maps: per-zone column statistics for data skipping.

The paper's tile-based execution model prices a scan by the bytes it
actually moves (Section 3.3), and its compression discussion (Section 5.5)
argues the way to go faster once kernels saturate bandwidth is to *move
fewer bytes*.  Zone maps are the statistics side of that argument: each
column is summarized per fixed-size zone of rows (default 4096) by its
min/max -- plus an exact value bitset when the column's whole domain spans
at most 64 distinct integers, which covers SSB's flag-like columns
(``lo_discount``, ``lo_quantity``, ``d_year``) -- so a predicate can be
*folded* against the statistics and whole zones classified as

* **skip** -- no row can satisfy the predicate (never materialized),
* **take-all** -- every row satisfies it (taken without evaluation),
* **evaluate** -- the statistics are inconclusive; rows are evaluated.

Folding is sound, never exact: a zone is only classified skip/take-all
when the statistics *prove* the outcome for every row, so a pruned scan
produces byte-identical answers and profiles to an unpruned one.  On data
with locality (a fact table clustered by its date key -- the order real
lineorder data arrives in) pruning skips most zones of a selective scan;
on adversarially uniform data everything degenerates to *evaluate* and
the pipeline simply runs the PR 4 selection-vector plane.

:class:`TableZoneMaps` also owns the table's **packed column twins**:
non-negative integer columns whose domain fits ``<= 16`` bits are lazily
bit-packed (:class:`~repro.storage.compression.BitPackedColumn`) so filter
conjuncts and probe key gathers can read packed words
(:meth:`~repro.storage.compression.BitPackedColumn.unpack_at`) instead of
full-width 4-byte values.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.ssb.queries import And, FilterSpec, Leaf, Not, Or, as_pred
from repro.storage.compression import BitPackedColumn, bits_needed
from repro.storage.table import Table

#: Rows per zone.  A power of two so selection-vector row ids map to zone
#: ids with one shift.
DEFAULT_ZONE_SIZE = 4096

#: Largest column domain (``max - min + 1``) that gets an exact per-zone
#: value bitset alongside min/max.
BITSET_DOMAIN = 64

#: Largest bit width at which a column gets a packed twin for compressed
#: gathers (the paper's small-domain SSB columns all fit).
PACKED_MAX_BITS = 16

#: Tri-state zone classifications.  ``SKIP < EVALUATE < TAKE`` so predicate
#: trees fold with ``minimum`` (And), ``maximum`` (Or), and negation (Not).
ZONE_SKIP = np.int8(-1)
ZONE_EVALUATE = np.int8(0)
ZONE_TAKE = np.int8(1)


def _is_numeric(value: object) -> bool:
    """Whether a resolved predicate constant is an honest number.

    Folding must stay silent (classify *evaluate*) for anything else --
    e.g. a string constant against a numeric column -- so the evaluation
    path raises exactly the error the unpruned executor would have raised
    instead of the zone map silently skipping the faulty comparison.
    """
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)


@dataclass(frozen=True)
class ColumnZoneStats:
    """Per-zone min/max (and optional exact value bitsets) of one column."""

    column: str
    zone_size: int
    num_rows: int
    #: Per-zone minima / maxima, ``int64``.
    mins: np.ndarray
    maxs: np.ndarray
    #: Column-wide bounds (``mins.min()`` / ``maxs.max()``).
    low: int
    high: int
    #: Per-zone value bitsets (bit ``v - low`` set iff ``v`` occurs in the
    #: zone) when the domain spans at most :data:`BITSET_DOMAIN` values.
    bitsets: np.ndarray | None

    @property
    def num_zones(self) -> int:
        return int(self.mins.shape[0])

    @classmethod
    def build(cls, column: str, values: np.ndarray, zone_size: int) -> "ColumnZoneStats":
        """Summarize ``values`` into per-zone statistics (one reduction pass)."""
        n = int(values.shape[0])
        starts = np.arange(0, n, zone_size, dtype=np.int64)
        mins = np.minimum.reduceat(values, starts).astype(np.int64)
        maxs = np.maximum.reduceat(values, starts).astype(np.int64)
        low = int(mins.min())
        high = int(maxs.max())
        bitsets = None
        if high - low + 1 <= BITSET_DOMAIN:
            bits = np.uint64(1) << (values.astype(np.int64) - low).astype(np.uint64)
            bitsets = np.bitwise_or.reduceat(bits, starts)
        return cls(
            column=column,
            zone_size=zone_size,
            num_rows=n,
            mins=mins,
            maxs=maxs,
            low=low,
            high=high,
            bitsets=bitsets,
        )

    def extend(self, values: np.ndarray) -> "ColumnZoneStats":
        """Statistics of the grown column ``values``, reusing sealed zones.

        ``values`` is the *full* column after an append.  Zones that were
        fully sealed (every row already summarized) keep their min/max --
        and their bitsets, shifted when the column-wide ``low`` dropped --
        while the old partial tail zone and every new zone are re-reduced.
        The result is byte-identical to :meth:`build` over ``values`` (the
        extension tests hold the two together), so extended and fresh maps
        prune identically; only the work is delta-proportional.
        """
        n = int(values.shape[0])
        if n < self.num_rows:
            raise ValueError(
                f"column {self.column!r} shrank from {self.num_rows} to {n} rows; "
                f"zone statistics only extend under appends"
            )
        if n == self.num_rows:
            return self
        sealed = self.num_rows // self.zone_size
        tail_start = sealed * self.zone_size
        tail_values = values[tail_start:]
        starts = np.arange(0, n - tail_start, self.zone_size, dtype=np.int64)
        mins = np.concatenate(
            [self.mins[:sealed], np.minimum.reduceat(tail_values, starts).astype(np.int64)]
        )
        maxs = np.concatenate(
            [self.maxs[:sealed], np.maximum.reduceat(tail_values, starts).astype(np.int64)]
        )
        low = int(mins.min())
        high = int(maxs.max())
        bitsets = None
        if high - low + 1 <= BITSET_DOMAIN:
            # The old span is contained in the new one, so sealed-zone
            # bitsets (relative to the old low) re-base with one shift.
            bits = np.uint64(1) << (tail_values.astype(np.int64) - low).astype(np.uint64)
            tail_bitsets = np.bitwise_or.reduceat(bits, starts)
            if sealed:
                # A new span <= 64 implies the (contained) old span was too,
                # so sealed zones always have bitsets to shift.
                head = self.bitsets[:sealed] << np.uint64(self.low - low)
            else:
                head = np.empty(0, dtype=np.uint64)
            bitsets = np.concatenate([head, tail_bitsets])
        return ColumnZoneStats(
            column=self.column,
            zone_size=self.zone_size,
            num_rows=n,
            mins=mins,
            maxs=maxs,
            low=low,
            high=high,
            bitsets=bitsets,
        )

    # ------------------------------------------------------------------
    def _membership(self, constants) -> np.uint64:
        """Bitset of the domain values appearing in ``constants``."""
        member = np.uint64(0)
        for value in constants:
            if self.low <= value <= self.high and float(value).is_integer():
                member |= np.uint64(1) << np.uint64(int(value) - self.low)
        return member

    def classify_spec(self, spec: FilterSpec, constant) -> np.ndarray:
        """Fold one comparison against the zone statistics (tri-state per zone).

        ``constant`` is the already-resolved value (dictionary codes for
        encoded specs).  Returns :data:`ZONE_TAKE` only where every row of
        the zone provably satisfies the comparison and :data:`ZONE_SKIP`
        only where provably no row can.
        """
        mins, maxs = self.mins, self.maxs
        op = spec.op
        if op in ("between",) and isinstance(constant, (tuple, list)) and len(constant) == 2:
            lo, hi = constant
            if not (_is_numeric(lo) and _is_numeric(hi)):
                return np.zeros(self.num_zones, dtype=np.int8)
            take = (lo <= mins) & (maxs <= hi)
            skip = (maxs < lo) | (mins > hi)
        elif op == "in":
            if not isinstance(constant, (tuple, list, set, frozenset, np.ndarray)) or not all(
                _is_numeric(v) for v in constant
            ):
                return np.zeros(self.num_zones, dtype=np.int8)
            hit_any = np.zeros(self.num_zones, dtype=bool)
            for value in constant:
                hit_any |= (mins <= value) & (value <= maxs)
            skip = ~hit_any
            if self.bitsets is not None:
                member = self._membership(constant)
                skip = skip | ((self.bitsets & member) == 0)
                take = (self.bitsets & ~member) == 0
            else:
                # Min/max alone can only prove membership for constant zones.
                take = (mins == maxs) & hit_any & np.isin(mins, np.asarray(list(constant)))
        elif op in ("eq", "ne", "lt", "le", "gt", "ge"):
            if not _is_numeric(constant):
                return np.zeros(self.num_zones, dtype=np.int8)
            if op == "eq" or op == "ne":
                take = (mins == constant) & (maxs == constant)
                skip = (maxs < constant) | (mins > constant)
                if self.bitsets is not None:
                    member = self._membership((constant,))
                    skip = skip | ((self.bitsets & member) == 0)
                if op == "ne":
                    take, skip = skip, take
            elif op == "lt":
                take, skip = maxs < constant, mins >= constant
            elif op == "le":
                take, skip = maxs <= constant, mins > constant
            elif op == "gt":
                take, skip = mins > constant, maxs <= constant
            else:  # ge
                take, skip = mins >= constant, maxs < constant
        else:
            return np.zeros(self.num_zones, dtype=np.int8)
        out = np.zeros(self.num_zones, dtype=np.int8)
        out[take] = ZONE_TAKE
        out[skip] = ZONE_SKIP
        return out


class TableZoneMaps:
    """Lazily-built zone statistics (and packed twins) for one table.

    Statistics are built per column on first use and memoized; the instance
    is meant to be cached per table by
    :class:`~repro.engine.cache.ZoneMapCache` and shared across queries.
    Only integer columns are summarized -- which covers every stored SSB
    column, since strings are dictionary-encoded to int32 codes at load
    time.
    """

    def __init__(
        self,
        table: Table,
        zone_size: int = DEFAULT_ZONE_SIZE,
        packed_max_bits: int = PACKED_MAX_BITS,
    ) -> None:
        if zone_size < 1 or zone_size & (zone_size - 1):
            raise ValueError(f"zone_size must be a power of two, got {zone_size}")
        self.table = table
        self.zone_size = zone_size
        self.zone_shift = int(zone_size).bit_length() - 1
        self.packed_max_bits = packed_max_bits
        self._stats: dict[str, ColumnZoneStats | None] = {}
        self._packed: dict[str, BitPackedColumn | None] = {}
        # Guards the lazy construction: morsel-parallel workers share one
        # instance per table, and a column's reduction/packing pass should
        # run once, not once per racing worker.
        self._lock = threading.Lock()

    @property
    def num_zones(self) -> int:
        return -(-self.table.num_rows // self.zone_size) if self.table.num_rows else 0

    def zone_of(self, sel: np.ndarray) -> np.ndarray:
        """Zone id of each row id in ``sel`` (one shift; zones are 2**k rows)."""
        return sel >> self.zone_shift

    # ------------------------------------------------------------------
    def stats(self, column: str) -> ColumnZoneStats | None:
        """Zone statistics for ``column`` (``None`` for non-integer/empty columns).

        Built on first use under the instance lock, so concurrent workers
        sharing the cached instance run each column's reduction pass
        exactly once.
        """
        if column in self._stats:
            return self._stats[column]
        with self._lock:
            if column not in self._stats:
                values = self.table[column] if column in self.table else None
                if values is None or values.shape[0] == 0 or not np.issubdtype(values.dtype, np.integer):
                    self._stats[column] = None
                else:
                    self._stats[column] = ColumnZoneStats.build(column, values, self.zone_size)
            return self._stats[column]

    def packed(self, column: str) -> BitPackedColumn | None:
        """The packed twin of ``column`` (``None`` if its domain needs > 16 bits).

        Packing keys off the zone statistics: non-negative integer columns
        whose max fits in :attr:`packed_max_bits` bits are packed once
        (under the instance lock, like :meth:`stats`) and memoized, so
        later selection-vector gathers can decode packed words instead of
        touching 4-byte values.
        """
        if column in self._packed:
            return self._packed[column]
        stats = self.stats(column)
        with self._lock:
            if column not in self._packed:
                if stats is None or stats.low < 0 or bits_needed(stats.high) > self.packed_max_bits:
                    self._packed[column] = None
                else:
                    self._packed[column] = BitPackedColumn.pack(self.table.column(column))
            return self._packed[column]

    def packed_for(self, columns) -> dict[str, BitPackedColumn]:
        """Packed twins for the subset of ``columns`` that have one."""
        out = {}
        for column in columns:
            twin = self.packed(column)
            if twin is not None:
                out[column] = twin
        return out

    # ------------------------------------------------------------------
    def extended_to(self, table: Table) -> "TableZoneMaps":
        """Zone maps for a grown version of this instance's table.

        The incremental-maintenance path of
        :class:`~repro.engine.cache.ZoneMapCache`: instead of throwing the
        statistics away on every append, each already-built column carries
        its sealed-zone stats forward (:meth:`ColumnZoneStats.extend`) and
        each packed twin repacks only the affected words
        (:meth:`~repro.storage.compression.BitPackedColumn.extend`) -- or
        repacks fresh in the rare case an append widens the bit width.
        Columns never touched stay lazy, exactly as in a fresh instance.

        ``table`` must be a same-name, append-grown successor (the cache
        guarantees this via the table version); extended statistics are
        byte-identical to freshly built ones.
        """
        ext = TableZoneMaps(table, zone_size=self.zone_size, packed_max_bits=self.packed_max_bits)
        with self._lock:
            carried_stats = dict(self._stats)
            carried_packed = dict(self._packed)
        for column, stats in carried_stats.items():
            if stats is None or column not in table:
                # None means empty/non-integer at build time; re-derive
                # lazily against the grown data instead of guessing.
                continue
            values = table[column]
            if values.shape[0] < stats.num_rows or not np.issubdtype(values.dtype, np.integer):
                continue
            ext._stats[column] = stats.extend(values)
        for column, packed in carried_packed.items():
            stats = ext._stats.get(column)
            if stats is None:
                continue  # stats not carried; the twin re-derives lazily
            if stats.low < 0 or bits_needed(stats.high) > self.packed_max_bits:
                ext._packed[column] = None
                continue
            if packed is not None and bits_needed(stats.high) == packed.bit_width:
                ext._packed[column] = packed.extend(table[column][packed.num_values :])
            else:
                # The append widened the domain past the old bit width (or
                # the twin was never eligible before): pack fresh.
                ext._packed[column] = BitPackedColumn.pack(table.column(column))
        return ext

    # ------------------------------------------------------------------
    def classify(self, pred) -> np.ndarray | None:
        """Fold a predicate tree against the zone statistics.

        Returns a tri-state ``int8`` array of :attr:`num_zones` entries
        (:data:`ZONE_SKIP` / :data:`ZONE_EVALUATE` / :data:`ZONE_TAKE`), or
        ``None`` when the statistics prove nothing anywhere (every zone
        would be *evaluate*), so callers can fall straight through to the
        unpruned path.  Folding follows the tree shape: ``And`` is the
        tri-state minimum, ``Or`` the maximum, ``Not`` the negation --
        exactly the Kleene three-valued connectives.
        """
        cls = self._classify(as_pred(pred))
        if cls is None or not cls.any():
            return None
        return cls

    def _classify(self, pred) -> np.ndarray | None:
        if self.num_zones == 0:
            return None
        if isinstance(pred, Leaf):
            return self._classify_leaf(pred.spec)
        if isinstance(pred, And):
            out = np.full(self.num_zones, ZONE_TAKE, dtype=np.int8)
            for child in pred.children:
                folded = self._classify(child)
                out = np.minimum(out, ZONE_EVALUATE if folded is None else folded)
            return out
        if isinstance(pred, Or):
            out = np.full(self.num_zones, ZONE_SKIP, dtype=np.int8)
            for child in pred.children:
                folded = self._classify(child)
                out = np.maximum(out, ZONE_EVALUATE if folded is None else folded)
            return out
        if isinstance(pred, Not):
            folded = self._classify(pred.child)
            return None if folded is None else (-folded).astype(np.int8)
        raise TypeError(f"unsupported predicate node {type(pred).__name__}")

    def _classify_leaf(self, spec: FilterSpec) -> np.ndarray | None:
        stats = self.stats(spec.column)
        if stats is None:
            return None
        # Deferred import: expr builds on the storage layer.
        from repro.engine.expr import resolve_filter_value

        try:
            constant = resolve_filter_value(self.table, spec)
        except Exception:
            # Resolution problems (missing dictionary, unknown label) must
            # surface from the evaluation path, not vanish into a skip.
            return None
        return stats.classify_spec(spec, constant)


def cluster_by(db, table_name: str, column: str):
    """A database whose ``table_name`` rows are sorted by ``column``.

    Zone maps are statistics, and statistics need locality to prove
    anything: clustering a fact table by its date key (the order real
    lineorder data arrives in) is the physical-design decision that makes
    date-derived predicates prunable.  Dimension tables and dictionaries
    are shared with the source database; only the clustered table is
    re-materialized (stable sort, so equal-key runs keep their order).

    Clustering is a **one-shot physical-design decision, not an invariant**:
    the returned table starts at version 0 and rows appended to it later
    (:meth:`~repro.storage.Table.append`) land in arrival order at the
    tail, *not* in cluster order.  That is sound by construction -- zone
    classification folds per-zone statistics, so the unclustered tail
    zones simply classify as *evaluate* for predicates the sorted prefix
    can skip -- answers stay byte-identical, and the sorted prefix keeps
    pruning at full strength.  Pruning effectiveness over the tail only
    degrades to the uniform-data baseline until the caller re-clusters
    (runs ``cluster_by`` again over the grown table), which is the
    compaction step a production system would schedule; the appended-tail
    test in ``tests/test_zonemap.py`` pins both halves of this contract.
    """
    # Deferred import: Database lives above this module in the package.
    from repro.storage.database import Database

    table = db.table(table_name)
    order = np.argsort(table[column], kind="stable")
    clustered = Database(name=f"{db.name}_by_{column}")
    sorted_table = table.select_rows(order)
    sorted_table.name = table_name
    clustered.add_table(sorted_table)
    for name, other in db.tables.items():
        if name != table_name:
            clustered.add_table(other)
    return clustered


def zone_rows(zone_ids: np.ndarray, zone_size: int, num_rows: int) -> np.ndarray:
    """Row ids covered by ``zone_ids``, ascending (zone ids must be sorted).

    The concatenated per-zone ranges, fully vectorized: only the table's
    last zone can be ragged, so the expansion is a ``repeat`` of the zone
    starts plus a running within-zone offset.
    """
    if zone_ids.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = zone_ids.astype(np.int64) * zone_size
    counts = np.minimum(starts + zone_size, num_rows) - starts
    offsets = np.cumsum(counts) - counts
    total = int(counts.sum())
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
