"""The shared-memory plane: zero-copy column export across processes.

Process-parallel sharded execution (:mod:`repro.engine.shard`) escapes the
GIL by running shards of a query in worker *processes*.  Shipping the fact
table to those workers by pickle would copy gigabytes per query; instead
the parent publishes each column (and each bit-packed twin) once into a
POSIX shared-memory segment (``multiprocessing.shared_memory``), and every
worker maps the segments read-only -- the same physical pages, zero copies,
exactly how a production scale-up engine shares its buffer pool.

Two halves live here:

* :class:`SharedMemoryRegistry` -- the **owning** side.  The parent process
  creates segments through the registry, which tracks every one and unlinks
  them all on :meth:`~SharedMemoryRegistry.close` (wired to
  ``Session.close()`` / ``__exit__``) *and* at interpreter exit (atexit), so
  a crashed or lazily-closed session cannot strand segments in
  ``/dev/shm``.  The leak-safety tests in ``tests/test_sharded.py`` create
  and destroy sessions in a loop and assert the directory comes back clean.

* :func:`attach_array` / :func:`attach_table` -- the **borrowing** side.
  Workers attach by segment name and wrap the mapped buffer in a read-only
  ``np.ndarray`` (no copy).  Worker processes spawned or forked from the
  owner share its ``multiprocessing.resource_tracker`` (the tracker fd is
  inherited under both start methods), so an attach's re-registration is a
  set no-op and the owner's unlink performs the single unregister --
  ownership stays with the registry alone, and a worker's exit can never
  tear a segment out from under its siblings.

A :class:`TableExport` is the picklable manifest tying the halves together:
segment specs for every column and packed twin, plus the table's name,
version, and dictionary encoders -- everything
:meth:`repro.storage.table.Table.from_published` needs to reconstruct a
frozen, version-pinned view on the worker side.

Failure handling: segment names embed the owning pid
(``repro-shm-<pid>-<token>-<n>``), and :func:`reap_stale_segments` -- the
**shm janitor**, run by every new registry -- sweeps ``/dev/shm`` for
segments whose owner pid no longer exists and unlinks them, so a
``kill -9``'d owner leaks segments only until the next session starts
instead of until reboot.  Both sides carry fault-injection points
(:data:`~repro.faults.SHM_ATTACH` / :data:`~repro.faults.SHM_EXPORT`)
that are single no-op ContextVar reads unless a
:class:`~repro.faults.FaultPlan` is active.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.faults import SHM_ATTACH, SHM_EXPORT, active_fault_plan
from repro.storage.column import Column
from repro.storage.compression import BitPackedColumn
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.table import Table

#: Prefix every registry-owned segment name starts with; the leak tests
#: scan ``/dev/shm`` for it to prove nothing was stranded.
SEGMENT_PREFIX = "repro-shm"

#: Where POSIX shared memory surfaces as files (Linux).  The janitor is a
#: no-op on platforms without it.
SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - e.g. EPERM: alive, not ours
        return True
    return True


def _forget_tracked(name: str) -> None:
    """Drop ``name`` from this process's resource tracker, best-effort.

    ``SharedMemory.unlink`` unregisters only after a *successful*
    ``shm_unlink``; when the name is already gone (an injected unlink
    fault, or the janitor beat us to it) the registration would linger and
    the tracker would warn of a leak at interpreter exit.  Unknown names
    are a harmless no-op.
    """
    try:
        resource_tracker.unregister("/" + name.lstrip("/"), "shared_memory")
    except Exception:  # pragma: no cover - tracker already shut down
        pass


def reap_stale_segments(prefix: str = SEGMENT_PREFIX, shm_dir: str = SHM_DIR) -> list[str]:
    """Unlink ``/dev/shm`` segments whose owning process is dead (the janitor).

    Registry segment names embed the owner's pid
    (``<prefix>-<pid>-<token>-<n>``); a segment whose pid no longer exists
    can only be the debris of a crashed owner -- ``kill -9`` skips atexit
    hooks, and POSIX shm persists until reboot otherwise.  Segments of
    live pids (including this process) are never touched, so concurrent
    sessions on one machine stay safe; a recycled pid at worst postpones
    reclamation to a later sweep.  Returns the reclaimed segment names.
    """
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    marker = f"{prefix}-"
    own = os.getpid()
    reclaimed: list[str] = []
    for name in sorted(os.listdir(shm_dir)):
        if not name.startswith(marker):
            continue
        pid_text = name[len(marker):].split("-", 1)[0]
        if not pid_text.isdigit():
            continue
        pid = int(pid_text)
        if pid == own or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except OSError:  # pragma: no cover - raced another janitor
            continue
        _forget_tracked(name)
        reclaimed.append(name)
    return reclaimed


@dataclass(frozen=True)
class ShmArraySpec:
    """Where (and how) one array lives in shared memory.

    ``segment`` names the POSIX segment; ``dtype``/``shape`` reconstruct
    the ndarray view over its buffer.  Specs are small frozen values, so
    they pickle to workers for free.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


class SharedMemoryRegistry:
    """Owner of a set of shared-memory segments, with unlink discipline.

    Every segment created through :meth:`share_array` is tracked; ``close``
    closes *and unlinks* them all, idempotently.  Construction registers an
    atexit hook so segments cannot outlive the interpreter even if the
    owner forgets to close -- the hook unregisters itself once ``close``
    has run, keeping the atexit table from growing across short-lived
    registries (the session-churn leak test).  Against the failure mode no
    hook survives (``kill -9``), segment names embed the owning pid and
    construction runs the :func:`reap_stale_segments` janitor, so each new
    registry reclaims whatever a crashed predecessor stranded.
    """

    def __init__(self, prefix: str | None = None, *, janitor: bool = True) -> None:
        self._prefix = prefix or f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        if janitor:
            try:
                reap_stale_segments()
            except OSError:  # pragma: no cover - unreadable shm dir
                pass
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def share_array(self, array: np.ndarray) -> ShmArraySpec:
        """Copy ``array`` into a fresh segment and return its spec.

        The one copy in the whole plane: the column's bytes move into the
        shared mapping here, once per ``(table, version)``, and every
        worker (and every later query) reads those very pages.  Empty
        arrays get a 1-byte segment (POSIX shm refuses zero-size maps).
        """
        plan = active_fault_plan()
        if plan is not None:
            plan.fire(SHM_EXPORT)
        array = np.ascontiguousarray(array)
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedMemoryRegistry is closed; cannot share new arrays")
            name = f"{self._prefix}-{next(self._counter)}"
            segment = shared_memory.SharedMemory(name=name, create=True, size=max(int(array.nbytes), 1))
            self._segments[segment.name] = segment
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return ShmArraySpec(segment=segment.name, dtype=array.dtype.str, shape=tuple(array.shape))

    @property
    def num_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def closed(self) -> bool:
        return self._closed

    def release(self, names) -> None:
        """Close and unlink a subset of owned segments (by segment name).

        Used when a table re-exports at a newer version: the old version's
        segments are released eagerly instead of waiting for ``close``.
        Unknown names are ignored (already released, or never owned).
        """
        with self._lock:
            released = [self._segments.pop(name) for name in names if name in self._segments]
        for segment in released:
            self._unlink(segment)

    @staticmethod
    def _unlink(segment: shared_memory.SharedMemory) -> None:
        """Close + unlink one owned segment, tolerating it already being gone.

        A name can vanish under the owner (an injected unlink fault, a
        janitor in another process); the unlink is then a no-op, but the
        resource tracker must still forget the registration or it warns of
        a leak at interpreter exit.
        """
        name = segment.name
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            _forget_tracked(name)

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, {}
        for segment in segments.values():
            self._unlink(segment)
        atexit.unregister(self.close)

    def __enter__(self) -> "SharedMemoryRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedMemoryRegistry({self._prefix!r}, segments={self.num_segments}, closed={self._closed})"


# ----------------------------------------------------------------------
# Borrowing side (workers)
# ----------------------------------------------------------------------


def attach_array(
    spec: ShmArraySpec, segments: dict[str, shared_memory.SharedMemory]
) -> np.ndarray:
    """Map ``spec``'s segment and return a read-only ndarray over it.

    ``segments`` is the caller's keep-alive cache: the returned array
    borrows the mapping's buffer, so the :class:`SharedMemory` handle must
    outlive it -- workers hold one process-global dict for the life of the
    process.  No resource-tracker bookkeeping happens here: pool workers
    share the owner's tracker (fd inherited under fork and spawn alike),
    so the attach's implicit re-register is a set no-op and unlink rights
    remain with the owning registry.
    """
    plan = active_fault_plan()
    if plan is not None:
        # An ``unlink`` fault here tears the name down *before* the map, so
        # the attach observes exactly what a crashed owner leaves behind.
        plan.fire(SHM_ATTACH, segment=spec.segment)
    segment = segments.get(spec.segment)
    if segment is None:
        segment = shared_memory.SharedMemory(name=spec.segment)
        segments[spec.segment] = segment
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    array.setflags(write=False)
    return array


# ----------------------------------------------------------------------
# Table manifests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnExport:
    """One column's segment spec plus the metadata Column carries."""

    spec: ShmArraySpec
    encoding: str | None


@dataclass(frozen=True)
class PackedExport:
    """One bit-packed twin's word array plus its decode parameters."""

    words: ShmArraySpec
    bit_width: int
    num_values: int


@dataclass(frozen=True)
class TableExport:
    """A picklable manifest of one frozen table published to shared memory.

    Carries everything a worker needs to reconstruct a read-only,
    version-pinned :class:`~repro.storage.table.Table` over the shared
    pages: per-column segment specs, the bit-packed twins the parent had
    materialized (``None`` marks a column whose domain does not pack, so
    workers never re-derive eligibility), and the dictionary encoders for
    predicate-constant resolution.
    """

    name: str
    version: int
    num_rows: int
    columns: tuple[tuple[str, ColumnExport], ...]
    packed: tuple[tuple[str, PackedExport | None], ...] = ()
    dictionaries: dict[str, DictionaryEncoder] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Shared bytes the manifest points at (columns + packed twins)."""
        total = sum(export.spec.nbytes for _, export in self.columns)
        total += sum(export.words.nbytes for _, export in self.packed if export is not None)
        return total


def export_table(
    registry: SharedMemoryRegistry,
    table: Table,
    packed: "dict[str, BitPackedColumn | None] | None" = None,
) -> TableExport:
    """Publish ``table``'s columns (and ``packed`` twins) through ``registry``.

    ``table`` should be a frozen snapshot so the manifest's version and the
    shared bytes cannot disagree.  ``packed`` maps column name to its
    bit-packed twin or ``None`` (ineligible); omitted columns simply have
    no twin on the worker side.
    """
    columns = tuple(
        (name, ColumnExport(spec=registry.share_array(column.values), encoding=column.encoding))
        for name, column in table.columns.items()
    )
    packed_exports: list[tuple[str, PackedExport | None]] = []
    for name, twin in (packed or {}).items():
        if twin is None:
            packed_exports.append((name, None))
        else:
            packed_exports.append(
                (
                    name,
                    PackedExport(
                        words=registry.share_array(twin.packed),
                        bit_width=twin.bit_width,
                        num_values=twin.num_values,
                    ),
                )
            )
    return TableExport(
        name=table.name,
        version=getattr(table, "version", 0),
        num_rows=table.num_rows,
        columns=columns,
        packed=tuple(packed_exports),
        dictionaries=dict(table.dictionaries),
    )


def attach_table(
    export: TableExport, segments: dict[str, shared_memory.SharedMemory]
) -> "tuple[Table, dict[str, BitPackedColumn | None]]":
    """Reconstruct the exported table (and twins) over shared pages.

    Returns ``(table, packed)``: a frozen
    :meth:`~repro.storage.table.Table.from_published` view whose column
    arrays alias the shared segments read-only, and the packed-twin mapping
    (``None`` entries preserved, so callers can pre-populate a worker's
    zone maps and skip eligibility re-derivation entirely).
    """
    columns = {
        name: Column(name=name, values=attach_array(item.spec, segments), encoding=item.encoding)
        for name, item in export.columns
    }
    packed: dict[str, BitPackedColumn | None] = {}
    for name, item in export.packed:
        if item is None:
            packed[name] = None
        else:
            packed[name] = BitPackedColumn(
                name=name,
                packed=attach_array(item.words, segments),
                bit_width=item.bit_width,
                num_values=item.num_values,
            )
    table = Table.from_published(
        export.name, export.version, columns, dictionaries=export.dictionaries
    )
    return table, packed
