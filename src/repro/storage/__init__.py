"""Columnar storage substrate.

The paper stores every table as a set of 4-byte columnar arrays with string
columns dictionary encoded up front (Section 5.2).  This package provides
that storage layer: columns, tables, a small database catalogue, and the
dictionary encoder used to rewrite string predicates into integer
comparisons.  Columns also track which device (CPU DRAM or GPU global
memory) they currently reside on so the engines can account for PCIe
transfers in the coprocessor configuration.
"""

from repro.storage.column import Column
from repro.storage.compression import BitPackedColumn
from repro.storage.database import Database
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.table import Table
from repro.storage.wal import (
    DurabilityConfig,
    DurabilityError,
    DurabilityManager,
    DurabilityStats,
    RecoveryReport,
    WriteAheadLog,
    known_durability_dirs,
)

# Imported last: zonemap folds predicate trees, so it pulls in
# repro.ssb.queries, whose package neighbours import this package's names
# above -- keeping this import at the tail keeps the cycle harmless.
from repro.storage.zonemap import ColumnZoneStats, TableZoneMaps, cluster_by  # noqa: E402

__all__ = [
    "BitPackedColumn",
    "Column",
    "ColumnZoneStats",
    "Database",
    "DictionaryEncoder",
    "DurabilityConfig",
    "DurabilityError",
    "DurabilityManager",
    "DurabilityStats",
    "RecoveryReport",
    "Table",
    "TableZoneMaps",
    "WriteAheadLog",
    "cluster_by",
    "known_durability_dirs",
]
