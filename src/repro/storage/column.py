"""Columns: named, typed, device-resident arrays of fixed-width values."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.memory import Device


@dataclass
class Column:
    """A single column stored as a contiguous fixed-width array.

    The benchmark stores every column as 4-byte values (integers or floats)
    to keep comparisons across systems apples-to-apples (Section 5.2);
    other widths are allowed for intermediate results.
    """

    name: str
    values: np.ndarray
    device: Device = Device.CPU
    encoding: str | None = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.values.ndim != 1:
            raise ValueError(f"column {self.name!r} must be one-dimensional")

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def itemsize(self) -> int:
        return int(self.values.dtype.itemsize)

    @property
    def nbytes(self) -> int:
        """Size of the column data in bytes."""
        return int(self.values.nbytes)

    def to_device(self, device: Device) -> "Column":
        """Return a column with the same data marked as resident on ``device``.

        The data itself is shared (NumPy view); only the residency label
        changes.  PCIe transfer cost is accounted by the engine that performs
        the move, not here.
        """
        return Column(name=self.name, values=self.values, device=device, encoding=self.encoding)

    def head(self, n: int = 5) -> np.ndarray:
        """The first ``n`` values (for quick inspection in examples)."""
        return self.values[:n]

    def min(self) -> float:
        return float(self.values.min()) if len(self) else float("nan")

    def max(self) -> float:
        return float(self.values.max()) if len(self) else float("nan")

    def distinct_count(self) -> int:
        """Number of distinct values (used by dictionary-width discussions)."""
        return int(np.unique(self.values).shape[0]) if len(self) else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Column({self.name!r}, n={len(self)}, dtype={self.dtype}, "
            f"device={self.device.value})"
        )
