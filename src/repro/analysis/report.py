"""Plain-text formatting helpers for experiment output."""

from __future__ import annotations


def format_table(rows: list[dict], columns: list[str] | None = None, floatfmt: str = ".3f") -> str:
    """Format a list of dicts as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].rjust(widths[i]) for i in range(len(columns))) for line in rendered)
    return "\n".join([header, separator, body])


def format_series(series: dict[str, dict], x_name: str = "x", floatfmt: str = ".3f") -> str:
    """Format ``{series name: {x: y}}`` as a table with one column per series."""
    if not series:
        return "(no series)"
    xs: list = sorted({x for values in series.values() for x in values})
    rows = []
    for x in xs:
        row = {x_name: x}
        for name, values in series.items():
            row[name] = values.get(x, float("nan"))
        rows.append(row)
    return format_table(rows, columns=[x_name, *series.keys()], floatfmt=floatfmt)
