"""Dollar-cost comparison of the CPU and GPU platforms (Table 3, Section 5.4).

The paper argues that although the GPU platform costs roughly 6x more to
rent (and somewhat less than 6x more to buy), its ~25x higher performance on
the SSB makes it about 4x more cost effective for analytics whose working
set fits in GPU memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.presets import AWS_P3_2XLARGE, AWS_R5_2XLARGE
from repro.hardware.specs import InstancePricing


@dataclass(frozen=True)
class CostComparison:
    """Outcome of the cost-effectiveness calculation."""

    cpu_pricing: InstancePricing
    gpu_pricing: InstancePricing
    performance_ratio: float
    rent_cost_ratio: float
    purchase_cost_ratio: float
    rent_cost_effectiveness: float
    purchase_cost_effectiveness: float

    def as_rows(self) -> list[dict]:
        """Rows for tabular reporting (mirrors Table 3 plus the derived ratios)."""
        return [
            {
                "platform": "CPU",
                "instance": self.cpu_pricing.name,
                "rent_usd_per_hour": self.cpu_pricing.rent_usd_per_hour,
                "purchase_usd": self.cpu_pricing.purchase_usd_mid,
            },
            {
                "platform": "GPU",
                "instance": self.gpu_pricing.name,
                "rent_usd_per_hour": self.gpu_pricing.rent_usd_per_hour,
                "purchase_usd": self.gpu_pricing.purchase_usd_mid,
            },
            {
                "platform": "GPU / CPU",
                "instance": "ratios",
                "rent_usd_per_hour": self.rent_cost_ratio,
                "purchase_usd": self.purchase_cost_ratio,
            },
        ]


def cost_comparison(
    performance_ratio: float,
    cpu_pricing: InstancePricing = AWS_R5_2XLARGE,
    gpu_pricing: InstancePricing = AWS_P3_2XLARGE,
) -> CostComparison:
    """Compute cost ratios and cost effectiveness for a measured speedup.

    Args:
        performance_ratio: GPU-over-CPU speedup on the workload (the paper's
            SSB average is ~25x).
        cpu_pricing / gpu_pricing: Platform pricing (defaults are Table 3).

    Returns:
        A :class:`CostComparison`; ``rent_cost_effectiveness`` above 1 means
        the GPU does more work per dollar than the CPU when renting.
    """
    if performance_ratio <= 0:
        raise ValueError("performance ratio must be positive")
    rent_ratio = gpu_pricing.rent_usd_per_hour / cpu_pricing.rent_usd_per_hour
    purchase_ratio = gpu_pricing.purchase_usd_mid / cpu_pricing.purchase_usd_mid
    return CostComparison(
        cpu_pricing=cpu_pricing,
        gpu_pricing=gpu_pricing,
        performance_ratio=performance_ratio,
        rent_cost_ratio=rent_ratio,
        purchase_cost_ratio=purchase_ratio,
        rent_cost_effectiveness=performance_ratio / rent_ratio,
        purchase_cost_effectiveness=performance_ratio / purchase_ratio,
    )
