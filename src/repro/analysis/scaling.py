"""Rescaling query profiles to the paper's data sizes.

Executing the SSB at scale factor 20 (a 120 M-row fact table) is out of
reach for a pure-Python reproduction, so the engines execute the queries at
a reduced scale factor (which validates correctness and measures the
data-dependent selectivities) and the experiment harness rescales the
collected :class:`~repro.engine.plan.QueryProfile` to SF 20 before asking
the engines' ``simulate`` methods for the runtime.

Scaling rules (all selectivities are scale-invariant because the SSB
attributes are uniform):

* Fact-side quantities (row counts, column bytes, probe counts, surviving
  rows) scale with the ratio of fact-table cardinalities.
* Dimension-side quantities (dimension rows, hash-table bytes, build scan
  bytes) scale with each dimension's own cardinality ratio (``supplier`` and
  ``customer`` scale linearly, ``part`` logarithmically, ``date`` not at
  all).
* The number of output groups is recomputed as the minimum of the group-key
  domain size and the measured group count scaled by the fact ratio, capped
  by the number of surviving rows.
"""

from __future__ import annotations

from copy import deepcopy

from repro.engine.plan import QueryProfile
from repro.ssb.schema import ssb_table_rows


def scale_profile(
    profile: QueryProfile,
    base_scale_factor: float,
    target_scale_factor: float = 20.0,
) -> QueryProfile:
    """Return a copy of ``profile`` rescaled to ``target_scale_factor``."""
    if base_scale_factor <= 0 or target_scale_factor <= 0:
        raise ValueError("scale factors must be positive")

    base_fact = ssb_table_rows("lineorder", base_scale_factor)
    target_fact = ssb_table_rows("lineorder", target_scale_factor)
    fact_ratio = target_fact / base_fact

    scaled = deepcopy(profile)
    scaled.fact_rows = int(profile.fact_rows * fact_ratio)
    scaled.result_input_rows = profile.result_input_rows * fact_ratio

    for access in scaled.column_accesses:
        access.column_bytes *= fact_ratio
        access.rows_needed *= fact_ratio

    # Predicate shape (leaf/branch counts) is scale-invariant; only the
    # per-term row counts grow with the fact table.
    for stage in scaled.filter_stages:
        stage.rows_in *= fact_ratio
        stage.rows_out *= fact_ratio

    for stage in scaled.joins:
        dim_base = ssb_table_rows(stage.dimension, base_scale_factor)
        dim_target = ssb_table_rows(stage.dimension, target_scale_factor)
        dim_ratio = dim_target / dim_base
        stage.dimension_rows = int(stage.dimension_rows * dim_ratio)
        stage.build_rows = int(stage.build_rows * dim_ratio)
        stage.hash_table_bytes *= dim_ratio
        stage.build_scan_bytes *= dim_ratio
        stage.probe_rows *= fact_ratio

    # Group counts saturate at the group-key domain size; scaling the
    # measured count by the fact ratio and capping at the surviving rows is a
    # reasonable estimate for the small group-bys of the SSB.
    scaled.num_groups = int(
        min(max(profile.num_groups, profile.num_groups * fact_ratio ** 0.5), max(scaled.result_input_rows, 1))
    )
    return scaled
