"""Experiment harness: regenerate every table and figure of the paper.

:mod:`repro.analysis.experiments` contains one ``run_*`` function per
experiment (Figure 3, Figure 9, Figure 10, Figure 12, Figure 13, Figure 14,
Figure 16, Table 2, Table 3, the Section 3.3 Crystal-vs-independent-threads
comparison, and the Section 5.3 q2.1 case study).  Each returns a plain data
structure (rows / series) that the benchmark scripts print and that
EXPERIMENTS.md summarizes against the paper's reported values.

:mod:`repro.analysis.scaling` rescales a query profile measured at a small
scale factor up to the paper's SF 20, and :mod:`repro.analysis.cost`
implements the Table 3 dollar-cost comparison.
"""

from repro.analysis.capacity import MultiGPUConfig, gpus_needed, placement_advice
from repro.analysis.cost import CostComparison, cost_comparison
from repro.analysis.export import export_experiment, export_rows, export_series
from repro.analysis.report import format_series, format_table
from repro.analysis.scaling import scale_profile

__all__ = [
    "CostComparison",
    "MultiGPUConfig",
    "cost_comparison",
    "export_experiment",
    "export_rows",
    "export_series",
    "format_series",
    "format_table",
    "gpus_needed",
    "placement_advice",
    "scale_profile",
]
