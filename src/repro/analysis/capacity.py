"""Multi-GPU capacity planning and data-placement advice (Section 5.5).

The paper's closing discussion argues that GPU-resident execution is the
right design *when the working set fits in GPU memory*, that a server can
aggregate several GPUs' worth of HBM, and that the hybrid/distributed case
is open future work.  This module provides the capacity arithmetic behind
that argument:

* :func:`gpus_needed` -- how many GPUs a working set requires.
* :func:`placement_advice` -- for a given database size, decide between
  GPU-resident execution (fits on the available GPUs), CPU execution, or the
  coprocessor fallback, with the expected speedup from the models.
* :class:`MultiGPUConfig` -- aggregate capacity/bandwidth of a multi-GPU
  server and the scaling-efficiency model used to project speedups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.presets import DEFAULT_PCIE, INTEL_I7_6900, NVIDIA_V100, bandwidth_ratio
from repro.hardware.specs import CPUSpec, GPUSpec


@dataclass(frozen=True)
class MultiGPUConfig:
    """A server with one CPU and ``num_gpus`` identical GPUs."""

    num_gpus: int
    gpu: GPUSpec = NVIDIA_V100
    cpu: CPUSpec = INTEL_I7_6900
    #: Fraction of linear scaling retained per added GPU (cross-GPU exchange
    #: and skew cost some efficiency; 1.0 = perfectly linear).
    scaling_efficiency: float = 0.92
    #: Fraction of each GPU's memory available for data (the rest holds hash
    #: tables and intermediates).
    usable_memory_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("a multi-GPU configuration needs at least one GPU")
        if not 0.0 < self.scaling_efficiency <= 1.0:
            raise ValueError("scaling efficiency must be in (0, 1]")
        if not 0.0 < self.usable_memory_fraction <= 1.0:
            raise ValueError("usable memory fraction must be in (0, 1]")

    @property
    def total_capacity_bytes(self) -> float:
        """Usable HBM capacity across all GPUs."""
        return self.num_gpus * self.gpu.global_capacity_bytes * self.usable_memory_fraction

    @property
    def aggregate_bandwidth(self) -> float:
        """Aggregate HBM bandwidth with the scaling-efficiency discount."""
        if self.num_gpus == 1:
            return self.gpu.global_read_bandwidth
        effective_gpus = 1.0 + (self.num_gpus - 1) * self.scaling_efficiency
        return effective_gpus * self.gpu.global_read_bandwidth

    def fits(self, working_set_bytes: float) -> bool:
        """Whether a working set fits across the configured GPUs."""
        return working_set_bytes <= self.total_capacity_bytes

    def speedup_over_cpu(self) -> float:
        """Expected scan-bound speedup over the single CPU."""
        return self.aggregate_bandwidth / self.cpu.dram_read_bandwidth


def gpus_needed(
    working_set_bytes: float,
    gpu: GPUSpec = NVIDIA_V100,
    usable_memory_fraction: float = 0.8,
) -> int:
    """Number of GPUs required to hold a working set in HBM."""
    if working_set_bytes < 0:
        raise ValueError("working set must be non-negative")
    per_gpu = gpu.global_capacity_bytes * usable_memory_fraction
    if working_set_bytes == 0:
        return 1
    return int(-(-working_set_bytes // per_gpu))


@dataclass(frozen=True)
class PlacementAdvice:
    """Outcome of the placement decision for one working set."""

    strategy: str
    gpus_required: int
    expected_speedup_over_cpu: float
    reason: str


def placement_advice(
    working_set_bytes: float,
    available_gpus: int = 1,
    gpu: GPUSpec = NVIDIA_V100,
    cpu: CPUSpec = INTEL_I7_6900,
    pcie_bandwidth: float = DEFAULT_PCIE,
    full_query_gain_over_bandwidth: float = 1.5,
) -> PlacementAdvice:
    """Decide how to execute a workload of the given working-set size.

    Mirrors the paper's guidance: GPU-resident when the data fits (expected
    gain ≈ 1.5x the bandwidth ratio for full queries, Section 5.5), plain CPU
    execution otherwise -- because shipping data over PCIe per query (the
    coprocessor model) is slower than the CPU's own memory bus.
    """
    if working_set_bytes < 0:
        raise ValueError("working set must be non-negative")
    if available_gpus <= 0:
        raise ValueError("available_gpus must be positive")

    required = gpus_needed(working_set_bytes, gpu)
    ratio = gpu.global_read_bandwidth / cpu.dram_read_bandwidth
    if required <= available_gpus:
        config = MultiGPUConfig(num_gpus=max(required, 1), gpu=gpu, cpu=cpu)
        speedup = config.speedup_over_cpu() * full_query_gain_over_bandwidth
        return PlacementAdvice(
            strategy="gpu-resident",
            gpus_required=required,
            expected_speedup_over_cpu=speedup,
            reason=(
                f"working set fits on {required} GPU(s); GPU-resident execution gains about "
                f"{full_query_gain_over_bandwidth:.1f}x the bandwidth ratio ({ratio:.1f}x) on full queries"
            ),
        )
    # Does not fit: the coprocessor path is bounded by PCIe, which is slower
    # than just scanning from CPU DRAM, so recommend CPU execution.
    pcie_penalty = cpu.dram_read_bandwidth / pcie_bandwidth
    return PlacementAdvice(
        strategy="cpu",
        gpus_required=required,
        expected_speedup_over_cpu=1.0,
        reason=(
            f"working set needs {required} GPUs but only {available_gpus} available; "
            f"shipping data over PCIe per query would be ~{pcie_penalty:.1f}x slower than the CPU's own scan"
        ),
    )
