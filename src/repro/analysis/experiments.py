"""One ``run_*`` function per table / figure of the paper's evaluation.

Every function executes the relevant workload functionally at a reduced data
scale (keeping the reproduction laptop friendly), collects the data-dependent
statistics, and reports simulated runtimes on the paper's hardware at the
paper's data scale.  The mapping between experiments, modules, and paper
numbers is indexed in DESIGN.md and EXPERIMENTS.md.

All functions return plain dictionaries (rows / series of floats) so the
benchmark scripts can print them and the tests can assert on their shape.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cost import cost_comparison
from repro.analysis.scaling import scale_profile
from repro.engine.baselines import HyperLikeEngine, MonetDBLikeEngine, OmnisciLikeEngine
from repro.engine.coprocessor import CoprocessorEngine
from repro.engine.cpu_engine import CPUStandaloneEngine
from repro.engine.gpu_engine import GPUStandaloneEngine
from repro.engine.plan import execute_query
from repro.hardware.counters import TrafficCounter
from repro.hardware.presets import INTEL_I7_6900, NVIDIA_V100, PAPER_PLATFORM
from repro.models.join import cpu_join_probe_model, gpu_join_probe_model
from repro.models.project import cpu_project_model, gpu_project_model
from repro.models.query import QueryCostInputs, cpu_ssb_q21_model, gpu_ssb_q21_model
from repro.models.select import cpu_select_model, gpu_select_model
from repro.models.sort import (
    radix_histogram_model,
    radix_shuffle_model,
    cpu_radix_sort_model,
    gpu_radix_sort_model,
)
from repro.ops.cpu import (
    cpu_hash_join_build,
    cpu_hash_join_probe,
    cpu_project,
    cpu_radix_partition,
    cpu_radix_sort,
    cpu_select,
)
from repro.ops.cpu.project import sigmoid
from repro.ops.gpu import (
    gpu_hash_join_build,
    gpu_hash_join_probe,
    gpu_project,
    gpu_radix_partition,
    gpu_radix_sort,
    gpu_select,
    gpu_select_independent_threads,
)
from repro.sim.cpu import CPUSimulator
from repro.sim.gpu import GPUSimulator, KernelLaunch
from repro.ssb.generator import generate_ssb
from repro.ssb.queries import QUERIES, QUERY_ORDER

#: Default execution sizes (what actually runs in NumPy) vs the paper's
#: array sizes (what the simulated times are reported for).
DEFAULT_EXEC_N = 1 << 22
PAPER_MICRO_N = 1 << 29
PAPER_JOIN_PROBE_ROWS = 256_000_000
PAPER_SORT_N = 1 << 28
PAPER_SSB_SF = 20.0


def _scale(result_or_ms, exec_n: int, paper_n: int) -> float:
    """Project a simulated time from the executed size to the paper size.

    Data-dependent components scale linearly with the input size; fixed
    per-kernel overheads (kernel launches) do not and are carried over
    unchanged.  Accepts either an operator result (preferred -- its time
    breakdown distinguishes the components) or a bare milliseconds value.
    """
    factor = paper_n / exec_n
    time = getattr(result_or_ms, "time", None)
    if time is None:
        return float(result_or_ms) * factor
    total_ms = 0.0
    for name, seconds in time.components.items():
        scaled = seconds if "launch" in name else seconds * factor
        total_ms += scaled * 1e3
    return total_ms


# ----------------------------------------------------------------------
# Section 3.3 / Figure 9: tile-size sweep and Crystal vs independent threads
# ----------------------------------------------------------------------
def run_figure9(exec_n: int = DEFAULT_EXEC_N, paper_n: int = PAPER_MICRO_N, seed: int = 13) -> dict:
    """Q0 selection with varying thread-block size and items per thread."""
    rng = np.random.default_rng(seed)
    y = rng.random(exec_n).astype(np.float32)
    threshold = 0.5

    series: dict[str, dict] = {}
    for items_per_thread in (1, 2, 4):
        label = f"items_per_thread={items_per_thread}"
        series[label] = {}
        for threads_per_block in (32, 64, 128, 256, 512, 1024):
            result = gpu_select(
                y, threshold, threads_per_block=threads_per_block, items_per_thread=items_per_thread
            )
            series[label][threads_per_block] = _scale(result, exec_n, paper_n)
    return {"series": series, "x": "thread_block_size", "unit": "ms", "paper_n": paper_n}


def run_sec33_tile_comparison(exec_n: int = DEFAULT_EXEC_N, paper_n: int = PAPER_MICRO_N, seed: int = 13) -> dict:
    """Crystal (tile-based, single kernel) vs the independent-threads baseline."""
    rng = np.random.default_rng(seed)
    y = rng.random(exec_n).astype(np.float32)
    crystal = gpu_select(y, 0.5, threads_per_block=128, items_per_thread=4)
    independent = gpu_select_independent_threads(y, 0.5)
    return {
        "rows": [
            {"approach": "independent threads (3 kernels)",
             "simulated_ms": _scale(independent, exec_n, paper_n),
             "paper_ms": 19.0},
            {"approach": "Crystal tile-based (1 kernel)",
             "simulated_ms": _scale(crystal, exec_n, paper_n),
             "paper_ms": 2.1},
        ]
    }


# ----------------------------------------------------------------------
# Figure 10: projection microbenchmark
# ----------------------------------------------------------------------
def run_figure10(exec_n: int = DEFAULT_EXEC_N, paper_n: int = PAPER_MICRO_N, seed: int = 17) -> dict:
    """Q1 (linear combination) and Q2 (sigmoid) on CPU, CPU-Opt, and GPU."""
    rng = np.random.default_rng(seed)
    x1 = rng.random(exec_n).astype(np.float32)
    x2 = rng.random(exec_n).astype(np.float32)

    rows = []
    for query, udf in (("Q1", None), ("Q2", sigmoid)):
        naive = cpu_project(x1, x2, udf=udf, variant="naive")
        opt = cpu_project(x1, x2, udf=udf, variant="opt")
        gpu = gpu_project(x1, x2, udf=udf)
        rows.append(
            {
                "query": query,
                "cpu_ms": _scale(naive, exec_n, paper_n),
                "cpu_opt_ms": _scale(opt, exec_n, paper_n),
                "gpu_ms": _scale(gpu, exec_n, paper_n),
                "cpu_model_ms": cpu_project_model(paper_n).milliseconds,
                "gpu_model_ms": gpu_project_model(paper_n).milliseconds,
            }
        )
        rows[-1]["cpu_opt_over_gpu"] = rows[-1]["cpu_opt_ms"] / rows[-1]["gpu_ms"]
    return {"rows": rows, "bandwidth_ratio": PAPER_PLATFORM.bandwidth_ratio}


# ----------------------------------------------------------------------
# Figure 12: selection microbenchmark
# ----------------------------------------------------------------------
def run_figure12(exec_n: int = DEFAULT_EXEC_N, paper_n: int = PAPER_MICRO_N, seed: int = 19) -> dict:
    """Q3 selection scan across selectivities 0.0 .. 1.0."""
    rng = np.random.default_rng(seed)
    y = rng.random(exec_n).astype(np.float32)

    series: dict[str, dict] = {
        "cpu_if": {}, "cpu_pred": {}, "cpu_simd_pred": {},
        "gpu_if": {}, "gpu_pred": {},
        "cpu_model": {}, "gpu_model": {},
    }
    for selectivity in [round(0.1 * i, 1) for i in range(11)]:
        threshold = float(selectivity)  # y is uniform in [0, 1)
        series["cpu_if"][selectivity] = _scale(cpu_select(y, threshold, "if"), exec_n, paper_n)
        series["cpu_pred"][selectivity] = _scale(cpu_select(y, threshold, "pred"), exec_n, paper_n)
        series["cpu_simd_pred"][selectivity] = _scale(
            cpu_select(y, threshold, "simd_pred"), exec_n, paper_n
        )
        series["gpu_if"][selectivity] = _scale(gpu_select(y, threshold, "if"), exec_n, paper_n)
        series["gpu_pred"][selectivity] = _scale(gpu_select(y, threshold, "pred"), exec_n, paper_n)
        series["cpu_model"][selectivity] = cpu_select_model(paper_n, selectivity).milliseconds
        series["gpu_model"][selectivity] = gpu_select_model(paper_n, selectivity).milliseconds
    return {"series": series, "x": "selectivity", "unit": "ms", "paper_n": paper_n}


# ----------------------------------------------------------------------
# Figure 13: hash-join microbenchmark
# ----------------------------------------------------------------------
#: Hash-table sizes swept in Figure 13 (8 KB .. 1 GB).
JOIN_HASH_TABLE_SIZES = [8 << 10 << i for i in range(0, 18, 2)]  # 8KB,32KB,...,512MB
JOIN_HASH_TABLE_SIZES.append(1 << 30)

#: Variant-specific parameters mirrored from repro.ops.cpu.hash_join.
_CPU_PROBE_OPS = {"scalar": 6.0, "simd": 11.0, "prefetch": 8.5}
_CPU_RANDOM_EFFICIENCY = {"scalar": 0.62, "simd": 0.62, "prefetch": 0.72}


def _cpu_join_probe_ms(probe_rows: float, ht_bytes: float, variant: str, sim: CPUSimulator) -> float:
    """Simulated CPU probe time at paper scale (mirrors the operator's traffic)."""
    traffic = TrafficCounter(
        sequential_read_bytes=probe_rows * 8,
        random_accesses=probe_rows,
        random_working_set_bytes=ht_bytes,
        random_access_bytes=8.0,
        compute_ops=probe_rows * _CPU_PROBE_OPS[variant],
    )
    return sim.run(traffic, random_efficiency=_CPU_RANDOM_EFFICIENCY[variant]).milliseconds


def _gpu_join_probe_ms(probe_rows: float, ht_bytes: float, sim: GPUSimulator) -> float:
    """Simulated GPU probe time at paper scale (mirrors the operator's traffic)."""
    traffic = TrafficCounter(
        sequential_read_bytes=probe_rows * 8,
        random_accesses=probe_rows,
        random_working_set_bytes=ht_bytes,
        random_access_bytes=8.0,
        compute_ops=probe_rows * 4.0,
        shared_bytes=probe_rows * 4,
        atomic_updates=probe_rows / (128 * 4),
    )
    return sim.run_kernel(traffic, KernelLaunch(label="join-probe")).milliseconds


def run_figure13(
    probe_rows: int = PAPER_JOIN_PROBE_ROWS,
    exec_probe_rows: int = 1 << 20,
    validate: bool = True,
    seed: int = 23,
) -> dict:
    """Q4 hash-join probe across hash-table sizes from 8 KB to 1 GB."""
    cpu_sim = CPUSimulator()
    gpu_sim = GPUSimulator()

    series: dict[str, dict] = {
        "cpu_scalar": {}, "cpu_simd": {}, "cpu_prefetch": {}, "gpu": {},
        "cpu_model": {}, "gpu_model": {},
    }
    for ht_bytes in JOIN_HASH_TABLE_SIZES:
        for variant in ("scalar", "simd", "prefetch"):
            series[f"cpu_{variant}"][ht_bytes] = _cpu_join_probe_ms(probe_rows, ht_bytes, variant, cpu_sim)
        series["gpu"][ht_bytes] = _gpu_join_probe_ms(probe_rows, ht_bytes, gpu_sim)
        series["cpu_model"][ht_bytes] = cpu_join_probe_model(probe_rows, ht_bytes).milliseconds
        series["gpu_model"][ht_bytes] = gpu_join_probe_model(probe_rows, ht_bytes).milliseconds

    validation = []
    if validate:
        # Execute real (small) joins to confirm the operator implementations
        # agree with each other and feed the traffic model.
        rng = np.random.default_rng(seed)
        build_rows = 1 << 14
        build_keys = np.arange(build_rows)
        build_values = rng.integers(0, 1000, build_rows)
        probe_keys = rng.integers(0, build_rows, exec_probe_rows)
        probe_values = rng.integers(0, 1000, exec_probe_rows)
        cpu_table, _ = cpu_hash_join_build(build_keys, build_values)
        gpu_table, _ = gpu_hash_join_build(build_keys, build_values)
        expected = float(np.sum(probe_values + build_values[probe_keys]))
        for variant in ("scalar", "simd", "prefetch"):
            result = cpu_hash_join_probe(probe_keys, probe_values, cpu_table, variant)
            validation.append({"impl": f"cpu_{variant}", "checksum_ok": abs(result.value - expected) < 1e-3})
        gpu_result = gpu_hash_join_probe(probe_keys, probe_values, gpu_table)
        validation.append({"impl": "gpu", "checksum_ok": abs(gpu_result.value - expected) < 1e-3})

    return {"series": series, "x": "hash_table_bytes", "unit": "ms", "validation": validation}


# ----------------------------------------------------------------------
# Figure 14: radix partitioning / sort microbenchmark
# ----------------------------------------------------------------------
def run_figure14(
    exec_n: int = 1 << 20,
    paper_n: int = PAPER_SORT_N,
    seed: int = 29,
) -> dict:
    """Radix histogram and shuffle phases across radix widths, plus full sorts."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**31, exec_n, dtype=np.int32)
    payloads = rng.integers(0, 2**31, exec_n, dtype=np.int32)

    histogram: dict[str, dict] = {"cpu_stable": {}, "gpu_stable": {}, "gpu_unstable": {},
                                  "cpu_model": {}, "gpu_model": {}}
    shuffle: dict[str, dict] = {"cpu_stable": {}, "gpu_stable": {}, "gpu_unstable": {},
                                "cpu_model": {}, "gpu_model": {}}
    cpu, gpu = INTEL_I7_6900, NVIDIA_V100
    for radix_bits in range(3, 12):
        _, cpu_hist, cpu_shuf = cpu_radix_partition(keys, payloads, radix_bits=radix_bits)
        histogram["cpu_stable"][radix_bits] = _scale(cpu_hist, exec_n, paper_n)
        shuffle["cpu_stable"][radix_bits] = _scale(cpu_shuf, exec_n, paper_n)
        if radix_bits <= 7:
            _, hist, shuf = gpu_radix_partition(keys, payloads, radix_bits=radix_bits, stable=True)
            histogram["gpu_stable"][radix_bits] = _scale(hist, exec_n, paper_n)
            shuffle["gpu_stable"][radix_bits] = _scale(shuf, exec_n, paper_n)
        if radix_bits <= 8:
            _, hist, shuf = gpu_radix_partition(keys, payloads, radix_bits=radix_bits, stable=False)
            histogram["gpu_unstable"][radix_bits] = _scale(hist, exec_n, paper_n)
            shuffle["gpu_unstable"][radix_bits] = _scale(shuf, exec_n, paper_n)
        histogram["cpu_model"][radix_bits] = radix_histogram_model(paper_n, cpu.dram_read_bandwidth).milliseconds
        histogram["gpu_model"][radix_bits] = radix_histogram_model(paper_n, gpu.global_read_bandwidth).milliseconds
        shuffle["cpu_model"][radix_bits] = radix_shuffle_model(
            paper_n, cpu.dram_read_bandwidth, cpu.dram_write_bandwidth
        ).milliseconds
        shuffle["gpu_model"][radix_bits] = radix_shuffle_model(
            paper_n, gpu.global_read_bandwidth, gpu.global_write_bandwidth
        ).milliseconds

    sort_exec_n = min(exec_n, 1 << 20)
    sort_keys = keys[:sort_exec_n]
    sort_payloads = payloads[:sort_exec_n]
    cpu_sort = cpu_radix_sort(sort_keys, sort_payloads)
    gpu_sort = gpu_radix_sort(sort_keys, sort_payloads, variant="msb")
    full_sort_rows = [
        {"impl": "CPU LSB radix sort", "simulated_ms": _scale(cpu_sort, sort_exec_n, paper_n),
         "model_ms": cpu_radix_sort_model(paper_n).milliseconds, "paper_ms": 464.0},
        {"impl": "GPU MSB radix sort", "simulated_ms": _scale(gpu_sort, sort_exec_n, paper_n),
         "model_ms": gpu_radix_sort_model(paper_n).milliseconds, "paper_ms": 27.08},
    ]
    return {
        "histogram_series": histogram,
        "shuffle_series": shuffle,
        "full_sort_rows": full_sort_rows,
        "x": "radix_bits",
        "unit": "ms",
    }


# ----------------------------------------------------------------------
# Figures 3 and 16: full SSB workload
# ----------------------------------------------------------------------
def _ssb_profiles(scale_factor: float, seed: int):
    """Execute all 13 queries once, returning values and profiles."""
    db = generate_ssb(scale_factor=scale_factor, seed=seed)
    profiles = {}
    values = {}
    for name in QUERY_ORDER:
        value, profile = execute_query(db, QUERIES[name])
        values[name] = value
        profiles[name] = profile
    return db, values, profiles


def run_figure3(scale_factor: float = 0.2, target_sf: float = PAPER_SSB_SF, seed: int = 31) -> dict:
    """MonetDB-like vs GPU coprocessor vs Hyper-like on the full SSB."""
    db, values, profiles = _ssb_profiles(scale_factor, seed)
    monetdb = MonetDBLikeEngine(db)
    coprocessor = CoprocessorEngine(db)
    hyper = HyperLikeEngine(db)

    rows = []
    for name in QUERY_ORDER:
        query = QUERIES[name]
        scaled = scale_profile(profiles[name], scale_factor, target_sf)
        rows.append(
            {
                "query": name,
                "monetdb_ms": monetdb.simulate(query, scaled).total_ms,
                "gpu_coprocessor_ms": coprocessor.simulate(query, scaled).total_ms,
                "hyper_ms": hyper.simulate(query, scaled).total_ms,
            }
        )
    mean = {
        "query": "mean",
        "monetdb_ms": float(np.mean([r["monetdb_ms"] for r in rows])),
        "gpu_coprocessor_ms": float(np.mean([r["gpu_coprocessor_ms"] for r in rows])),
        "hyper_ms": float(np.mean([r["hyper_ms"] for r in rows])),
    }
    rows.append(mean)
    return {"rows": rows, "scale_factor_executed": scale_factor, "scale_factor_reported": target_sf}


def run_figure16(scale_factor: float = 0.2, target_sf: float = PAPER_SSB_SF, seed: int = 31) -> dict:
    """Hyper vs Standalone CPU vs OmniSci vs Standalone GPU on the full SSB."""
    db, values, profiles = _ssb_profiles(scale_factor, seed)
    hyper = HyperLikeEngine(db)
    cpu = CPUStandaloneEngine(db)
    omnisci = OmnisciLikeEngine(db)
    gpu = GPUStandaloneEngine(db)

    rows = []
    for name in QUERY_ORDER:
        query = QUERIES[name]
        scaled = scale_profile(profiles[name], scale_factor, target_sf)
        cpu_ms = cpu.simulate(query, scaled).total_ms
        gpu_ms = gpu.simulate(query, scaled).total_ms
        rows.append(
            {
                "query": name,
                "hyper_ms": hyper.simulate(query, scaled).total_ms,
                "standalone_cpu_ms": cpu_ms,
                "omnisci_ms": omnisci.simulate(query, scaled).total_ms,
                "standalone_gpu_ms": gpu_ms,
                "cpu_over_gpu": cpu_ms / gpu_ms if gpu_ms else float("nan"),
            }
        )
    mean = {
        "query": "mean",
        "hyper_ms": float(np.mean([r["hyper_ms"] for r in rows])),
        "standalone_cpu_ms": float(np.mean([r["standalone_cpu_ms"] for r in rows])),
        "omnisci_ms": float(np.mean([r["omnisci_ms"] for r in rows])),
        "standalone_gpu_ms": float(np.mean([r["standalone_gpu_ms"] for r in rows])),
        "cpu_over_gpu": float(np.mean([r["cpu_over_gpu"] for r in rows])),
    }
    rows.append(mean)
    return {"rows": rows, "scale_factor_executed": scale_factor, "scale_factor_reported": target_sf}


# ----------------------------------------------------------------------
# Table 2, Table 3, and the Section 5.3 case study
# ----------------------------------------------------------------------
def run_table2() -> dict:
    """The hardware specification table the whole evaluation is based on."""
    cpu, gpu = INTEL_I7_6900, NVIDIA_V100
    rows = [
        {"attribute": "model", "cpu": cpu.model, "gpu": gpu.model},
        {"attribute": "cores", "cpu": cpu.cores, "gpu": gpu.total_cores},
        {"attribute": "memory_capacity_gb", "cpu": cpu.dram_capacity_bytes / 2**30,
         "gpu": gpu.global_capacity_bytes / 2**30},
        {"attribute": "read_bandwidth_gbps", "cpu": cpu.dram_read_bandwidth / 1e9,
         "gpu": gpu.global_read_bandwidth / 1e9},
        {"attribute": "write_bandwidth_gbps", "cpu": cpu.dram_write_bandwidth / 1e9,
         "gpu": gpu.global_write_bandwidth / 1e9},
        {"attribute": "l2_size_mb", "cpu": cpu.cache_named("L2").capacity_bytes / 2**20,
         "gpu": gpu.l2_capacity_bytes / 2**20},
        {"attribute": "llc_size_mb", "cpu": cpu.cache_named("L3").capacity_bytes / 2**20,
         "gpu": gpu.l2_capacity_bytes / 2**20},
        {"attribute": "l2_bandwidth_gbps", "cpu": float("nan"), "gpu": gpu.l2_bandwidth / 1e9},
        {"attribute": "l3_bandwidth_gbps", "cpu": cpu.cache_named("L3").bandwidth_bytes_per_s / 1e9,
         "gpu": float("nan")},
        {"attribute": "bandwidth_ratio", "cpu": 1.0, "gpu": PAPER_PLATFORM.bandwidth_ratio},
    ]
    return {"rows": rows}


def run_table3(performance_ratio: float | None = None, scale_factor: float = 0.1, seed: int = 31) -> dict:
    """Cost comparison; derives the speedup from Figure 16 when not supplied."""
    if performance_ratio is None:
        figure16 = run_figure16(scale_factor=scale_factor, seed=seed)
        performance_ratio = figure16["rows"][-1]["cpu_over_gpu"]
    comparison = cost_comparison(performance_ratio)
    rows = comparison.as_rows()
    rows.append(
        {
            "platform": "cost effectiveness (GPU vs CPU)",
            "instance": "",
            "rent_usd_per_hour": comparison.rent_cost_effectiveness,
            "purchase_usd": comparison.purchase_cost_effectiveness,
        }
    )
    return {"rows": rows, "performance_ratio": performance_ratio}


def run_sec53_case_study(scale_factor: float = 0.2, target_sf: float = PAPER_SSB_SF, seed: int = 31) -> dict:
    """q2.1: model-predicted vs engine-simulated runtime on both devices."""
    db = generate_ssb(scale_factor=scale_factor, seed=seed)
    query = QUERIES["q2.1"]
    value, profile = execute_query(db, query)
    scaled = scale_profile(profile, scale_factor, target_sf)

    cpu_engine = CPUStandaloneEngine(db)
    gpu_engine = GPUStandaloneEngine(db)
    inputs = QueryCostInputs.ssb_q21_sf(target_sf)

    rows = [
        {
            "device": "GPU",
            "model_ms": gpu_ssb_q21_model(inputs).milliseconds,
            "simulated_ms": gpu_engine.simulate(query, scaled).total_ms,
            "paper_model_ms": 3.7,
            "paper_actual_ms": 3.86,
        },
        {
            "device": "CPU",
            "model_ms": cpu_ssb_q21_model(inputs).milliseconds,
            "simulated_ms": cpu_engine.simulate(query, scaled).total_ms,
            "paper_model_ms": 47.0,
            "paper_actual_ms": 125.0,
        },
    ]
    return {"rows": rows}
