"""CSV export of experiment results.

The benchmark harness prints its regenerated tables; downstream users who
want to re-plot the paper's figures need the raw series in a machine-readable
form.  :func:`export_rows` and :func:`export_series` write the structures
returned by the ``run_*`` functions of :mod:`repro.analysis.experiments` to
CSV files, and :func:`export_experiment` dispatches on whichever keys the
result dictionary carries.
"""

from __future__ import annotations

import csv
from pathlib import Path


def export_rows(rows: list[dict], path: str | Path) -> Path:
    """Write a list of row dictionaries to ``path`` as CSV."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def export_series(series: dict[str, dict], path: str | Path, x_name: str = "x") -> Path:
    """Write ``{series name: {x: y}}`` to ``path`` as a wide CSV table."""
    path = Path(path)
    xs = sorted({x for values in series.values() for x in values})
    columns = [x_name, *series.keys()]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for x in xs:
            writer.writerow([x] + [series[name].get(x, "") for name in series])
    return path


def export_experiment(result: dict, directory: str | Path, name: str) -> list[Path]:
    """Export every rows/series payload in an experiment result.

    Returns the list of files written.  File names are derived from ``name``
    and the payload key (``<name>.csv`` for the primary payload,
    ``<name>_<key>.csv`` for additional ones such as Figure 14's histogram
    and shuffle series).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    x_name = result.get("x", "x")
    for key, payload in result.items():
        if key == "rows" and isinstance(payload, list):
            written.append(export_rows(payload, directory / f"{name}.csv"))
        elif key == "series" and isinstance(payload, dict):
            written.append(export_series(payload, directory / f"{name}.csv", x_name))
        elif key.endswith("_rows") and isinstance(payload, list):
            written.append(export_rows(payload, directory / f"{name}_{key[:-5]}.csv"))
        elif key.endswith("_series") and isinstance(payload, dict):
            written.append(export_series(payload, directory / f"{name}_{key[:-7]}.csv", x_name))
    return written
