"""SSB data generator (a dbgen equivalent).

Generates the five SSB tables at any scale factor with the standard
cardinality rules, uniform foreign-key distributions, and the attribute
hierarchies the benchmark predicates rely on (region -> nation -> city,
manufacturer -> category -> brand, year -> month -> week).  String columns
are dictionary encoded to 4-byte integer codes at generation time, matching
the storage layout the paper benchmarks (Section 5.2).

The generator is deterministic given a seed, and the selectivities of the
benchmark predicates match the canonical SSB values (e.g. ``s_region =
'AMERICA'`` selects 1/5 of suppliers, ``p_category = 'MFGR#12'`` selects
1/25 of parts) because the underlying attributes are uniform.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.memory import Device
from repro.ssb import schema
from repro.storage import Column, Database, Table


#: Full value domains for the dictionary-encoded columns.  Dictionaries are
#: always built over the whole domain (not just the values present in a
#: small sample) so that every benchmark predicate constant is resolvable at
#: any scale factor, and so that code order matches lexicographic order.
_DOMAINS = {
    "region": schema.REGIONS,
    "nation": schema.NATIONS,
    "city": schema.all_cities(),
    "mfgr": [schema.mfgr_name(m) for m in range(1, schema.NUM_MFGRS + 1)],
    "category": [
        schema.category_name(m, c)
        for m in range(1, schema.NUM_MFGRS + 1)
        for c in range(1, schema.CATEGORIES_PER_MFGR + 1)
    ],
    "brand": [
        schema.brand_name(m, c, b)
        for m in range(1, schema.NUM_MFGRS + 1)
        for c in range(1, schema.CATEGORIES_PER_MFGR + 1)
        for b in range(1, schema.BRANDS_PER_CATEGORY + 1)
    ],
    "month": schema.MONTH_NAMES,
    "yearmonth": [
        f"{month}{year}"
        for year in range(schema.DATE_START_YEAR, schema.DATE_END_YEAR + 1)
        for month in schema.MONTH_NAMES
    ],
}


def _encode(table: Table, name: str, raw_values, domain_key: str) -> None:
    """Dictionary encode a string column over its full value domain."""
    table.add_encoded_column(name, raw_values, domain=_DOMAINS[domain_key])


def _generate_date() -> Table:
    rows = schema.generate_date_attributes()
    table = Table(name="date")
    table.add_column(Column("d_datekey", np.array([r["d_datekey"] for r in rows], dtype=np.int32)))
    table.add_column(Column("d_year", np.array([r["d_year"] for r in rows], dtype=np.int32)))
    table.add_column(
        Column("d_yearmonthnum", np.array([r["d_yearmonthnum"] for r in rows], dtype=np.int32))
    )
    table.add_column(
        Column("d_daynuminyear", np.array([r["d_daynuminyear"] for r in rows], dtype=np.int32))
    )
    table.add_column(
        Column("d_weeknuminyear", np.array([r["d_weeknuminyear"] for r in rows], dtype=np.int32))
    )
    _encode(table, "d_month", [r["d_month"] for r in rows], "month")
    _encode(table, "d_yearmonth", [r["d_yearmonth"] for r in rows], "yearmonth")
    return table


def _generate_supplier(num_rows: int, rng: np.random.Generator) -> Table:
    table = Table(name="supplier")
    table.add_column(Column("s_suppkey", np.arange(num_rows, dtype=np.int32)))
    region_idx = rng.integers(0, len(schema.REGIONS), num_rows)
    nation_in_region = rng.integers(0, 5, num_rows)
    city_digit = rng.integers(0, schema.CITIES_PER_NATION, num_rows)
    regions = [schema.REGIONS[i] for i in region_idx]
    nations = [schema.NATIONS_BY_REGION[schema.REGIONS[r]][n] for r, n in zip(region_idx, nation_in_region)]
    cities = [schema.city_name(nation, digit) for nation, digit in zip(nations, city_digit)]
    _encode(table, "s_region", regions, "region")
    _encode(table, "s_nation", nations, "nation")
    _encode(table, "s_city", cities, "city")
    return table


def _generate_customer(num_rows: int, rng: np.random.Generator) -> Table:
    table = Table(name="customer")
    table.add_column(Column("c_custkey", np.arange(num_rows, dtype=np.int32)))
    region_idx = rng.integers(0, len(schema.REGIONS), num_rows)
    nation_in_region = rng.integers(0, 5, num_rows)
    city_digit = rng.integers(0, schema.CITIES_PER_NATION, num_rows)
    regions = [schema.REGIONS[i] for i in region_idx]
    nations = [schema.NATIONS_BY_REGION[schema.REGIONS[r]][n] for r, n in zip(region_idx, nation_in_region)]
    cities = [schema.city_name(nation, digit) for nation, digit in zip(nations, city_digit)]
    _encode(table, "c_region", regions, "region")
    _encode(table, "c_nation", nations, "nation")
    _encode(table, "c_city", cities, "city")
    return table


def _generate_part(num_rows: int, rng: np.random.Generator) -> Table:
    table = Table(name="part")
    table.add_column(Column("p_partkey", np.arange(num_rows, dtype=np.int32)))
    mfgr = rng.integers(1, schema.NUM_MFGRS + 1, num_rows)
    category = rng.integers(1, schema.CATEGORIES_PER_MFGR + 1, num_rows)
    brand = rng.integers(1, schema.BRANDS_PER_CATEGORY + 1, num_rows)
    mfgr_names = [schema.mfgr_name(m) for m in mfgr]
    category_names = [schema.category_name(m, c) for m, c in zip(mfgr, category)]
    brand_names = [schema.brand_name(m, c, b) for m, c, b in zip(mfgr, category, brand)]
    _encode(table, "p_mfgr", mfgr_names, "mfgr")
    _encode(table, "p_category", category_names, "category")
    _encode(table, "p_brand1", brand_names, "brand")
    return table


def _generate_lineorder(
    num_rows: int,
    date_table: Table,
    customer_rows: int,
    supplier_rows: int,
    part_rows: int,
    rng: np.random.Generator,
) -> Table:
    table = Table(name="lineorder")
    datekeys = date_table["d_datekey"]
    table.add_column(Column("lo_orderkey", np.arange(num_rows, dtype=np.int32)))
    table.add_column(
        Column("lo_orderdate", datekeys[rng.integers(0, datekeys.shape[0], num_rows)].astype(np.int32))
    )
    table.add_column(Column("lo_custkey", rng.integers(0, customer_rows, num_rows, dtype=np.int32)))
    table.add_column(Column("lo_suppkey", rng.integers(0, supplier_rows, num_rows, dtype=np.int32)))
    table.add_column(Column("lo_partkey", rng.integers(0, part_rows, num_rows, dtype=np.int32)))
    table.add_column(Column("lo_quantity", rng.integers(1, 51, num_rows, dtype=np.int32)))
    table.add_column(Column("lo_discount", rng.integers(0, 11, num_rows, dtype=np.int32)))
    extendedprice = rng.integers(90_000, 10_000_000, num_rows, dtype=np.int32)
    table.add_column(Column("lo_extendedprice", extendedprice))
    table.add_column(
        Column("lo_revenue", (extendedprice * (100 - rng.integers(0, 11, num_rows)) // 100).astype(np.int32))
    )
    table.add_column(
        Column("lo_supplycost", (extendedprice * 6 // 10 // 10).astype(np.int32))
    )
    return table


def generate_lineorder_batch(db: Database, num_rows: int, seed: int = 0) -> dict[str, np.ndarray]:
    """Generate ``num_rows`` of new lineorder rows as append-ready arrays.

    The streaming counterpart of :func:`generate_ssb`: the batch draws its
    foreign keys from ``db``'s *current* dimension tables (so every new row
    joins), continues ``lo_orderkey`` from the fact table's current row
    count, and comes back as the plain ``{column: array}`` mapping that
    :meth:`repro.storage.Table.append`,
    :class:`repro.ingest.IngestBuffer.add`, and
    :meth:`repro.api.Session.ingest` all accept.  Deterministic given
    ``(db state, num_rows, seed)``.
    """
    rng = np.random.default_rng(seed)
    fact = db.table("lineorder")
    batch = _generate_lineorder(
        num_rows,
        db.table("date"),
        db.table("customer").num_rows,
        db.table("supplier").num_rows,
        db.table("part").num_rows,
        rng,
    )
    arrays = {name: batch[name] for name in batch.column_names()}
    arrays["lo_orderkey"] = (np.arange(num_rows) + fact.num_rows).astype(np.int32)
    return arrays


def generate_ssb(scale_factor: float = 1.0, seed: int = 42, device: Device = Device.CPU) -> Database:
    """Generate the full SSB database at ``scale_factor``.

    Args:
        scale_factor: The SSB scale factor.  SF 1 produces a 6 M-row fact
            table; the paper evaluates SF 20 (120 M rows).  Fractional scale
            factors are supported for tests and laptop-scale runs.
        seed: Seed for the deterministic random generator.
        device: Where the generated columns are considered resident.

    Returns:
        A :class:`~repro.storage.Database` with the five SSB tables.
    """
    rng = np.random.default_rng(seed)
    db = Database(name=f"ssb_sf{scale_factor:g}")

    date_table = _generate_date()
    supplier_rows = schema.ssb_table_rows("supplier", scale_factor)
    customer_rows = schema.ssb_table_rows("customer", scale_factor)
    part_rows = schema.ssb_table_rows("part", scale_factor)
    lineorder_rows = schema.ssb_table_rows("lineorder", scale_factor)

    supplier = _generate_supplier(supplier_rows, rng)
    customer = _generate_customer(customer_rows, rng)
    part = _generate_part(part_rows, rng)
    lineorder = _generate_lineorder(
        lineorder_rows, date_table, customer_rows, supplier_rows, part_rows, rng
    )

    for table in (lineorder, date_table, supplier, customer, part):
        db.add_table(table if device is Device.CPU else table.to_device(device))
    return db
