"""Star Schema Benchmark (SSB) substrate.

The SSB [O'Neil et al.] is a simplified TPC-H: one fact table (``lineorder``)
and four dimension tables (``date``, ``customer``, ``supplier``, ``part``)
arranged in a star, queried by 13 queries in four flights.  This package
provides:

* :mod:`repro.ssb.schema` -- the schema and the value domains (regions,
  nations, cities, manufacturer/category/brand hierarchy, date attributes).
* :mod:`repro.ssb.generator` -- a dbgen-equivalent data generator that
  produces the tables at any scale factor with the standard cardinality
  rules and uniform key distributions, dictionary encoding every string
  column to 4-byte codes (Section 5.2).
* :mod:`repro.ssb.queries` -- declarative definitions of all 13 queries,
  ready to be executed by the engines in :mod:`repro.engine`.
"""

from repro.ssb.generator import generate_lineorder_batch, generate_ssb
from repro.ssb.queries import (
    QUERIES,
    QUERY_ORDER,
    AggregateSpec,
    And,
    FilterSpec,
    JoinSpec,
    Leaf,
    Not,
    Or,
    Pred,
    SSBQuery,
    as_pred,
    conjuncts,
)
from repro.ssb.schema import SSB_CARDINALITIES, ssb_table_rows

__all__ = [
    "AggregateSpec",
    "And",
    "FilterSpec",
    "JoinSpec",
    "Leaf",
    "Not",
    "Or",
    "Pred",
    "QUERIES",
    "QUERY_ORDER",
    "SSBQuery",
    "SSB_CARDINALITIES",
    "as_pred",
    "conjuncts",
    "generate_lineorder_batch",
    "generate_ssb",
    "ssb_table_rows",
]
