"""SSB schema: table layouts, cardinality rules, and value domains."""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The five regions of the TPC-H / SSB geography.
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: Five nations per region (25 nations), in the region order above.
NATIONS_BY_REGION = {
    "AFRICA": ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    "AMERICA": ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"],
    "ASIA": ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"],
    "EUROPE": ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"],
    "MIDDLE EAST": ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
}

NATIONS = [nation for region in REGIONS for nation in NATIONS_BY_REGION[region]]

#: Cities are the first nine characters of the nation padded, plus a digit
#: 0-9 (the dbgen convention, e.g. "UNITED KI1"), ten cities per nation.
CITIES_PER_NATION = 10

#: Manufacturer / category / brand hierarchy: 5 manufacturers, 5 categories
#: each (25 categories), 40 brands per category (1000 brands).
NUM_MFGRS = 5
CATEGORIES_PER_MFGR = 5
BRANDS_PER_CATEGORY = 40

#: The date dimension covers 1992-01-01 .. 1998-12-31 (2556 days).
DATE_START_YEAR = 1992
DATE_END_YEAR = 1998

MONTH_NAMES = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]

_DAYS_PER_MONTH = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]

#: Base cardinalities at scale factor 1 (dbgen rules).
SSB_CARDINALITIES = {
    "lineorder": 6_000_000,
    "customer": 30_000,
    "supplier": 2_000,
    "part": 200_000,
    "date": 2_556,
}


def city_name(nation: str, digit: int) -> str:
    """The dbgen-style city name: first nine characters of the nation + digit."""
    if not 0 <= digit < CITIES_PER_NATION:
        raise ValueError("city digit must be in [0, 10)")
    return f"{nation[:9]:<9}{digit}"[:10]


def all_cities() -> list[str]:
    """All 250 city names in nation order."""
    return [city_name(nation, digit) for nation in NATIONS for digit in range(CITIES_PER_NATION)]


def mfgr_name(mfgr_index: int) -> str:
    """Manufacturer name, 1-based index: ``MFGR#1`` .. ``MFGR#5``."""
    return f"MFGR#{mfgr_index}"


def category_name(mfgr_index: int, category_index: int) -> str:
    """Category name, 1-based indexes: ``MFGR#11`` .. ``MFGR#55``."""
    return f"MFGR#{mfgr_index}{category_index}"


def brand_name(mfgr_index: int, category_index: int, brand_index: int) -> str:
    """Brand name, 1-based indexes: ``MFGR#1101`` .. style."""
    return f"MFGR#{mfgr_index}{category_index}{brand_index:02d}"


def ssb_table_rows(table: str, scale_factor: float) -> int:
    """Row count of an SSB table at a given scale factor.

    ``lineorder``, ``customer``, and ``supplier`` scale linearly; ``part``
    scales as ``200k * (1 + floor(log2(SF)))``; the date dimension is fixed.
    """
    if table not in SSB_CARDINALITIES:
        raise KeyError(f"unknown SSB table {table!r}")
    if scale_factor <= 0:
        raise ValueError("scale factor must be positive")
    base = SSB_CARDINALITIES[table]
    if table == "date":
        return base
    if table == "part":
        return int(base * (1 + max(0, math.floor(math.log2(scale_factor))))) if scale_factor >= 1 else max(
            200, int(base * scale_factor)
        )
    return max(1, int(base * scale_factor))


def generate_date_attributes() -> list[dict]:
    """The full date dimension as a list of per-day attribute dicts.

    Leap days are skipped (as dbgen does), giving 365 * 7 = 2555 days plus
    the spill into the first day of 1999 is omitted; the canonical SSB date
    table has 2556 rows, which we match by including Feb 29 of 1992 and 1996.
    """
    rows = []
    for year in range(DATE_START_YEAR, DATE_END_YEAR + 1):
        leap = year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)
        day_of_year = 0
        for month_index, days in enumerate(_DAYS_PER_MONTH, start=1):
            month_days = days + (1 if (leap and month_index == 2) else 0)
            for day in range(1, month_days + 1):
                day_of_year += 1
                rows.append(
                    {
                        "d_datekey": year * 10_000 + month_index * 100 + day,
                        "d_year": year,
                        "d_month": MONTH_NAMES[month_index - 1],
                        "d_yearmonthnum": year * 100 + month_index,
                        "d_yearmonth": f"{MONTH_NAMES[month_index - 1]}{year}",
                        "d_daynuminmonth": day,
                        "d_daynuminyear": day_of_year,
                        "d_weeknuminyear": (day_of_year - 1) // 7 + 1,
                    }
                )
    return rows


@dataclass(frozen=True)
class FactColumns:
    """Names of the lineorder columns the benchmark queries touch."""

    keys: tuple = ("lo_orderdate", "lo_custkey", "lo_partkey", "lo_suppkey")
    measures: tuple = (
        "lo_quantity",
        "lo_discount",
        "lo_extendedprice",
        "lo_revenue",
        "lo_supplycost",
    )
