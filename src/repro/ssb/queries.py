"""Declarative definitions of the 13 Star Schema Benchmark queries.

Every query is described as a :class:`SSBQuery`: filters applied directly to
fact-table columns, one :class:`JoinSpec` per dimension join (with the
dimension's own filters and the dimension column the query groups on, if
any), the group-by columns, and the aggregate expression.  The engines in
:mod:`repro.engine` interpret these specifications; keeping them declarative
lets the CPU, GPU, coprocessor, and baseline engines share one source of
truth for what each query computes.

String constants are written as strings here; the engines rewrite them into
dictionary codes against the loaded database (the paper's manual rewrite of
``s_region = 'ASIA'`` into ``s_region = 2``, Section 5.2).  Because the
dictionary encoder assigns codes in sorted order, range predicates on
encoded columns (q2.2's brand range) translate directly to code ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Union

#: Predicate operators understood by :mod:`repro.engine.expr`.
FILTER_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "between", "in")

#: Aggregate operators understood by :func:`repro.engine.plan.execute_query`.
AGGREGATE_OPS = ("sum", "count", "min", "max", "avg")

#: Two-column measure combinators (``lo_extendedprice * lo_discount`` etc.).
COMBINE_OPS = ("mul", "sub")


@dataclass(frozen=True)
class FilterSpec:
    """A single-column predicate.

    ``op`` is one of ``eq``, ``ne``, ``lt``, ``le``, ``gt``, ``ge``,
    ``between`` (inclusive two-sided range), or ``in`` (membership).
    ``encoded=True`` marks string constants that must be rewritten into
    dictionary codes before evaluation.
    """

    column: str
    op: str
    value: object
    encoded: bool = False

    # Boolean composition: specs combine directly into predicate trees, so
    # hand-written queries read the same as builder-made ones.
    def __and__(self, other: "PredLike") -> "Pred":
        return as_pred(self) & as_pred(other)

    def __or__(self, other: "PredLike") -> "Pred":
        return as_pred(self) | as_pred(other)

    def __invert__(self) -> "Pred":
        return ~as_pred(self)


def _render_spec(spec: FilterSpec) -> str:
    """SQL-flavoured rendering of one leaf predicate."""
    symbol = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
    quote = (lambda v: f"'{v}'" if isinstance(v, str) else str(v))
    if spec.op == "between":
        low, high = spec.value
        return f"{spec.column} BETWEEN {quote(low)} AND {quote(high)}"
    if spec.op == "in":
        return f"{spec.column} IN ({', '.join(quote(v) for v in spec.value)})"
    return f"{spec.column} {symbol[spec.op]} {quote(spec.value)}"


class Pred:
    """Base of the boolean predicate algebra.

    A predicate is a tree whose leaves are :class:`FilterSpec` single-column
    comparisons and whose inner nodes are :class:`And`, :class:`Or`, and
    :class:`Not`.  Trees compose with the bitwise operators (``&``, ``|``,
    ``~``), compare structurally, and are hashable, so they can sit inside
    the frozen :class:`SSBQuery`/:class:`JoinSpec` specs (and inside cache
    keys) exactly like the legacy ``tuple[FilterSpec, ...]`` conjunctions,
    which :func:`as_pred` normalizes into :class:`And` nodes.
    """

    __slots__ = ()

    def __and__(self, other: "PredLike") -> "Pred":
        return And(*self._flatten(And), *as_pred(other)._flatten(And))

    def __or__(self, other: "PredLike") -> "Pred":
        return Or(*self._flatten(Or), *as_pred(other)._flatten(Or))

    def __invert__(self) -> "Pred":
        return Not(self)

    def _flatten(self, kind: type) -> tuple["Pred", ...]:
        """Children to splice when combining under ``kind`` (associativity)."""
        if isinstance(self, kind):
            return self.children  # type: ignore[attr-defined]
        return (self,)

    # ------------------------------------------------------------------
    def leaves(self) -> Iterator[FilterSpec]:
        """Every :class:`FilterSpec` leaf of the tree, left to right."""
        raise NotImplementedError

    def map_leaves(self, fn: Callable[[FilterSpec], FilterSpec]) -> "Pred":
        """The same tree shape with every leaf spec replaced by ``fn(spec)``."""
        raise NotImplementedError

    def columns(self) -> tuple[str, ...]:
        """Distinct columns the tree references, in first-use order."""
        seen: list[str] = []
        for spec in self.leaves():
            if spec.column not in seen:
                seen.append(spec.column)
        return tuple(seen)


class Leaf(Pred):
    """A single-column comparison (one :class:`FilterSpec`)."""

    __slots__ = ("spec",)

    def __init__(self, spec: FilterSpec) -> None:
        if not isinstance(spec, FilterSpec):
            raise TypeError(f"Leaf wraps a FilterSpec, got {type(spec).__name__}")
        self.spec = spec

    def leaves(self) -> Iterator[FilterSpec]:
        yield self.spec

    def map_leaves(self, fn: Callable[[FilterSpec], FilterSpec]) -> "Pred":
        replaced = fn(self.spec)
        return self if replaced is self.spec else Leaf(replaced)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Leaf) and other.spec == self.spec

    def __hash__(self) -> int:
        return hash((Leaf, self.spec))

    def __repr__(self) -> str:
        return f"Leaf({self.spec!r})"

    def __str__(self) -> str:
        return _render_spec(self.spec)


class _Junction(Pred):
    """Shared machinery of the variadic :class:`And` / :class:`Or` nodes."""

    __slots__ = ("children",)
    _word = ""

    def __init__(self, *children: "PredLike") -> None:
        self.children: tuple[Pred, ...] = tuple(as_pred(child) for child in children)

    def leaves(self) -> Iterator[FilterSpec]:
        for child in self.children:
            yield from child.leaves()

    def map_leaves(self, fn: Callable[[FilterSpec], FilterSpec]) -> "Pred":
        return type(self)(*(child.map_leaves(fn) for child in self.children))

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.children == self.children  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self), self.children))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(repr(c) for c in self.children)})"

    def __str__(self) -> str:
        if not self.children:
            return "TRUE" if isinstance(self, And) else "FALSE"
        if len(self.children) == 1:
            return str(self.children[0])
        return "(" + f" {self._word} ".join(str(c) for c in self.children) + ")"


class And(_Junction):
    """Conjunction: true where every child is true (vacuously true if empty)."""

    __slots__ = ()
    _word = "AND"


class Or(_Junction):
    """Disjunction: true where any child is true (vacuously false if empty)."""

    __slots__ = ()
    _word = "OR"


class Not(Pred):
    """Negation of one child predicate."""

    __slots__ = ("child",)

    def __init__(self, child: "PredLike") -> None:
        self.child = as_pred(child)

    def leaves(self) -> Iterator[FilterSpec]:
        yield from self.child.leaves()

    def map_leaves(self, fn: Callable[[FilterSpec], FilterSpec]) -> "Pred":
        return Not(self.child.map_leaves(fn))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.child == self.child

    def __hash__(self) -> int:
        return hash((Not, self.child))

    def __repr__(self) -> str:
        return f"Not({self.child!r})"

    def __str__(self) -> str:
        return f"NOT {self.child}"


#: Anything the spec layer accepts where a predicate is expected.
PredLike = Union[Pred, FilterSpec, tuple]


def as_pred(obj) -> Pred:
    """Normalize ``obj`` into a :class:`Pred` tree.

    Accepts a tree (returned as-is), a bare :class:`FilterSpec` (wrapped in a
    :class:`Leaf`), or the legacy ``tuple``/``list`` of specs (wrapped in an
    :class:`And`), so every consumer -- mask evaluation, profiling, planning,
    validation -- can walk one shape.
    """
    if isinstance(obj, Pred):
        return obj
    if isinstance(obj, FilterSpec):
        return Leaf(obj)
    if obj is None:
        return And()
    if isinstance(obj, (tuple, list)):
        return And(*obj)
    raise TypeError(
        f"expected a Pred, FilterSpec, or tuple of FilterSpec, got {type(obj).__name__}"
    )


def conjuncts(pred: "PredLike") -> tuple[Pred, ...]:
    """The top-level AND terms of a predicate (the tree itself if not an And).

    The executor applies conjuncts one at a time so the profile records how
    the surviving-row count shrinks term by term, exactly as the legacy
    filter list did.
    """
    pred = as_pred(pred)
    if isinstance(pred, And):
        return pred.children
    return (pred,)


@dataclass(frozen=True)
class JoinSpec:
    """A join between a probe-side table and one dimension table.

    ``filters`` restricts the dimension before the hash-table build: either
    the legacy tuple of :class:`FilterSpec` (an implicit conjunction) or an
    arbitrary :class:`Pred` tree.

    ``source`` names the table the probe-side key (``fact_key``) lives on.
    ``None`` -- the overwhelmingly common case, and every canonical SSB
    query -- means the query's fact table.  Naming another *dimension*
    declares a snowflake chain (dimension -> dimension): the logical plan
    (:class:`repro.engine.physical.LogicalPlan`) carries such chains
    faithfully, but lowering them to physical operators is not implemented
    yet, so executing one raises ``NotImplementedError`` (see the ROADMAP's
    multi-fact / snowflake item -- it is a lowering change, not a rewrite).
    """

    dimension: str
    fact_key: str
    dimension_key: str
    filters: "tuple[FilterSpec, ...] | Pred" = ()
    payload: str | None = None
    source: str | None = None

    @property
    def predicate(self) -> Pred:
        """The dimension restriction as a normalized :class:`Pred` tree."""
        return as_pred(self.filters)


@dataclass(frozen=True)
class AggregateSpec:
    """The aggregate of a query.

    ``op`` is one of ``sum``, ``count``, ``min``, ``max``, or ``avg``,
    applied to a one- or two-column measure expression (``combine`` is
    ``"mul"`` or ``"sub"`` for two columns, ``None`` for one).  ``count``
    counts surviving rows and takes no measure columns.
    """

    columns: tuple[str, ...]
    combine: str | None = None  # None, "mul", or "sub"
    op: str = "sum"


@dataclass(frozen=True)
class SSBQuery:
    """One declarative star-schema query (canonical SSB or user-built).

    ``fact`` names the fact table the filters, join keys, and measures are
    evaluated against; the 13 canonical queries all use ``lineorder``, but
    :class:`repro.api.QueryBuilder` can target any star schema loaded into a
    :class:`~repro.storage.Database`.
    """

    name: str
    flight: int
    fact_filters: "tuple[FilterSpec, ...] | Pred"
    joins: tuple[JoinSpec, ...]
    group_by: tuple[str, ...]
    aggregate: AggregateSpec
    description: str = ""
    fact: str = "lineorder"

    @property
    def has_group_by(self) -> bool:
        return bool(self.group_by)

    @property
    def predicate(self) -> Pred:
        """The fact-table restriction as a normalized :class:`Pred` tree."""
        return as_pred(self.fact_filters)

    def fact_columns_accessed(self) -> list[str]:
        """Fact-table columns the query touches (filters, keys, measures)."""
        columns: list[str] = list(self.predicate.columns())
        for join in self.joins:
            if join.fact_key not in columns:
                columns.append(join.fact_key)
        for column in self.aggregate.columns:
            if column not in columns:
                columns.append(column)
        return columns


def _q1(name: str, date_filters: tuple[FilterSpec, ...], discount, quantity) -> SSBQuery:
    """Query-flight-1 template: date-restricted scan of the fact table."""
    fact_filters = (
        FilterSpec("lo_discount", "between", discount),
        quantity,
    )
    return SSBQuery(
        name=name,
        flight=1,
        fact_filters=fact_filters,
        joins=(
            JoinSpec(
                dimension="date",
                fact_key="lo_orderdate",
                dimension_key="d_datekey",
                filters=date_filters,
            ),
        ),
        group_by=(),
        aggregate=AggregateSpec(columns=("lo_extendedprice", "lo_discount"), combine="mul"),
        description="revenue = SUM(lo_extendedprice * lo_discount) under date/discount/quantity filters",
    )


QUERIES: dict[str, SSBQuery] = {}

QUERIES["q1.1"] = _q1(
    "q1.1",
    (FilterSpec("d_year", "eq", 1993),),
    (1, 3),
    FilterSpec("lo_quantity", "lt", 25),
)
QUERIES["q1.2"] = _q1(
    "q1.2",
    (FilterSpec("d_yearmonthnum", "eq", 199401),),
    (4, 6),
    FilterSpec("lo_quantity", "between", (26, 35)),
)
QUERIES["q1.3"] = _q1(
    "q1.3",
    (FilterSpec("d_weeknuminyear", "eq", 6), FilterSpec("d_year", "eq", 1994)),
    (5, 7),
    FilterSpec("lo_quantity", "between", (26, 35)),
)

QUERIES["q2.1"] = SSBQuery(
    name="q2.1",
    flight=2,
    fact_filters=(),
    joins=(
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "AMERICA", encoded=True),)),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_category", "eq", "MFGR#12", encoded=True),), payload="p_brand1"),
        JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
    ),
    group_by=("d_year", "p_brand1"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="SUM(lo_revenue) by year and brand for one category in one region",
)

QUERIES["q2.2"] = SSBQuery(
    name="q2.2",
    flight=2,
    fact_filters=(),
    joins=(
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "ASIA", encoded=True),)),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_brand1", "between", ("MFGR#2221", "MFGR#2228"), encoded=True),),
                 payload="p_brand1"),
        JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
    ),
    group_by=("d_year", "p_brand1"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="SUM(lo_revenue) by year and brand for a brand range in ASIA",
)

QUERIES["q2.3"] = SSBQuery(
    name="q2.3",
    flight=2,
    fact_filters=(),
    joins=(
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "EUROPE", encoded=True),)),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_brand1", "eq", "MFGR#2221", encoded=True),), payload="p_brand1"),
        JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
    ),
    group_by=("d_year", "p_brand1"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="SUM(lo_revenue) by year and brand for a single brand in EUROPE",
)

_Q3_YEAR_RANGE = (FilterSpec("d_year", "between", (1992, 1997)),)

QUERIES["q3.1"] = SSBQuery(
    name="q3.1",
    flight=3,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_region", "eq", "ASIA", encoded=True),), payload="c_nation"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "ASIA", encoded=True),), payload="s_nation"),
        JoinSpec("date", "lo_orderdate", "d_datekey", _Q3_YEAR_RANGE, payload="d_year"),
    ),
    group_by=("c_nation", "s_nation", "d_year"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="revenue by customer nation, supplier nation, and year within ASIA",
)

QUERIES["q3.2"] = SSBQuery(
    name="q3.2",
    flight=3,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_nation", "eq", "UNITED STATES", encoded=True),), payload="c_city"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_nation", "eq", "UNITED STATES", encoded=True),), payload="s_city"),
        JoinSpec("date", "lo_orderdate", "d_datekey", _Q3_YEAR_RANGE, payload="d_year"),
    ),
    group_by=("c_city", "s_city", "d_year"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="revenue by city pair and year within the United States",
)

_UK_CITIES = ("UNITED KI1", "UNITED KI5")

QUERIES["q3.3"] = SSBQuery(
    name="q3.3",
    flight=3,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_city", "in", _UK_CITIES, encoded=True),), payload="c_city"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_city", "in", _UK_CITIES, encoded=True),), payload="s_city"),
        JoinSpec("date", "lo_orderdate", "d_datekey", _Q3_YEAR_RANGE, payload="d_year"),
    ),
    group_by=("c_city", "s_city", "d_year"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="revenue between two UK cities by year",
)

QUERIES["q3.4"] = SSBQuery(
    name="q3.4",
    flight=3,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_city", "in", _UK_CITIES, encoded=True),), payload="c_city"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_city", "in", _UK_CITIES, encoded=True),), payload="s_city"),
        JoinSpec("date", "lo_orderdate", "d_datekey",
                 (FilterSpec("d_yearmonth", "eq", "Dec1997", encoded=True),), payload="d_year"),
    ),
    group_by=("c_city", "s_city", "d_year"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="revenue between two UK cities in one month",
)

QUERIES["q4.1"] = SSBQuery(
    name="q4.1",
    flight=4,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_region", "eq", "AMERICA", encoded=True),), payload="c_nation"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "AMERICA", encoded=True),)),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_mfgr", "in", ("MFGR#1", "MFGR#2"), encoded=True),)),
        JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
    ),
    group_by=("d_year", "c_nation"),
    aggregate=AggregateSpec(columns=("lo_revenue", "lo_supplycost"), combine="sub"),
    description="profit by year and customer nation in the Americas",
)

QUERIES["q4.2"] = SSBQuery(
    name="q4.2",
    flight=4,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_region", "eq", "AMERICA", encoded=True),)),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "AMERICA", encoded=True),), payload="s_nation"),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_mfgr", "in", ("MFGR#1", "MFGR#2"), encoded=True),), payload="p_category"),
        JoinSpec("date", "lo_orderdate", "d_datekey",
                 (FilterSpec("d_year", "in", (1997, 1998)),), payload="d_year"),
    ),
    group_by=("d_year", "s_nation", "p_category"),
    aggregate=AggregateSpec(columns=("lo_revenue", "lo_supplycost"), combine="sub"),
    description="profit by year, supplier nation, and category for 1997-1998",
)

QUERIES["q4.3"] = SSBQuery(
    name="q4.3",
    flight=4,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_region", "eq", "AMERICA", encoded=True),)),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_nation", "eq", "UNITED STATES", encoded=True),), payload="s_city"),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_category", "eq", "MFGR#14", encoded=True),), payload="p_brand1"),
        JoinSpec("date", "lo_orderdate", "d_datekey",
                 (FilterSpec("d_year", "in", (1997, 1998)),), payload="d_year"),
    ),
    group_by=("d_year", "s_city", "p_brand1"),
    aggregate=AggregateSpec(columns=("lo_revenue", "lo_supplycost"), combine="sub"),
    description="profit by year, supplier city, and brand for one category",
)

#: Queries in the order the paper's figures plot them.
QUERY_ORDER = [
    "q1.1", "q1.2", "q1.3",
    "q2.1", "q2.2", "q2.3",
    "q3.1", "q3.2", "q3.3", "q3.4",
    "q4.1", "q4.2", "q4.3",
]
