"""Declarative definitions of the 13 Star Schema Benchmark queries.

Every query is described as a :class:`SSBQuery`: filters applied directly to
fact-table columns, one :class:`JoinSpec` per dimension join (with the
dimension's own filters and the dimension column the query groups on, if
any), the group-by columns, and the aggregate expression.  The engines in
:mod:`repro.engine` interpret these specifications; keeping them declarative
lets the CPU, GPU, coprocessor, and baseline engines share one source of
truth for what each query computes.

String constants are written as strings here; the engines rewrite them into
dictionary codes against the loaded database (the paper's manual rewrite of
``s_region = 'ASIA'`` into ``s_region = 2``, Section 5.2).  Because the
dictionary encoder assigns codes in sorted order, range predicates on
encoded columns (q2.2's brand range) translate directly to code ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Predicate operators understood by :mod:`repro.engine.expr`.
FILTER_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "between", "in")

#: Aggregate operators understood by :func:`repro.engine.plan.execute_query`.
AGGREGATE_OPS = ("sum", "count", "min", "max", "avg")

#: Two-column measure combinators (``lo_extendedprice * lo_discount`` etc.).
COMBINE_OPS = ("mul", "sub")


@dataclass(frozen=True)
class FilterSpec:
    """A single-column predicate.

    ``op`` is one of ``eq``, ``ne``, ``lt``, ``le``, ``gt``, ``ge``,
    ``between`` (inclusive two-sided range), or ``in`` (membership).
    ``encoded=True`` marks string constants that must be rewritten into
    dictionary codes before evaluation.
    """

    column: str
    op: str
    value: object
    encoded: bool = False


@dataclass(frozen=True)
class JoinSpec:
    """A join between the fact table and one dimension table."""

    dimension: str
    fact_key: str
    dimension_key: str
    filters: tuple[FilterSpec, ...] = ()
    payload: str | None = None


@dataclass(frozen=True)
class AggregateSpec:
    """The aggregate of a query.

    ``op`` is one of ``sum``, ``count``, ``min``, ``max``, or ``avg``,
    applied to a one- or two-column measure expression (``combine`` is
    ``"mul"`` or ``"sub"`` for two columns, ``None`` for one).  ``count``
    counts surviving rows and takes no measure columns.
    """

    columns: tuple[str, ...]
    combine: str | None = None  # None, "mul", or "sub"
    op: str = "sum"


@dataclass(frozen=True)
class SSBQuery:
    """One declarative star-schema query (canonical SSB or user-built).

    ``fact`` names the fact table the filters, join keys, and measures are
    evaluated against; the 13 canonical queries all use ``lineorder``, but
    :class:`repro.api.QueryBuilder` can target any star schema loaded into a
    :class:`~repro.storage.Database`.
    """

    name: str
    flight: int
    fact_filters: tuple[FilterSpec, ...]
    joins: tuple[JoinSpec, ...]
    group_by: tuple[str, ...]
    aggregate: AggregateSpec
    description: str = ""
    fact: str = "lineorder"

    @property
    def has_group_by(self) -> bool:
        return bool(self.group_by)

    def fact_columns_accessed(self) -> list[str]:
        """Fact-table columns the query touches (filters, keys, measures)."""
        columns: list[str] = []
        for f in self.fact_filters:
            if f.column not in columns:
                columns.append(f.column)
        for join in self.joins:
            if join.fact_key not in columns:
                columns.append(join.fact_key)
        for column in self.aggregate.columns:
            if column not in columns:
                columns.append(column)
        return columns


def _q1(name: str, date_filters: tuple[FilterSpec, ...], discount, quantity) -> SSBQuery:
    """Query-flight-1 template: date-restricted scan of the fact table."""
    fact_filters = (
        FilterSpec("lo_discount", "between", discount),
        quantity,
    )
    return SSBQuery(
        name=name,
        flight=1,
        fact_filters=fact_filters,
        joins=(
            JoinSpec(
                dimension="date",
                fact_key="lo_orderdate",
                dimension_key="d_datekey",
                filters=date_filters,
            ),
        ),
        group_by=(),
        aggregate=AggregateSpec(columns=("lo_extendedprice", "lo_discount"), combine="mul"),
        description="revenue = SUM(lo_extendedprice * lo_discount) under date/discount/quantity filters",
    )


QUERIES: dict[str, SSBQuery] = {}

QUERIES["q1.1"] = _q1(
    "q1.1",
    (FilterSpec("d_year", "eq", 1993),),
    (1, 3),
    FilterSpec("lo_quantity", "lt", 25),
)
QUERIES["q1.2"] = _q1(
    "q1.2",
    (FilterSpec("d_yearmonthnum", "eq", 199401),),
    (4, 6),
    FilterSpec("lo_quantity", "between", (26, 35)),
)
QUERIES["q1.3"] = _q1(
    "q1.3",
    (FilterSpec("d_weeknuminyear", "eq", 6), FilterSpec("d_year", "eq", 1994)),
    (5, 7),
    FilterSpec("lo_quantity", "between", (26, 35)),
)

QUERIES["q2.1"] = SSBQuery(
    name="q2.1",
    flight=2,
    fact_filters=(),
    joins=(
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "AMERICA", encoded=True),)),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_category", "eq", "MFGR#12", encoded=True),), payload="p_brand1"),
        JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
    ),
    group_by=("d_year", "p_brand1"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="SUM(lo_revenue) by year and brand for one category in one region",
)

QUERIES["q2.2"] = SSBQuery(
    name="q2.2",
    flight=2,
    fact_filters=(),
    joins=(
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "ASIA", encoded=True),)),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_brand1", "between", ("MFGR#2221", "MFGR#2228"), encoded=True),),
                 payload="p_brand1"),
        JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
    ),
    group_by=("d_year", "p_brand1"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="SUM(lo_revenue) by year and brand for a brand range in ASIA",
)

QUERIES["q2.3"] = SSBQuery(
    name="q2.3",
    flight=2,
    fact_filters=(),
    joins=(
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "EUROPE", encoded=True),)),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_brand1", "eq", "MFGR#2221", encoded=True),), payload="p_brand1"),
        JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
    ),
    group_by=("d_year", "p_brand1"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="SUM(lo_revenue) by year and brand for a single brand in EUROPE",
)

_Q3_YEAR_RANGE = (FilterSpec("d_year", "between", (1992, 1997)),)

QUERIES["q3.1"] = SSBQuery(
    name="q3.1",
    flight=3,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_region", "eq", "ASIA", encoded=True),), payload="c_nation"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "ASIA", encoded=True),), payload="s_nation"),
        JoinSpec("date", "lo_orderdate", "d_datekey", _Q3_YEAR_RANGE, payload="d_year"),
    ),
    group_by=("c_nation", "s_nation", "d_year"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="revenue by customer nation, supplier nation, and year within ASIA",
)

QUERIES["q3.2"] = SSBQuery(
    name="q3.2",
    flight=3,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_nation", "eq", "UNITED STATES", encoded=True),), payload="c_city"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_nation", "eq", "UNITED STATES", encoded=True),), payload="s_city"),
        JoinSpec("date", "lo_orderdate", "d_datekey", _Q3_YEAR_RANGE, payload="d_year"),
    ),
    group_by=("c_city", "s_city", "d_year"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="revenue by city pair and year within the United States",
)

_UK_CITIES = ("UNITED KI1", "UNITED KI5")

QUERIES["q3.3"] = SSBQuery(
    name="q3.3",
    flight=3,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_city", "in", _UK_CITIES, encoded=True),), payload="c_city"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_city", "in", _UK_CITIES, encoded=True),), payload="s_city"),
        JoinSpec("date", "lo_orderdate", "d_datekey", _Q3_YEAR_RANGE, payload="d_year"),
    ),
    group_by=("c_city", "s_city", "d_year"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="revenue between two UK cities by year",
)

QUERIES["q3.4"] = SSBQuery(
    name="q3.4",
    flight=3,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_city", "in", _UK_CITIES, encoded=True),), payload="c_city"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_city", "in", _UK_CITIES, encoded=True),), payload="s_city"),
        JoinSpec("date", "lo_orderdate", "d_datekey",
                 (FilterSpec("d_yearmonth", "eq", "Dec1997", encoded=True),), payload="d_year"),
    ),
    group_by=("c_city", "s_city", "d_year"),
    aggregate=AggregateSpec(columns=("lo_revenue",)),
    description="revenue between two UK cities in one month",
)

QUERIES["q4.1"] = SSBQuery(
    name="q4.1",
    flight=4,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_region", "eq", "AMERICA", encoded=True),), payload="c_nation"),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "AMERICA", encoded=True),)),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_mfgr", "in", ("MFGR#1", "MFGR#2"), encoded=True),)),
        JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
    ),
    group_by=("d_year", "c_nation"),
    aggregate=AggregateSpec(columns=("lo_revenue", "lo_supplycost"), combine="sub"),
    description="profit by year and customer nation in the Americas",
)

QUERIES["q4.2"] = SSBQuery(
    name="q4.2",
    flight=4,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_region", "eq", "AMERICA", encoded=True),)),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_region", "eq", "AMERICA", encoded=True),), payload="s_nation"),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_mfgr", "in", ("MFGR#1", "MFGR#2"), encoded=True),), payload="p_category"),
        JoinSpec("date", "lo_orderdate", "d_datekey",
                 (FilterSpec("d_year", "in", (1997, 1998)),), payload="d_year"),
    ),
    group_by=("d_year", "s_nation", "p_category"),
    aggregate=AggregateSpec(columns=("lo_revenue", "lo_supplycost"), combine="sub"),
    description="profit by year, supplier nation, and category for 1997-1998",
)

QUERIES["q4.3"] = SSBQuery(
    name="q4.3",
    flight=4,
    fact_filters=(),
    joins=(
        JoinSpec("customer", "lo_custkey", "c_custkey",
                 (FilterSpec("c_region", "eq", "AMERICA", encoded=True),)),
        JoinSpec("supplier", "lo_suppkey", "s_suppkey",
                 (FilterSpec("s_nation", "eq", "UNITED STATES", encoded=True),), payload="s_city"),
        JoinSpec("part", "lo_partkey", "p_partkey",
                 (FilterSpec("p_category", "eq", "MFGR#14", encoded=True),), payload="p_brand1"),
        JoinSpec("date", "lo_orderdate", "d_datekey",
                 (FilterSpec("d_year", "in", (1997, 1998)),), payload="d_year"),
    ),
    group_by=("d_year", "s_city", "p_brand1"),
    aggregate=AggregateSpec(columns=("lo_revenue", "lo_supplycost"), combine="sub"),
    description="profit by year, supplier city, and brand for one category",
)

#: Queries in the order the paper's figures plot them.
QUERY_ORDER = [
    "q1.1", "q1.2", "q1.3",
    "q2.1", "q2.2", "q2.3",
    "q3.1", "q3.2", "q3.3", "q3.4",
    "q4.1", "q4.2", "q4.3",
]
