"""First-class, decoded query results.

Engines return :class:`~repro.engine.result.QueryResult`, whose ``value``
is the *raw* answer: a scalar, or a dict mapping tuples of group keys --
dictionary codes for encoded columns -- to aggregates.  That shape is right
for engine-to-engine comparison but wrong for humans: q2.1's group key
``(1997, 253)`` means nothing until ``253`` is decoded back through
``part.dictionaries["p_brand1"]`` into ``"MFGR#2239"``.

:class:`ResultSet` is the user-facing result the :class:`~repro.api.Session`
returns.  It keeps the underlying :class:`~repro.engine.result.QueryResult`
(and delegates its timing/traffic surface), names the output columns, and
materializes decoded records: each group-by column is traced to the
dimension join that produced it and run backwards through that table's
dictionary when one exists (numeric payloads like ``d_year`` pass through
unchanged).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterator

import numpy as np

from repro.engine.result import QueryResult
from repro.ssb.queries import SSBQuery
from repro.storage import Database


def measure_label(query: SSBQuery) -> str:
    """The output column name of the query's aggregate, SQL style."""
    agg = query.aggregate
    if agg.op == "count":
        return "count(*)"
    if agg.combine is not None:
        symbol = "*" if agg.combine == "mul" else "-"
        return f"{agg.op}({agg.columns[0]}{symbol}{agg.columns[1]})"
    return f"{agg.op}({agg.columns[0]})"


def _decoders(db: Database, query: SSBQuery) -> list:
    """Per group-by column, the dictionary that decodes it (or ``None``).

    Group-by columns are payloads of dimension joins, so each one is looked
    up in its own dimension's dictionaries; a fact-table group-by column
    (not produced by any join) falls back to the fact table's dictionaries.
    """
    payload_table = {join.payload: join.dimension for join in query.joins if join.payload}
    decoders = []
    for column in query.group_by:
        table_name = payload_table.get(column, query.fact)
        table = db.table(table_name) if table_name in db else None
        decoders.append(table.dictionaries.get(column) if table is not None else None)
    return decoders


class ResultSet:
    """A decoded, tabular view of one query's answer on one engine.

    Construct via :meth:`from_result`.  The set behaves like a small named
    table: ``columns`` names the group-by columns plus the aggregate,
    ``records`` holds one decoded tuple per output row, and
    ``sort_values`` / ``head`` / ``to_dicts`` / ``to_csv`` reshape it.  The
    raw engine answer stays reachable -- ``value``, ``simulated_ms``,
    ``time``, ``traffic``, ``stats`` delegate to the underlying
    :class:`~repro.engine.result.QueryResult` -- so everything that worked
    against the raw result keeps working against a ResultSet.
    """

    def __init__(
        self,
        result: QueryResult,
        spec: SSBQuery,
        columns: tuple[str, ...],
        records: tuple[tuple, ...],
    ) -> None:
        self.result = result
        self.spec = spec
        self.columns = columns
        self.records = records

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, db: Database, spec: SSBQuery, result: QueryResult) -> "ResultSet":
        """Decode a raw engine result against the database it ran on."""
        label = measure_label(spec)
        if not spec.has_group_by:
            records = () if result.value is None else ((result.value,),)
            return cls(result, spec, (label,), records)
        columns = spec.group_by + (label,)
        decoders = _decoders(db, spec)
        decoded = []
        for key, aggregate in result.value.items():
            row = tuple(
                decoder.decode_value(code) if decoder is not None else code
                for code, decoder in zip(key, decoders)
            )
            decoded.append(row + (aggregate,))
        return cls(result, spec, columns, tuple(decoded))

    # ------------------------------------------------------------------
    # Delegation to the underlying engine result.
    @property
    def query(self) -> str:
        return self.result.query

    @property
    def engine(self) -> str:
        return self.result.engine

    @property
    def value(self):
        """The raw (un-decoded) engine answer."""
        return self.result.value

    @property
    def simulated_ms(self) -> float:
        return self.result.simulated_ms

    @property
    def time(self):
        return self.result.time

    @property
    def traffic(self):
        return self.result.traffic

    @property
    def stats(self) -> dict:
        return self.result.stats

    @property
    def rows(self) -> int:
        """Raw result-row count (1 for a scalar aggregate), as before."""
        return self.result.rows

    # ------------------------------------------------------------------
    def _replace_records(self, records: tuple[tuple, ...]) -> "ResultSet":
        return ResultSet(self.result, self.spec, self.columns, records)

    def _column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"result of {self.query!r} has no column {name!r}; available: {list(self.columns)}"
            ) from None

    def sort_values(self, by: "str | list[str] | None" = None, *, ascending: bool = True) -> "ResultSet":
        """A copy ordered by ``by`` (default: all group-by columns in order)."""
        if by is None:
            names = list(self.columns[:-1]) or [self.columns[-1]]
        elif isinstance(by, str):
            names = [by]
        else:
            names = list(by)
        indices = [self._column_index(name) for name in names]
        ordered = sorted(
            self.records,
            key=lambda record: tuple(record[i] for i in indices),
            reverse=not ascending,
        )
        return self._replace_records(tuple(ordered))

    def head(self, n: int = 10) -> "ResultSet":
        """A copy keeping only the first ``n`` records."""
        return self._replace_records(self.records[:n])

    def to_dicts(self) -> list[dict]:
        """Tidy records: one ``{column: decoded value}`` dict per output row."""
        return [dict(zip(self.columns, record)) for record in self.records]

    def to_csv(self, path: "str | None" = None) -> str:
        """The decoded table as CSV text (also written to ``path`` if given)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.records)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    def to_json(self, path: "str | None" = None, *, indent: "int | None" = None) -> str:
        """The decoded table as records-orientation JSON text.

        One object per output row, keyed by :attr:`columns` with decoded
        labels -- the shape ``json.loads`` round-trips straight back into
        :meth:`to_dicts`.  NumPy scalars (aggregates come back as
        ``np.int64``/``np.float64``) are converted to native Python numbers
        so the text is plain JSON.  Also written to ``path`` if given.
        """
        text = json.dumps(self.to_dicts(), default=_json_default, indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.records)

    def __str__(self) -> str:
        cells = [[_format(v) for v in record] for record in self.records]
        widths = [
            max(len(name), *(len(row[i]) for row in cells)) if cells else len(name)
            for i, name in enumerate(self.columns)
        ]
        header = "  ".join(name.ljust(width) for name, width in zip(self.columns, widths))
        rule = "  ".join("-" * width for width in widths)
        lines = [header.rstrip(), rule]
        for row in cells:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        lines.append(f"[{len(self.records)} rows; {self.query} on {self.engine}]")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultSet({self.query!r}, engine={self.engine!r}, columns={list(self.columns)}, "
            f"records={len(self.records)})"
        )


def _json_default(value):
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"ResultSet cell of type {type(value).__name__} is not JSON serializable")


def _format(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}" if value != int(value) else f"{value:.1f}"
    return str(value)
