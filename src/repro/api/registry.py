"""Engine protocol and the string-keyed engine registry.

Every execution engine in :mod:`repro.engine` -- and any user-defined one --
conforms to the :class:`Engine` protocol: a ``name`` attribute and a
``run(query) -> QueryResult`` method.  The registry maps short string keys
(``"cpu"``, ``"gpu"``, ``"coprocessor"``, ...) to engine factories so that
:class:`repro.api.Session` can construct engines by name, and the
:func:`register_engine` decorator lets new engines plug themselves in::

    @register_engine("my-engine", aliases=("mine",))
    class MyEngine:
        name = "my-engine"

        def __init__(self, db):
            self.db = db

        def run(self, query):
            ...

This module deliberately imports nothing from :mod:`repro.engine`: the
engine modules themselves import :func:`register_engine` to self-register,
and a module-level import in the other direction would be circular.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.result import QueryResult
    from repro.ssb.queries import SSBQuery


@runtime_checkable
class Engine(Protocol):
    """What :class:`~repro.api.session.Session` requires of an engine."""

    name: str

    def run(self, query: "SSBQuery") -> "QueryResult":
        """Execute ``query`` and return its answer plus simulated cost."""
        ...


#: An engine factory: called as ``factory(db, **kwargs)``.
EngineFactory = Callable[..., Engine]


class EngineRegistry:
    """A string-keyed catalogue of engine factories.

    Keys are canonical short names; aliases (typically the engine's
    descriptive ``name`` attribute, e.g. ``"standalone-cpu"``) resolve to the
    same factory.
    """

    def __init__(self) -> None:
        self._factories: dict[str, EngineFactory] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self, key: str, factory: EngineFactory | None = None, *, aliases: tuple[str, ...] = ()
    ):
        """Register ``factory`` under ``key`` (usable as a decorator).

        Re-registering the same factory (same module and qualified name, as
        happens when a module is reloaded in a REPL) re-binds idempotently;
        registering a *different* factory under a taken name raises.
        """

        def apply(f: EngineFactory) -> EngineFactory:
            for name in (key, *aliases):
                existing_key = name if name in self._factories else self._aliases.get(name)
                if existing_key is None:
                    continue
                existing = self._factories[existing_key]
                # Lambdas all share the qualname "<lambda>", so for them only
                # the identical object counts as a re-registration.
                qualname = getattr(f, "__qualname__", "<lambda>")
                same_identity = existing_key == key and (
                    existing is f
                    or (
                        not qualname.endswith("<lambda>")
                        and getattr(existing, "__module__", None) == getattr(f, "__module__", None)
                        and getattr(existing, "__qualname__", None) == qualname
                    )
                )
                if not same_identity:
                    raise ValueError(f"engine name {name!r} is already registered")
            self._factories[key] = f
            for alias in aliases:
                self._aliases[alias] = key
            return f

        if factory is None:
            return apply
        return apply(factory)

    def resolve(self, name: str) -> str:
        """Canonical key for ``name`` (key or alias), with a clear error."""
        if name in self._factories:
            return name
        if name in self._aliases:
            return self._aliases[name]
        raise KeyError(f"unknown engine {name!r}; registered engines: {self.names()}")

    def create(self, name: str, db, **kwargs) -> Engine:
        """Instantiate the engine registered under ``name`` for ``db``."""
        engine = self._factories[self.resolve(name)](db, **kwargs)
        if not isinstance(engine, Engine):
            raise TypeError(
                f"factory for {name!r} produced {type(engine).__name__}, which does not "
                f"conform to the Engine protocol (name attribute + run method)"
            )
        return engine

    def names(self) -> list[str]:
        """Sorted canonical engine keys."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories or name in self._aliases

    def items(self):
        return self._factories.items()


#: The process-wide default registry the built-in engines register into.
DEFAULT_REGISTRY = EngineRegistry()


def register_engine(
    key: str, *, aliases: tuple[str, ...] = (), registry: EngineRegistry | None = None
):
    """Class decorator registering an engine factory under ``key``."""
    return (registry if registry is not None else DEFAULT_REGISTRY).register(key, aliases=aliases)


def available_engines(registry: EngineRegistry | None = None) -> list[str]:
    """Canonical keys of every registered engine (built-ins included)."""
    import repro.engine  # noqa: F401  (ensures the built-ins have registered)

    return (registry if registry is not None else DEFAULT_REGISTRY).names()
