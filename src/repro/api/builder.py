"""A fluent, validating builder for star-schema queries.

The 13 canonical SSB queries in :mod:`repro.ssb.queries` are hand-written
:class:`~repro.ssb.queries.SSBQuery` dataclasses.  :class:`QueryBuilder`
lets users compose *arbitrary* star-schema queries -- any combination of
fact predicates, filtered dimension joins, group-bys, and ``sum`` /
``count`` / ``min`` / ``max`` / ``avg`` aggregates -- and emits the same
declarative spec, so every engine runs them unchanged::

    from repro import Q, Session, col, generate_ssb

    db = generate_ssb(scale_factor=0.01, seed=7)
    q = (
        Q("lineorder")
        .where(col("lo_discount").between(1, 3) | (col("lo_quantity") < 25))
        .join("date", on=("lo_orderdate", "d_datekey"),
              filters=[("d_year", "eq", 1993)], payload="d_year")
        .group_by("d_year")
        .agg("sum", "lo_extendedprice", "lo_discount", combine="mul")
    )
    result = Session(db).run(q, engine="gpu")

Predicates come in two flavours.  :meth:`QueryBuilder.filter` adds one
``(column, op, value)`` comparison -- successive calls AND together, the
seed behaviour.  :meth:`QueryBuilder.where` accepts full boolean
expression trees built from :func:`col` references with the ``&``, ``|``,
and ``~`` operators (:class:`~repro.ssb.queries.And` /
:class:`~repro.ssb.queries.Or` / :class:`~repro.ssb.queries.Not` nodes),
so disjunctions and negations reach every engine; multiple ``where`` calls
also AND together.

Builders are immutable: every method returns a new builder, so a common
prefix can be shared between query variants.  Structural validation (known
operators, join/aggregate arity, duplicate joins) happens eagerly at each
call; schema validation (tables, columns, dictionary encodings) happens in
:meth:`QueryBuilder.build` against a :class:`~repro.storage.Database`.
"""

from __future__ import annotations

import copy
from typing import Iterable, Sequence

from repro.ssb.queries import (
    AGGREGATE_OPS,
    COMBINE_OPS,
    FILTER_OPS,
    AggregateSpec,
    And,
    FilterSpec,
    JoinSpec,
    Leaf,
    Pred,
    SSBQuery,
)
from repro.storage import Database, Table


class QueryValidationError(ValueError):
    """A query under construction is malformed or inconsistent with the schema."""


def _as_filter_spec(spec) -> FilterSpec:
    """Normalize a ``FilterSpec`` or a ``(column, op, value[, encoded])`` tuple."""
    if isinstance(spec, FilterSpec):
        out = spec
    elif isinstance(spec, Sequence) and not isinstance(spec, str) and len(spec) in (3, 4):
        out = FilterSpec(*spec)
    else:
        raise QueryValidationError(
            f"filter must be a FilterSpec or a (column, op, value[, encoded]) tuple, got {spec!r}"
        )
    # Sets have no order, so (low, high) would come out in hash order.
    if out.op == "between" and isinstance(out.value, (set, frozenset)):
        raise QueryValidationError(
            f"'between' on {out.column!r} needs an ordered (low, high) pair, got a set"
        )
    # Materialize multi-value operands into tuples: a generator/iterator would
    # be consumed by validation and evaluate as empty at execution time.
    if (
        out.op in ("between", "in")
        and isinstance(out.value, Iterable)
        and not isinstance(out.value, (str, tuple))
    ):
        out = FilterSpec(out.column, out.op, tuple(out.value), out.encoded)
    _check_filter_shape(out)
    return out


def _check_filter_shape(spec: FilterSpec) -> None:
    if spec.op not in FILTER_OPS:
        raise QueryValidationError(
            f"unknown filter operator {spec.op!r} on column {spec.column!r}; "
            f"expected one of {FILTER_OPS}"
        )
    if spec.value is None:
        raise QueryValidationError(
            f"filter {spec.op!r} on {spec.column!r} needs a comparison value, got None"
        )
    operands = spec.value if isinstance(spec.value, (tuple, list)) else (spec.value,)
    if any(isinstance(v, (ColumnRef, Pred, FilterSpec)) for v in operands):
        # NumPy's reflected comparison against such an object would not
        # produce a row mask, silently selecting every row.
        raise QueryValidationError(
            f"filter {spec.op!r} on {spec.column!r} compares against {spec.value!r}; "
            f"column-to-column predicates are not supported -- compare against a constant"
        )
    if (
        spec.op not in ("between", "in")
        and isinstance(spec.value, Iterable)
        and not isinstance(spec.value, str)
    ):
        raise QueryValidationError(
            f"filter {spec.op!r} on {spec.column!r} needs a scalar comparison value, "
            f"got {spec.value!r}"
        )
    if spec.op == "between":
        if not (isinstance(spec.value, Sequence) and not isinstance(spec.value, str) and len(spec.value) == 2):
            raise QueryValidationError(
                f"'between' on {spec.column!r} needs a (low, high) pair, got {spec.value!r}"
            )
    if spec.op == "in":
        if isinstance(spec.value, str) or not isinstance(spec.value, Iterable):
            raise QueryValidationError(
                f"'in' on {spec.column!r} needs an iterable of values, got {spec.value!r}"
            )


def _filter_values(spec: FilterSpec) -> tuple:
    if spec.op in ("between", "in"):
        return tuple(spec.value)
    return (spec.value,)


class ColumnRef:
    """A column reference that turns comparisons into predicate leaves.

    ``col("lo_quantity") < 25`` yields a :class:`~repro.ssb.queries.Leaf`;
    leaves compose into trees with ``&``, ``|``, and ``~``.  Note that the
    bitwise operators bind tighter than comparisons, so comparison leaves
    need parentheses inside a composition: ``(col("a") < 1) | (col("b") > 2)``.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise QueryValidationError(f"col() needs a non-empty column name, got {name!r}")
        self.name = name

    def _leaf(self, op: str, value, encoded: bool = False) -> Leaf:
        spec = _as_filter_spec(FilterSpec(self.name, op, value, encoded))
        return Leaf(spec)

    # Comparison operators.  __eq__/__ne__ intentionally build predicates
    # instead of comparing references, mirroring NumPy/pandas expressions;
    # ColumnRef is therefore unhashable.
    __hash__ = None  # type: ignore[assignment]

    def __eq__(self, value) -> Leaf:  # type: ignore[override]
        return self._leaf("eq", value)

    def __ne__(self, value) -> Leaf:  # type: ignore[override]
        return self._leaf("ne", value)

    def __lt__(self, value) -> Leaf:
        return self._leaf("lt", value)

    def __le__(self, value) -> Leaf:
        return self._leaf("le", value)

    def __gt__(self, value) -> Leaf:
        return self._leaf("gt", value)

    def __ge__(self, value) -> Leaf:
        return self._leaf("ge", value)

    # Named forms, for readers who prefer words over operators.
    def eq(self, value) -> Leaf:
        return self._leaf("eq", value)

    def ne(self, value) -> Leaf:
        return self._leaf("ne", value)

    def between(self, low, high) -> Leaf:
        """Inclusive two-sided range: ``low <= column <= high``."""
        return self._leaf("between", (low, high))

    def isin(self, *values) -> Leaf:
        """Membership in an explicit value set."""
        if len(values) == 1 and isinstance(values[0], Iterable) and not isinstance(values[0], str):
            values = tuple(values[0])
        return self._leaf("in", values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"col({self.name!r})"


def col(name: str) -> ColumnRef:
    """A fact- or dimension-column reference for the predicate DSL."""
    return ColumnRef(name)


def _as_pred(obj) -> Pred:
    """Normalize builder predicate input into a structurally valid tree.

    Accepts a :class:`~repro.ssb.queries.Pred` tree (its leaves are
    re-validated: trees can be hand-assembled from raw specs), a bare
    :class:`~repro.ssb.queries.FilterSpec`, or a ``(column, op, value)``
    tuple.  A bare :class:`ColumnRef` is rejected with a pointer at the
    missing comparison.
    """
    if isinstance(obj, ColumnRef):
        raise QueryValidationError(
            f"{obj!r} is a bare column reference; compare it to something "
            f"(e.g. col({obj.name!r}) < 10) to make a predicate"
        )
    if isinstance(obj, Pred):
        return obj.map_leaves(_as_filter_spec)
    return Leaf(_as_filter_spec(obj))


class QueryBuilder:
    """Fluent builder emitting :class:`~repro.ssb.queries.SSBQuery` specs."""

    def __init__(self, fact: str = "lineorder", *, db: Database | None = None) -> None:
        self._fact = fact
        self._db = db
        self._name: str | None = None
        self._flight = 0
        self._description = ""
        #: Top-level AND terms of the fact predicate, each an arbitrary tree.
        self._filters: tuple[Pred, ...] = ()
        self._joins: tuple[JoinSpec, ...] = ()
        self._group_by: tuple[str, ...] = ()
        self._aggregate: AggregateSpec | None = None

    # ------------------------------------------------------------------
    def _clone(self) -> "QueryBuilder":
        return copy.copy(self)

    # ------------------------------------------------------------------
    def filter(self, column: str, op: str, value, *, encoded: bool = False) -> "QueryBuilder":
        """Add one predicate on a fact-table column (successive calls AND)."""
        return self.where(FilterSpec(column, op, value, encoded))

    def where(self, *predicates) -> "QueryBuilder":
        """AND boolean predicate trees onto the fact-table restriction.

        Each argument is a :class:`~repro.ssb.queries.Pred` tree (built from
        :func:`col` comparisons with ``&``/``|``/``~``), a bare
        :class:`~repro.ssb.queries.FilterSpec`, or a ``(column, op, value)``
        tuple.  Arguments -- and successive ``where``/``filter`` calls --
        combine conjunctively; disjunction and negation live *inside* a
        tree::

            Q().where(col("lo_discount").between(1, 3) | (col("lo_quantity") < 25))
            Q().where(~col("s_region").eq("ASIA"))
        """
        if not predicates:
            raise QueryValidationError("where() needs at least one predicate")
        out = self._clone()
        out._filters = self._filters + tuple(_as_pred(p) for p in predicates)
        return out

    def join(
        self,
        dimension: str,
        *,
        on: tuple[str, str],
        filters: "Iterable | Pred | FilterSpec" = (),
        payload: str | None = None,
        source: str | None = None,
    ) -> "QueryBuilder":
        """Join the fact table (or an upstream dimension) to ``dimension``.

        ``on`` is the ``(source_key, dimension_key)`` pair; ``filters`` are
        predicates on the dimension's own columns -- a list of ``(column,
        op, value)`` tuples (ANDed) or one boolean tree; ``payload`` names
        the dimension column carried into the group-by (if any).

        ``source`` declares a snowflake chain: it names an already-joined
        dimension the probe-side key lives on (default: the fact table).
        Such chains are carried through the spec and the logical plan, but
        lowering them to physical operators is not implemented yet --
        executing one raises ``NotImplementedError``.
        """
        if isinstance(on, str) or not (isinstance(on, Sequence) and len(on) == 2):
            raise QueryValidationError(
                f"join on {dimension!r} needs on=(fact_key, dimension_key), got {on!r}"
            )
        if source is not None and source != self._fact:
            joined = [join.dimension for join in self._joins]
            if source not in joined:
                raise QueryValidationError(
                    f"join with {dimension!r} hangs off {source!r}, which is neither the "
                    f"fact table {self._fact!r} nor an already-joined dimension {joined}"
                )
        # Role-playing dimensions (same table via different fact keys) are
        # allowed; only an exact repeat of the same edge is a mistake.
        if any(join.dimension == dimension and join.fact_key == on[0] for join in self._joins):
            raise QueryValidationError(
                f"duplicate join with dimension {dimension!r} on fact key {on[0]!r}"
            )
        if payload is not None and any(join.payload == payload for join in self._joins):
            raise QueryValidationError(
                f"payload {payload!r} is already produced by another join; "
                f"payload names must be unique"
            )
        if isinstance(filters, (Pred, FilterSpec)):
            join_filters: "tuple[FilterSpec, ...] | Pred" = _as_pred(filters)
        else:
            join_filters = tuple(_as_filter_spec(f) for f in filters)
        spec = JoinSpec(
            dimension=dimension,
            fact_key=on[0],
            dimension_key=on[1],
            filters=join_filters,
            payload=payload,
            source=None if source == self._fact else source,
        )
        out = self._clone()
        out._joins = self._joins + (spec,)
        return out

    def group_by(self, *columns: str) -> "QueryBuilder":
        """Group the aggregate by dimension payload columns."""
        merged = self._group_by + columns
        duplicates = {c for c in merged if merged.count(c) > 1}
        if duplicates:
            raise QueryValidationError(f"duplicate group-by column(s): {sorted(duplicates)}")
        out = self._clone()
        out._group_by = merged
        return out

    def agg(self, op: str, *columns: str, combine: str | None = None) -> "QueryBuilder":
        """Set the aggregate: ``op`` over a one- or two-column expression.

        ``count`` takes no measure columns; the other ops take one column,
        or two with ``combine`` (``"mul"`` or ``"sub"``).
        """
        if op not in AGGREGATE_OPS:
            raise QueryValidationError(
                f"unknown aggregate op {op!r}; expected one of {AGGREGATE_OPS}"
            )
        if op == "count":
            if columns or combine is not None:
                raise QueryValidationError("'count' counts surviving rows: no columns or combine")
        else:
            if len(columns) not in (1, 2):
                raise QueryValidationError(f"aggregate {op!r} takes 1 or 2 columns, got {len(columns)}")
            if len(columns) == 2 and combine not in COMBINE_OPS:
                raise QueryValidationError(
                    f"two-column aggregates need combine= one of {COMBINE_OPS}, got {combine!r}"
                )
            if len(columns) == 1 and combine is not None:
                raise QueryValidationError("combine= only applies to two-column aggregates")
        out = self._clone()
        out._aggregate = AggregateSpec(columns=columns, combine=combine, op=op)
        return out

    def named(
        self, name: str, *, flight: int | None = None, description: str | None = None
    ) -> "QueryBuilder":
        """Set the query's name (and optionally flight / description)."""
        out = self._clone()
        out._name = name
        if flight is not None:
            out._flight = flight
        if description is not None:
            out._description = description
        return out

    # ------------------------------------------------------------------
    def build(self, db: Database | None = None) -> SSBQuery:
        """Validate and emit the immutable query spec.

        When a :class:`~repro.storage.Database` is available (passed here or
        at construction) every table and column reference is checked against
        it, and string predicates on dictionary-encoded columns are marked
        ``encoded`` automatically.
        """
        if self._aggregate is None:
            raise QueryValidationError(
                "query has no aggregate; call .agg(...) before .build()"
            )

        payloads = [join.payload for join in self._joins if join.payload is not None]
        missing_groups = [c for c in self._group_by if c not in payloads]
        if missing_groups:
            raise QueryValidationError(
                f"group-by column(s) {missing_groups} are not payloads of any join; "
                f"available payloads: {payloads}"
            )

        database = db if db is not None else self._db
        conjuncts = self._filters
        joins = self._joins
        if database is not None:
            if self._fact not in database:
                raise QueryValidationError(
                    f"unknown fact table {self._fact!r}; database has {sorted(database.tables)}"
                )
            fact = database.table(self._fact)
            conjuncts = tuple(self._validated_pred(fact, p) for p in conjuncts)
            joins = tuple(self._validated_join(database, fact, join) for join in self._joins)
            for column in self._aggregate.columns:
                self._require_column(fact, column, "aggregate measure")
                if column in fact.dictionaries:
                    raise QueryValidationError(
                        f"aggregate measure {column!r} is a dictionary-encoded string "
                        f"column; aggregating its codes is meaningless"
                    )

        return SSBQuery(
            name=self._name or "custom",
            flight=self._flight,
            fact_filters=self._emit_fact_filters(conjuncts),
            joins=joins,
            group_by=self._group_by,
            aggregate=self._aggregate,
            description=self._description,
            fact=self._fact,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _emit_fact_filters(terms: "tuple[Pred, ...]") -> "tuple[FilterSpec, ...] | Pred":
        """Emit the spec's fact restriction in its most interoperable shape.

        A pure conjunction of single-column comparisons comes out as the
        legacy ``tuple[FilterSpec, ...]``, so specs round-trip unchanged
        through code that predates predicate trees; anything with an OR/NOT
        somewhere stays a tree (collapsed to the lone term when possible).
        """
        if all(isinstance(term, Leaf) for term in terms):
            return tuple(term.spec for term in terms)
        if len(terms) == 1:
            return terms[0]
        return And(*terms)

    @staticmethod
    def _require_column(table: Table, column: str, role: str) -> None:
        if column not in table:
            raise QueryValidationError(
                f"{role} column {column!r} does not exist in table {table.name!r}; "
                f"available: {sorted(table.columns)}"
            )

    def _validated_pred(self, table: Table, pred: Pred) -> Pred:
        """Schema-validate every leaf of a tree (columns, dictionary rewrites)."""
        return pred.map_leaves(lambda spec: self._validated_filter(table, spec))

    def _validated_filter(self, table: Table, spec: FilterSpec) -> FilterSpec:
        self._require_column(table, spec.column, "filter")
        has_dictionary = spec.column in table.dictionaries
        if spec.encoded and not has_dictionary:
            raise QueryValidationError(
                f"filter on {spec.column!r} is marked encoded but table {table.name!r} "
                f"has no dictionary for it"
            )
        if not spec.encoded and has_dictionary:
            if any(isinstance(v, str) for v in _filter_values(spec)):
                spec = FilterSpec(spec.column, spec.op, spec.value, encoded=True)
            else:
                raise QueryValidationError(
                    f"column {spec.column!r} of table {table.name!r} is dictionary encoded; "
                    f"filter it with its string values (got {spec.value!r}, which would "
                    f"compare raw dictionary codes)"
                )
        if spec.encoded:
            # Execution stringifies every constant before the dictionary
            # lookup, so validate non-string values the same way rather than
            # letting them surface later as a bare KeyError.
            encoder = table.dictionaries[spec.column]
            unknown = [v for v in _filter_values(spec) if str(v) not in encoder]
            if unknown:
                raise QueryValidationError(
                    f"value(s) {unknown} are not in the dictionary of "
                    f"{table.name!r}.{spec.column!r}"
                )
        return spec

    def _validated_join(self, database: Database, fact: Table, join: JoinSpec) -> JoinSpec:
        if join.dimension not in database:
            raise QueryValidationError(
                f"unknown dimension table {join.dimension!r}; database has {sorted(database.tables)}"
            )
        dimension = database.table(join.dimension)
        if join.source is None:
            source = fact
        else:
            if join.source not in database:
                raise QueryValidationError(
                    f"unknown join source table {join.source!r}; database has "
                    f"{sorted(database.tables)}"
                )
            source = database.table(join.source)
        self._require_column(source, join.fact_key, "join source-key")
        self._require_column(dimension, join.dimension_key, "join dimension-key")
        if join.payload is not None:
            self._require_column(dimension, join.payload, "join payload")
        if isinstance(join.filters, Pred):
            filters: "tuple[FilterSpec, ...] | Pred" = self._validated_pred(dimension, join.filters)
        else:
            filters = tuple(self._validated_filter(dimension, f) for f in join.filters)
        if filters != join.filters:
            join = JoinSpec(
                join.dimension, join.fact_key, join.dimension_key, filters, join.payload, join.source
            )
        return join

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryBuilder(fact={self._fact!r}, filters={len(self._filters)}, "
            f"joins={[j.dimension for j in self._joins]}, group_by={self._group_by}, "
            f"agg={self._aggregate})"
        )


def Q(fact: str = "lineorder", *, db: Database | None = None) -> QueryBuilder:
    """Start a fluent query over ``fact`` (optionally bound to a database)."""
    return QueryBuilder(fact, db=db)
