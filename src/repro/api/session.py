"""The Session facade: one entry point for running queries on any engine.

A :class:`Session` binds a :class:`~repro.storage.Database` to the engine
registry and exposes a uniform execution surface::

    session = Session(db)
    result = session.run(QUERIES["q2.1"], engine="gpu")
    results = session.run_many(QUERIES.values(), engine="cpu")
    table = session.compare(my_query, engines=["cpu", "gpu", "coprocessor"])
    print(table)

Queries can be :class:`~repro.ssb.queries.SSBQuery` specs or (unbuilt)
:class:`~repro.api.builder.QueryBuilder` instances -- builders are built
(and schema-validated) against the session's database automatically.  With
``optimize=True`` the query's joins are rearranged into the cheapest order
by :class:`~repro.engine.planner.JoinOrderPlanner` before execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.api.builder import QueryBuilder
from repro.api.registry import DEFAULT_REGISTRY, Engine, EngineRegistry
from repro.engine.planner import JoinOrderPlanner
from repro.engine.result import QueryResult
from repro.ssb.queries import SSBQuery
from repro.storage import Database

#: The engines Session.compare uses when none are named: the paper's three
#: execution strategies (Figure 3's comparison).
DEFAULT_COMPARE_ENGINES = ("cpu", "gpu", "coprocessor")


@dataclass(frozen=True)
class ComparisonRow:
    """One engine's line in a comparison table."""

    engine: str
    simulated_ms: float
    rows: int
    agrees: bool
    speedup_vs_slowest: float


class Comparison:
    """Tidy per-engine results of one query run on several engines."""

    def __init__(self, query: SSBQuery, results: dict[str, QueryResult]) -> None:
        self.query = query
        self.results = results

    @property
    def consistent(self) -> bool:
        """Whether every engine produced the identical answer."""
        values = [result.value for result in self.results.values()]
        return all(value == values[0] for value in values)

    @property
    def fastest(self) -> str:
        """Registry key of the engine with the lowest simulated time."""
        return min(self.results, key=lambda key: self.results[key].simulated_ms)

    def rows(self) -> list[ComparisonRow]:
        """Per-engine summary rows, fastest first."""
        reference = next(iter(self.results.values())).value
        slowest_ms = max(result.simulated_ms for result in self.results.values())
        rows = [
            ComparisonRow(
                engine=key,
                simulated_ms=result.simulated_ms,
                rows=result.rows,
                agrees=result.value == reference,
                speedup_vs_slowest=(
                    slowest_ms / result.simulated_ms if result.simulated_ms else float("inf")
                ),
            )
            for key, result in self.results.items()
        ]
        return sorted(rows, key=lambda row: row.simulated_ms)

    def as_dicts(self) -> list[dict]:
        """The comparison as tidy records (one dict per engine)."""
        return [
            {
                "query": self.query.name,
                "engine": row.engine,
                "simulated_ms": row.simulated_ms,
                "rows": row.rows,
                "agrees": row.agrees,
                "speedup_vs_slowest": row.speedup_vs_slowest,
            }
            for row in self.rows()
        ]

    def __str__(self) -> str:
        lines = [f"query {self.query.name}: {len(self.results)} engines, consistent={self.consistent}"]
        lines.append(f"  {'engine':<16} {'simulated_ms':>12} {'rows':>8} {'agrees':>7} {'speedup':>8}")
        for row in self.rows():
            lines.append(
                f"  {row.engine:<16} {row.simulated_ms:>12.4f} {row.rows:>8} "
                f"{str(row.agrees):>7} {row.speedup_vs_slowest:>7.1f}x"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Comparison({self.query.name!r}, engines={sorted(self.results)})"


class Session:
    """A database bound to the engine registry and the join-order planner."""

    def __init__(
        self,
        db: Database,
        *,
        registry: EngineRegistry | None = None,
        planner: JoinOrderPlanner | None = None,
    ) -> None:
        self.db = db
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._planner = planner
        self._engines: dict[str, Engine] = {}

    # ------------------------------------------------------------------
    @property
    def planner(self) -> JoinOrderPlanner:
        """The (lazily constructed) join-order planner for this database."""
        if self._planner is None:
            self._planner = JoinOrderPlanner(self.db)
        return self._planner

    def engine(self, name: str) -> Engine:
        """The engine registered under ``name``, instantiated once per session."""
        key = self.registry.resolve(name)
        if key not in self._engines:
            self._engines[key] = self.registry.create(key, self.db)
        return self._engines[key]

    def prepare(self, query: SSBQuery | QueryBuilder, *, optimize: bool = False) -> SSBQuery:
        """Resolve a builder into a validated spec, optionally reordering joins.

        ``optimize=True`` reorders the joins cost-based when the planner can
        identify them uniquely; a query joining the same dimension twice (a
        role-playing dimension) executes in its written order instead.
        """
        if isinstance(query, QueryBuilder):
            query = query.build(self.db)
        if not isinstance(query, SSBQuery):
            raise TypeError(f"expected an SSBQuery or QueryBuilder, got {type(query).__name__}")
        dimensions = {join.dimension for join in query.joins}
        if optimize and len(query.joins) > 1 and len(dimensions) == len(query.joins):
            query = self.planner.reorder(query)
        return query

    # ------------------------------------------------------------------
    def run(
        self, query: SSBQuery | QueryBuilder, engine: str = "cpu", *, optimize: bool = False
    ) -> QueryResult:
        """Execute one query on one engine."""
        return self.engine(engine).run(self.prepare(query, optimize=optimize))

    def run_many(
        self,
        queries: Iterable[SSBQuery | QueryBuilder],
        engine: str = "cpu",
        *,
        optimize: bool = False,
    ) -> list[QueryResult]:
        """Execute a batch of queries on one engine."""
        chosen = self.engine(engine)
        return [chosen.run(self.prepare(query, optimize=optimize)) for query in queries]

    def compare(
        self,
        query: SSBQuery | QueryBuilder,
        engines: Sequence[str] | None = None,
        *,
        optimize: bool = False,
    ) -> Comparison:
        """Run one query on several engines and tabulate the results."""
        if isinstance(engines, str):
            engines = (engines,)
        names = tuple(engines) if engines is not None else DEFAULT_COMPARE_ENGINES
        if not names:
            raise ValueError("compare needs at least one engine")
        resolved = [self.registry.resolve(name) for name in names]
        duplicates = sorted({key for key in resolved if resolved.count(key) > 1})
        if duplicates:
            raise ValueError(f"engine(s) listed more than once in compare: {duplicates}")
        prepared = self.prepare(query, optimize=optimize)
        results = {key: self.engine(key).run(prepared) for key in resolved}
        return Comparison(prepared, results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(db={self.db.name!r}, engines={self.registry.names()})"
