"""The Session facade: one entry point for running queries on any engine.

A :class:`Session` binds a :class:`~repro.storage.Database` to the engine
registry and exposes a uniform execution surface::

    session = Session(db)
    result = session.run(QUERIES["q2.1"], engine="gpu")
    print(result)                       # decoded d_year / p_brand1 labels
    results = session.run_many(QUERIES.values(), engine="cpu")
    table = session.compare(my_query, engines=["cpu", "gpu", "coprocessor"])
    print(table)

Queries can be :class:`~repro.ssb.queries.SSBQuery` specs or (unbuilt)
:class:`~repro.api.builder.QueryBuilder` instances -- builders are built
(and schema-validated) against the session's database automatically.  With
``optimize=True`` the query's joins are rearranged into the cheapest order
by :class:`~repro.engine.planner.JoinOrderPlanner` before execution.

Results come back as :class:`~repro.api.resultset.ResultSet`: the raw
engine answer plus named, dictionary-decoded output columns.

Sessions memoize the shared functional execution pass (the answer and
profile of :func:`~repro.engine.plan.execute_query`) per query, so
``compare`` across N engines executes the answer once and replays it N-1
times; pass ``cache=False`` (to the constructor or per call) to opt out,
and read :meth:`Session.cache_info` for hit/miss counters.

``run_many(..., share_builds=True)`` additionally runs the batch through
the staged physical pipeline's shared-build path: the batch's
:class:`~repro.engine.physical.BuildLookup` operators are topologically
grouped, each distinct dimension lookup is constructed exactly once, and
every query's probes consume the shared artifacts.
:meth:`Session.cache_info('builds') <Session.cache_info>` reports the
shared-build hit/miss counters.

``run_many(..., workers=N)`` executes the batch morsel-parallel: each
query is a morsel pulled by a thread pool (sized to the hardware), with
the session's lock-protected caches shared across workers -- combined
with ``share_builds=True``, racing builds are arbitrated exactly-once by
the :class:`~repro.engine.cache.BuildArtifactCache`.
"""

from __future__ import annotations

import math
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.api.builder import QueryBuilder
from repro.api.registry import DEFAULT_REGISTRY, Engine, EngineRegistry
from repro.api.resultset import ResultSet
from repro.engine.cache import (
    BuildArtifactCache,
    CacheInfo,
    CounterSnapshot,
    ExecutionCache,
    ZoneInfo,
    ZoneMapCache,
    activate,
    activate_builds,
    activate_shards,
    activate_zones,
    snapshot_counters,
)
from repro.engine.physical import lower_query, staged_builds
from repro.engine.planner import JoinOrderPlanner
from repro.faults import FaultPlan, ResiliencePolicy, activate_faults
from repro.ssb.queries import SSBQuery
from repro.storage import Database
from repro.storage.wal import DurabilityConfig, DurabilityManager, RecoveryReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ingest imports api)
    import numpy as np

    from repro.ingest.standing import StandingQuery

#: The engines Session.compare uses when none are named: the paper's three
#: execution strategies (Figure 3's comparison).
DEFAULT_COMPARE_ENGINES = ("cpu", "gpu", "coprocessor")

#: Relative tolerance for cross-engine answer agreement.  Engines share one
#: functional executor today, but numerically independent implementations
#: (or replayed caches) must not report disagreement over float rounding in
#: ``avg``-style aggregates.
AGREEMENT_REL_TOL = 1e-9
AGREEMENT_ABS_TOL = 1e-12


def _scalars_agree(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=AGREEMENT_REL_TOL, abs_tol=AGREEMENT_ABS_TOL)
    return a == b


def values_agree(a, b) -> bool:
    """Whether two engine answers match, within float tolerance per group."""
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_scalars_agree(a[key], b[key]) for key in a)
    return _scalars_agree(a, b)


@dataclass(frozen=True)
class ComparisonRow:
    """One engine's line in a comparison table."""

    engine: str
    simulated_ms: float
    rows: int
    agrees: bool
    speedup_vs_slowest: float


class Comparison:
    """Tidy per-engine results of one query run on several engines."""

    def __init__(self, query: SSBQuery, results: "dict[str, ResultSet]") -> None:
        self.query = query
        self.results = results

    @property
    def consistent(self) -> bool:
        """Whether every engine produced the same answer (float-tolerant)."""
        values = [result.value for result in self.results.values()]
        return all(values_agree(value, values[0]) for value in values)

    @property
    def fastest(self) -> str:
        """Registry key of the engine with the lowest simulated time."""
        return min(self.results, key=lambda key: self.results[key].simulated_ms)

    @property
    def answer(self) -> ResultSet:
        """The first engine's (decoded) result set, as the reference answer."""
        return next(iter(self.results.values()))

    def rows(self) -> list[ComparisonRow]:
        """Per-engine summary rows, fastest first."""
        reference = next(iter(self.results.values())).value
        slowest_ms = max(result.simulated_ms for result in self.results.values())
        rows = [
            ComparisonRow(
                engine=key,
                simulated_ms=result.simulated_ms,
                rows=result.rows,
                agrees=values_agree(result.value, reference),
                speedup_vs_slowest=(
                    slowest_ms / result.simulated_ms if result.simulated_ms else float("inf")
                ),
            )
            for key, result in self.results.items()
        ]
        return sorted(rows, key=lambda row: row.simulated_ms)

    def as_dicts(self) -> list[dict]:
        """The comparison as tidy records (one dict per engine)."""
        return [
            {
                "query": self.query.name,
                "engine": row.engine,
                "simulated_ms": row.simulated_ms,
                "rows": row.rows,
                "agrees": row.agrees,
                "speedup_vs_slowest": row.speedup_vs_slowest,
            }
            for row in self.rows()
        ]

    def __str__(self) -> str:
        lines = [f"query {self.query.name}: {len(self.results)} engines, consistent={self.consistent}"]
        lines.append(f"  {'engine':<16} {'simulated_ms':>12} {'rows':>8} {'agrees':>7} {'speedup':>8}")
        for row in self.rows():
            lines.append(
                f"  {row.engine:<16} {row.simulated_ms:>12.4f} {row.rows:>8} "
                f"{str(row.agrees):>7} {row.speedup_vs_slowest:>7.1f}x"
            )
        answer = self.answer
        if isinstance(answer, ResultSet) and len(answer):
            preview = answer.sort_values().head(5)
            lines.append(f"  answer ({min(len(answer), 5)} of {len(answer)} rows, decoded):")
            lines.extend("    " + line for line in str(preview).splitlines())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Comparison({self.query.name!r}, engines={sorted(self.results)})"


class Session:
    """A database bound to the engine registry and the join-order planner."""

    def __init__(
        self,
        db: Database,
        *,
        registry: EngineRegistry | None = None,
        planner: JoinOrderPlanner | None = None,
        cache: bool = True,
        cache_size: int = 64,
        build_cache_size: int = 128,
        zones: bool = True,
        zone_size: int | None = None,
        shards: int | None = None,
        shard_start_method: str | None = None,
        resilience: ResiliencePolicy | None = None,
        faults: FaultPlan | None = None,
        durability: DurabilityConfig | None = None,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.db = db
        #: The failure-handling knobs every layer consults: the shard
        #: executor takes its retry budget and task timeout from here, and
        #: :class:`~repro.service.QueryService` defaults its retry/breaker
        #: ladder to the same policy.
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        #: Deterministic fault injection (chaos testing): when set, every
        #: execution activates this plan so the instrumented sites
        #: (shard tasks, shm attach/export) fire on schedule.  ``None`` --
        #: the production default -- keeps every site a no-op.
        self.faults = faults
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._planner = planner
        self._engines: dict[str, Engine] = {}
        self._cache = ExecutionCache(db, maxsize=cache_size) if cache else None
        self._build_cache = BuildArtifactCache(db, maxsize=build_cache_size)
        # The pruned, compression-aware scan plane (zone-map data skipping +
        # packed column twins) is the default; ``zones=False`` falls back to
        # the unpruned selection-vector plane.  Answers and profiles are
        # identical either way -- only the work done differs.
        self._zone_cache = ZoneMapCache(db, zone_size=zone_size) if zones else None
        self._zone_size = zone_size
        # Process-parallel sharded execution (``shards=N`` here or per call):
        # the executor -- worker pool + shared-memory plane -- is constructed
        # lazily on the first ``shards > 1`` execution and torn down by
        # :meth:`close`.  ``shard_start_method`` pins the multiprocessing
        # start method (``fork``/``spawn``/``forkserver``); None means the
        # platform default.
        self._default_shards = shards
        self._shard_start_method = shard_start_method
        self._shards: "object | None" = None
        self._shard_lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._standing: "dict[str, StandingQuery]" = {}
        self._standing_lock = threading.Lock()
        # Crash-consistent durability (``durability=DurabilityConfig(...)``):
        # the manager opens (and validates) the WAL, recovers any durable
        # state already in the directory -- a fresh directory recovers to a
        # trivial no-op, so construction doubles as ``Session.open`` -- and
        # then hooks every table so appends log-then-publish.
        self._durability: DurabilityManager | None = None
        if durability is not None:
            self._durability = DurabilityManager(db, durability, faults=self.faults)
            self._durability.recover()
            self._durability.attach()

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, db: Database, *, durability: DurabilityConfig, **kwargs) -> "Session":
        """Open a session over ``db`` with durable state recovered.

        The documented recovery entry point: loads the newest valid
        checkpoint from ``durability.dir``, replays the WAL tail in version
        order (truncating a torn tail cleanly), and returns a session whose
        version frontier is byte-identical to the last durable state --
        then keeps logging, so the next crash recovers too.  Equivalent to
        ``Session(db, durability=durability, ...)``; this name exists so
        call sites read as what they do.
        """
        return cls(db, durability=durability, **kwargs)

    @property
    def durability(self) -> DurabilityManager | None:
        """The durability manager, or ``None`` for an in-memory session."""
        return self._durability

    @property
    def recovery(self) -> "RecoveryReport | None":
        """What the most recent :meth:`recover` pass found (None if never)."""
        return self._durability.last_recovery if self._durability else None

    def recover(self) -> "RecoveryReport":
        """Re-run recovery from the durability directory (idempotent)."""
        if self._durability is None:
            raise ValueError("session has no durability configured; pass durability=DurabilityConfig(...)")
        return self._durability.recover()

    def checkpoint(self) -> str:
        """Force a checkpoint now; returns the new snapshot's path."""
        if self._durability is None:
            raise ValueError("session has no durability configured; pass durability=DurabilityConfig(...)")
        return self._durability.checkpoint()

    # ------------------------------------------------------------------
    @property
    def planner(self) -> JoinOrderPlanner:
        """The (lazily constructed) join-order planner for this database."""
        if self._planner is None:
            self._planner = JoinOrderPlanner(self.db)
        return self._planner

    def engine(self, name: str) -> Engine:
        """The engine registered under ``name``, instantiated once per session."""
        key = self.registry.resolve(name)
        if key not in self._engines:
            self._engines[key] = self.registry.create(key, self.db)
        return self._engines[key]

    def prepare(self, query: SSBQuery | QueryBuilder, *, optimize: bool = False) -> SSBQuery:
        """Resolve a builder into a validated spec, optionally reordering joins.

        ``optimize=True`` reorders the joins cost-based when the planner can
        identify them uniquely; a query joining the same dimension twice (a
        role-playing dimension) executes in its written order instead.
        """
        if isinstance(query, QueryBuilder):
            query = query.build(self.db)
        if not isinstance(query, SSBQuery):
            raise TypeError(f"expected an SSBQuery or QueryBuilder, got {type(query).__name__}")
        dimensions = {join.dimension for join in query.joins}
        if optimize and len(query.joins) > 1 and len(dimensions) == len(query.joins):
            query = self.planner.reorder(query)
        return query

    # ------------------------------------------------------------------
    def cache_info(self, cache: str = "execution") -> CacheInfo | ZoneInfo:
        """Hit/miss counters of one of the session's caches.

        ``cache="execution"`` (the default) reports the functional-execution
        memo; ``cache="builds"`` reports the shared dimension-build artifact
        cache that ``run_many(..., share_builds=True)`` populates;
        ``cache="zones"`` reports the zone-map statistics cache and the
        data-skipping counters (zones skipped / taken whole / evaluated,
        rows pruned without being touched).  :meth:`clear_caches` drops all
        three caches and zeroes every counter reported here in one call.
        """
        if cache in ("builds", "build"):
            return self._build_cache.info()
        if cache in ("zones", "zone"):
            if self._zone_cache is None:
                return ZoneInfo(0, 0, 0, 0, 0, 0, 0)
            return self._zone_cache.info()
        if cache != "execution":
            raise ValueError(f"unknown cache {cache!r}; expected 'execution', 'builds', or 'zones'")
        if self._cache is None:
            return CacheInfo(hits=0, misses=0, size=0, maxsize=0)
        return self._cache.info()

    def counters(self) -> CounterSnapshot:
        """A point-in-time snapshot of every cache counter, for delta math.

        Snapshots subtract: ``session.counters() - before`` covers exactly
        the work done since ``before`` was taken.  The serving layer
        (:class:`repro.service.QueryService`) brackets each request with a
        pair of snapshots to stamp its :class:`~repro.service.RequestTrace`
        with per-request cache behaviour.
        """
        return snapshot_counters(
            self._cache, self._build_cache, self._zone_cache, shards=self._shards
        )

    def shard_executor(self):
        """The session's process-shard executor, created lazily on first use.

        Owns the persistent worker pool and the shared-memory fact-table
        exports (see :mod:`repro.engine.shard`); lifecycle is tied to
        :meth:`close`.  Constructed with the session's zone geometry so
        shard pipelines take the same pruning decisions the monolithic
        pipeline would.
        """
        with self._shard_lock:
            if self._shards is None:
                from repro.engine.shard import ShardExecutor

                self._shards = ShardExecutor(
                    self.db,
                    start_method=self._shard_start_method,
                    zones=self._zone_cache is not None,
                    zone_size=self._zone_size,
                    retry_budget=self.resilience.shard_retry_budget,
                    task_timeout_s=self.resilience.shard_task_timeout_s,
                )
            return self._shards

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The session's shared worker pool, created lazily on first use.

        ``run_many(workers=N)`` keeps its own per-call pools (a batch wants
        exactly N workers); this handle is for long-lived callers -- the
        async :class:`~repro.service.QueryService` dispatches admitted
        queries onto it -- so one session serves any number of concurrent
        submitters without spawning a pool per request.  Sized to the
        hardware, torn down by :meth:`close`.
        """
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=os.cpu_count() or 1, thread_name_prefix="repro-session"
                )
            return self._executor

    def close(self) -> None:
        """Shut down the shared executor and the shard pool (idempotent;
        caches stay intact).  Closing the shard executor unlinks every
        shared-memory segment the session published, so a closed session
        leaves ``/dev/shm`` exactly as it found it.
        """
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        with self._shard_lock:
            shards, self._shards = self._shards, None
        if shards is not None:
            shards.close()
        if self._durability is not None:
            # Final fsync + detach the table hooks; the directory itself
            # stays behind, ready for the next Session.open.
            self._durability.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def clear_caches(self) -> None:
        """Drop the execution, build-artifact, and zone-map caches in one call.

        Every cache's entries are dropped *and* its counters are reset to
        zero (hits, misses, and the zone-skipping tallies reported by
        :meth:`cache_info`), so a benchmark or test can bracket a phase with
        ``clear_caches()`` and read fresh counters afterwards.  Note that
        ingest does **not** need this: appends bump the owning table's
        version, and every cache keys (or validates) its entries by
        ``(table, version)``, so stale entries are simply never consulted
        again -- ``clear_caches`` is for reclaiming memory or resetting
        counters, not for correctness.
        """
        if self._cache is not None:
            self._cache.clear()
        self._build_cache.clear()
        if self._zone_cache is not None:
            self._zone_cache.clear()

    # Backwards-compatible alias (pre-ingest sessions named it clear_cache).
    clear_cache = clear_caches

    # ------------------------------------------------------------------
    def table_versions(self) -> dict[str, int]:
        """The current published version of every table in the database.

        Versions start at 0 and bump once per successful
        :meth:`~repro.storage.Table.append`.  The serving layer stamps each
        request's trace with this mapping so a replayed trace records
        exactly which data every query ran against.
        """
        return {
            name: getattr(table, "version", 0)
            for name, table in sorted(self.db.tables.items())
        }

    def ingest(self, table: str, arrays: "dict[str, np.ndarray | Sequence]") -> int:
        """Append one micro-batch to ``table`` and refresh standing queries.

        The append is atomic (seal-then-publish: readers admitted before the
        version flip keep the old columns, readers after it see the whole
        batch) and returns the table's new version.  Caches are *not*
        cleared -- they key by ``(table, version)``, so artifacts built
        against other tables keep hitting and only this table's entries are
        rebuilt on next use.  Registered standing queries are refreshed
        incrementally before the call returns: each one evaluates its
        pipeline over only the newly sealed zones and merges the delta into
        its grouped partial state.
        """
        version = self.db.table(table).append(arrays)
        for standing in self.standing_queries().values():
            standing.refresh()
        if self._durability is not None:
            # The append itself is already durable (the WAL record was
            # fsynced before the version flip); this only asks whether the
            # log has grown enough to be folded into a checkpoint.
            self._durability.maybe_checkpoint()
        return version

    def register_standing(
        self, query: SSBQuery | QueryBuilder, *, name: str | None = None
    ) -> "StandingQuery":
        """Register an aggregate query for incremental maintenance.

        The query is evaluated once, in full, at the current version; after
        that every :meth:`ingest` refreshes it by running the pipeline over
        just the appended fact rows and merging the grouped partials --
        byte-identical to a from-scratch run at every version (the
        differential suite proves it).  Returns the live
        :class:`~repro.ingest.StandingQuery` handle; read ``.answer()`` for
        the maintained result.
        """
        from repro.ingest.standing import StandingQuery

        prepared = self.prepare(query)
        key = name if name is not None else prepared.name
        standing = StandingQuery(self, prepared, name=key)
        with self._standing_lock:
            if key in self._standing:
                raise ValueError(f"standing query {key!r} already registered")
            self._standing[key] = standing
        standing.refresh()
        return standing

    def unregister_standing(self, name: str) -> None:
        """Remove a standing query registered under ``name``."""
        with self._standing_lock:
            del self._standing[name]

    def standing_queries(self) -> "dict[str, StandingQuery]":
        """A snapshot of the registered standing queries, by name."""
        with self._standing_lock:
            return dict(self._standing)

    def _execute(
        self,
        engine_name: str,
        prepared: SSBQuery,
        cache: bool | None,
        shards: int | None = None,
    ) -> ResultSet:
        chosen = self.engine(engine_name)
        use_cache = self._cache is not None and cache is not False
        effective = shards if shards is not None else self._default_shards
        if effective is not None and effective < 1:
            raise ValueError(f"shards must be >= 1, got {effective}")
        with ExitStack() as stack:
            if self.faults is not None:
                # Installed here, on the executing thread, because
                # ``loop.run_in_executor`` does not propagate ContextVars:
                # this is the one place every execution path flows through.
                stack.enter_context(activate_faults(self.faults))
            if self._zone_cache is not None:
                stack.enter_context(activate_zones(self._zone_cache))
            if effective is not None and effective > 1:
                # ``shards=1`` (or None) deliberately skips the binding so
                # it shares cache entries -- and the cache key -- with the
                # single-process and morsel-threaded paths.
                stack.enter_context(activate_shards(self.shard_executor().bind(effective)))
            if use_cache:
                stack.enter_context(activate(self._cache))
            raw = chosen.run(prepared)
        return ResultSet.from_result(self.db, prepared, raw)

    # ------------------------------------------------------------------
    def run(
        self,
        query: SSBQuery | QueryBuilder,
        engine: str = "cpu",
        *,
        optimize: bool = False,
        cache: bool | None = None,
        shards: int | None = None,
    ) -> ResultSet:
        """Execute one query on one engine, returning a decoded ResultSet.

        ``shards=N`` (N > 1) runs the query process-parallel: the fact rows
        split into zone-aligned ranges, each range executes in a worker
        process over the shared-memory fact columns, and the partial
        aggregates merge in this process -- byte-identical answers and
        profiles, without the GIL.  Overrides the session-level default.
        """
        prepared = self.prepare(query, optimize=optimize)
        return self._execute(engine, prepared, cache, shards=shards)

    def run_many(
        self,
        queries: Iterable[SSBQuery | QueryBuilder],
        engine: str = "cpu",
        *,
        optimize: bool = False,
        cache: bool | None = None,
        share_builds: bool = False,
        workers: int = 1,
        oversubscribe: bool = False,
        return_exceptions: bool = False,
        shards: int | None = None,
    ) -> "list[ResultSet | Exception]":
        """Execute a batch of queries on one engine.

        With ``share_builds=True`` the batch runs as one unit through the
        physical pipeline's shared-build path: every query is lowered, the
        batch's build operators are topologically grouped and deduplicated
        by ``(dimension, key_column, payload_column, predicate)``, each
        distinct dimension lookup is constructed exactly once up front, and
        every query's probes consume the shared (immutable) artifacts.
        Answers and profiles are identical to the serial path -- only the
        repeated build work disappears.  ``cache_info("builds")`` reports
        the resulting hit/miss counters.

        With ``workers=N`` (N > 1) the batch executes morsel-parallel: each
        query is one morsel, a thread pool of workers pulls morsels as they
        free up, and results come back in input order.  The workers share
        the session's lock-protected caches; combined with
        ``share_builds=True`` there is no serial prebuild phase -- the first
        worker to need a dimension lookup constructs it (the
        :class:`~repro.engine.cache.BuildArtifactCache` arbitrates in-flight
        builds, so each distinct artifact is still constructed exactly once
        no matter how the batch lands on the workers).

        ``workers`` is a *maximum*: morsel-driven schedulers size their pool
        to the hardware, so the pool is capped at ``os.cpu_count()`` --
        oversubscribing physical cores with CPU-bound morsels only adds
        scheduler churn.  Pass ``oversubscribe=True`` to force exactly
        ``workers`` pool threads regardless (the concurrency tests do, to
        hammer the shared caches with real races).

        ``return_exceptions=True`` turns per-query failures into in-place
        results: a query that raises contributes its exception object at its
        input position instead of aborting the batch, so the surviving
        queries' ResultSets still come back, in order.  The default
        (``False``) re-raises the first failure after the pool has drained.

        ``shards=N`` routes each query through the process-shard pool (see
        :meth:`run`); intra-query process parallelism composes with the
        inter-query ``workers`` threads, which merely dispatch and merge.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        prepared = [self.prepare(query, optimize=optimize) for query in queries]
        effective = workers if oversubscribe else min(workers, os.cpu_count() or 1)
        if effective > 1:
            return self._run_many_threaded(
                prepared, engine, cache, share_builds, effective, return_exceptions, shards
            )
        if not share_builds:
            return [
                self._execute_guarded(engine, query, cache, return_exceptions, shards)
                for query in prepared
            ]

        self.engine(engine)  # fail fast on a bad engine name, before any build work

        # Queries the execution memo will replay never probe, so their
        # builds would be pure wasted phase-1 work -- skip them.
        use_cache = self._cache is not None and cache is not False
        pending = [
            query for query in prepared
            if not (use_cache and self._cache.contains(self.db, query))
        ]
        builds = staged_builds(lower_query(query) for query in pending)
        # The exactly-once guarantee requires every distinct artifact to stay
        # resident for the whole batch: grow the LRU to fit (it never shrinks
        # back, so later batches keep benefiting).
        self._build_cache.maxsize = max(self._build_cache.maxsize, len(builds))
        with activate_builds(self._build_cache) as build_cache:
            # Phase 1: construct each of the batch's distinct builds once
            # (sources before dependents, once snowflake chains lower) --
            # under the zone scope so they get the compact stats-based
            # layout the per-query probes will also see.
            with ExitStack() as stack:
                if self._zone_cache is not None:
                    stack.enter_context(activate_zones(self._zone_cache))
                for build in builds:
                    build.fetch_artifact(self.db, build_cache)
            # Phase 2: per-query probe/aggregate stages; every BuildLookup
            # now resolves from the shared artifact cache.
            return [
                self._execute_guarded(engine, query, cache, return_exceptions, shards)
                for query in prepared
            ]

    def _execute_guarded(
        self,
        engine: str,
        query: SSBQuery,
        cache: bool | None,
        return_exceptions: bool,
        shards: int | None = None,
    ) -> "ResultSet | Exception":
        if not return_exceptions:
            return self._execute(engine, query, cache, shards=shards)
        try:
            return self._execute(engine, query, cache, shards=shards)
        except Exception as exc:
            return exc

    def _run_many_threaded(
        self,
        prepared: list[SSBQuery],
        engine: str,
        cache: bool | None,
        share_builds: bool,
        workers: int,
        return_exceptions: bool,
        shards: int | None = None,
    ) -> "list[ResultSet | Exception]":
        """Morsel-parallel batch execution over a thread pool.

        The engine instance is created up front (the per-session engine dict
        is not guarded), and each worker task activates the shared build
        cache itself -- pool threads do not inherit the submitting context's
        ContextVar bindings.

        Error propagation: every morsel is submitted before any result is
        awaited, so a failing query never starves the rest of the batch --
        the survivors run to completion in the pool either way, the pool
        shuts down cleanly, and (without ``return_exceptions``) the first
        failure in input order is what re-raises.
        """
        self.engine(engine)  # fail fast and pre-populate the engine map
        if share_builds:
            # The exactly-once guarantee needs every distinct artifact to
            # stay resident for the whole batch (same safeguard as the
            # serial shared-build path): grow the LRU to fit.
            builds = staged_builds(lower_query(query) for query in prepared)
            self._build_cache.maxsize = max(self._build_cache.maxsize, len(builds))

        def morsel(query: SSBQuery) -> ResultSet:
            if share_builds:
                with activate_builds(self._build_cache):
                    return self._execute(engine, query, cache, shards=shards)
            return self._execute(engine, query, cache, shards=shards)

        with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-run-many") as pool:
            futures = [pool.submit(morsel, query) for query in prepared]
            if not return_exceptions:
                return [future.result() for future in futures]
            results: "list[ResultSet | Exception]" = []
            for future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:
                    results.append(exc)
            return results

    def compare(
        self,
        query: SSBQuery | QueryBuilder,
        engines: Sequence[str] | None = None,
        *,
        optimize: bool = False,
        cache: bool | None = None,
    ) -> Comparison:
        """Run one query on several engines and tabulate the results.

        With caching enabled (the default) the functional execution pass
        runs once for the whole comparison; every engine after the first
        replays the memoized answer and profile and only re-costs it under
        its own hardware model.
        """
        if isinstance(engines, str):
            engines = (engines,)
        names = tuple(engines) if engines is not None else DEFAULT_COMPARE_ENGINES
        if not names:
            raise ValueError("compare needs at least one engine")
        resolved = [self.registry.resolve(name) for name in names]
        duplicates = sorted({key for key in resolved if resolved.count(key) > 1})
        if duplicates:
            raise ValueError(f"engine(s) listed more than once in compare: {duplicates}")
        prepared = self.prepare(query, optimize=optimize)
        results = {key: self._execute(key, prepared, cache) for key in resolved}
        return Comparison(prepared, results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(db={self.db.name!r}, engines={self.registry.names()})"
