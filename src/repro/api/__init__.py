"""Unified query API: fluent builder, engine registry, and Session facade.

This package is the one entry point for composing and executing arbitrary
star-schema queries:

* :mod:`repro.api.builder` -- :func:`Q` / :class:`QueryBuilder`, a fluent,
  schema-validating builder that emits the declarative
  :class:`~repro.ssb.queries.SSBQuery` specs every engine understands, and
  the :func:`col` predicate DSL whose comparisons compose into boolean
  AND/OR/NOT trees with ``&``, ``|``, and ``~``.
* :mod:`repro.api.registry` -- the :class:`Engine` protocol, the
  string-keyed :class:`EngineRegistry`, and the :func:`register_engine`
  decorator the six built-in engines (and user engines) plug into.
* :mod:`repro.api.resultset` -- :class:`ResultSet`, the decoded tabular
  result (named columns, dictionary codes translated back to labels) every
  Session execution returns.
* :mod:`repro.api.session` -- :class:`Session`, which binds a database to
  the registry: ``run``, ``run_many``, and ``compare`` across engines, with
  an ``optimize=True`` path through the join-order planner and a per-query
  memo of the functional execution pass shared across engines.
"""

from repro.api.builder import ColumnRef, Q, QueryBuilder, QueryValidationError, col
from repro.api.registry import (
    DEFAULT_REGISTRY,
    Engine,
    EngineRegistry,
    available_engines,
    register_engine,
)
from repro.api.resultset import ResultSet
from repro.api.session import Comparison, ComparisonRow, Session, values_agree
from repro.faults import FaultPlan, FaultPoint, ResiliencePolicy

# Importing the engine package registers the six built-in engines with
# DEFAULT_REGISTRY (each engine class carries a @register_engine decorator).
import repro.engine  # noqa: E402,F401

__all__ = [
    "ColumnRef",
    "Comparison",
    "ComparisonRow",
    "DEFAULT_REGISTRY",
    "Engine",
    "EngineRegistry",
    "FaultPlan",
    "FaultPoint",
    "Q",
    "QueryBuilder",
    "QueryValidationError",
    "ResiliencePolicy",
    "ResultSet",
    "Session",
    "available_engines",
    "col",
    "register_engine",
    "values_agree",
]
