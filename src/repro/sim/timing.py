"""Simulated-time bookkeeping.

All simulated durations are carried as a :class:`TimeBreakdown`: a total in
seconds plus a named component breakdown, so benchmark output can show where
a query spends its time (the paper's models are stated as sums of such
components, e.g. r1 + r2 + r3 for SSB q2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeBreakdown:
    """A simulated duration with named components.

    Components are additive unless the producer explicitly combined them with
    ``max`` (bandwidth-bound kernels take the max of read and compute, for
    example); in that case the producer records the final value under a
    single component so the invariant ``total == sum(components)`` holds.
    """

    components: dict[str, float] = field(default_factory=dict)

    @classmethod
    def single(cls, name: str, seconds: float) -> "TimeBreakdown":
        """A breakdown with one component."""
        return cls(components={name: seconds})

    @property
    def total_seconds(self) -> float:
        return sum(self.components.values())

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1e3

    @property
    def total_us(self) -> float:
        return self.total_seconds * 1e6

    def add(self, name: str, seconds: float) -> "TimeBreakdown":
        """Add ``seconds`` to component ``name`` (creating it if needed)."""
        if seconds < 0:
            raise ValueError(f"component {name!r}: negative duration")
        self.components[name] = self.components.get(name, 0.0) + seconds
        return self

    def merge(self, other: "TimeBreakdown", prefix: str = "") -> "TimeBreakdown":
        """Accumulate another breakdown, optionally namespacing its keys."""
        for name, seconds in other.components.items():
            self.add(prefix + name, seconds)
        return self

    def scaled(self, factor: float) -> "TimeBreakdown":
        """Return a new breakdown with every component scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return TimeBreakdown({k: v * factor for k, v in self.components.items()})

    def dominant_component(self) -> str | None:
        """Name of the largest component, or ``None`` when empty."""
        if not self.components:
            return None
        return max(self.components, key=self.components.get)

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        result = TimeBreakdown(dict(self.components))
        result.merge(other)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v * 1e3:.3f}ms" for k, v in self.components.items())
        return f"TimeBreakdown(total={self.total_ms:.3f}ms, {parts})"
