"""Execution simulators for the CPU and GPU platforms.

Operators describe the work they did with a :class:`repro.hardware.counters.
TrafficCounter`; the simulators in this package convert that description into
simulated wall-clock time on the paper's hardware (Table 2).  The GPU
simulator additionally models occupancy, memory coalescing, atomic
contention, and latency hiding; the CPU simulator models per-core bandwidth
sharing, SIMD, branch misprediction, and the memory stalls caused by
irregular access patterns (the effect behind the Section 5.3 case study).
"""

from repro.sim.cpu import CPUExecution, CPUSimulator
from repro.sim.gpu import GPUExecution, GPUSimulator, KernelLaunch
from repro.sim.timing import TimeBreakdown

__all__ = [
    "CPUExecution",
    "CPUSimulator",
    "GPUExecution",
    "GPUSimulator",
    "KernelLaunch",
    "TimeBreakdown",
]
