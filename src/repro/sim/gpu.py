"""GPU execution simulator.

The simulator converts an operator's :class:`~repro.hardware.counters.
TrafficCounter` plus a kernel launch configuration into simulated time on a
:class:`~repro.hardware.specs.GPUSpec`.  It models the effects the paper
identifies as the ones that matter for analytic workloads:

* **Streaming bandwidth** -- coalesced loads/stores run at global-memory
  bandwidth, degraded by a load-efficiency factor when the kernel cannot use
  vectorized (128-bit) accesses (Figure 9: items-per-thread sweep).
* **Random access and caching** -- random probes are served by the L1/L2
  hierarchy following the analytic hit-ratio model of Section 4.3; every
  miss moves a full 128-byte transaction.
* **Atomic contention** -- atomics to a single global counter serialize; the
  tile-based model reduces their count by a factor of the tile size
  (Section 3.2/3.3).
* **Synchronization and occupancy** -- block-wide barriers cost more for
  larger thread blocks, and very large blocks reduce the number of
  independent blocks per SM (the right-hand side of Figure 9).
* **Latency hiding** -- as long as occupancy is above a small threshold the
  GPU hides memory latency entirely, which is why full-query gains exceed
  the bandwidth ratio (Section 5.3); the simulator therefore only charges
  latency when occupancy is too low to cover it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cache import AnalyticCacheModel
from repro.hardware.counters import TrafficCounter
from repro.hardware.presets import NVIDIA_V100
from repro.hardware.specs import GPUSpec
from repro.sim.timing import TimeBreakdown

#: Occupancy (fraction of max resident warps) needed to fully hide global
#: memory latency.  Below this the simulator charges a latency penalty.
_LATENCY_HIDING_OCCUPANCY = 0.25

#: Cost of one block-wide barrier per resident warp, in seconds.  Barriers
#: get more expensive with more warps per block because every warp must
#: arrive before any may leave.
_BARRIER_COST_PER_WARP_S = 12e-9

#: Fixed kernel launch overhead (driver + scheduling), seconds.
_KERNEL_LAUNCH_OVERHEAD_S = 8e-6

#: Load/store efficiency by items-per-thread: 4 items allow full 128-bit
#: vectorized accesses, 2 items waste half the vector width, 1 item gets no
#: vectorization benefit (Section 3.3, Figure 9 discussion).
_LOAD_EFFICIENCY = {1: 0.72, 2: 0.86, 4: 1.0, 8: 1.0, 16: 1.0}


@dataclass(frozen=True)
class KernelLaunch:
    """Launch configuration of a (possibly fused) tile-based kernel."""

    threads_per_block: int = 128
    items_per_thread: int = 4
    shared_bytes_per_block: int = 0
    registers_per_thread: int = 32
    barriers_per_tile: int = 2
    grid_tiles: int = 0
    label: str = "kernel"

    @property
    def tile_size(self) -> int:
        """Number of items one thread block processes per tile."""
        return self.threads_per_block * self.items_per_thread

    def load_efficiency(self) -> float:
        """Fraction of peak bandwidth achievable with this configuration."""
        if self.items_per_thread in _LOAD_EFFICIENCY:
            return _LOAD_EFFICIENCY[self.items_per_thread]
        if self.items_per_thread > 4:
            return 1.0
        return 0.72


@dataclass
class GPUExecution:
    """Result of simulating one kernel (or a sequence of fused steps)."""

    time: TimeBreakdown
    traffic: TrafficCounter
    launch: KernelLaunch
    occupancy: float
    label: str = ""

    @property
    def seconds(self) -> float:
        return self.time.total_seconds

    @property
    def milliseconds(self) -> float:
        return self.time.total_ms


class GPUSimulator:
    """Analytic GPU performance simulator for tile-based kernels."""

    def __init__(self, spec: GPUSpec = NVIDIA_V100) -> None:
        self.spec = spec
        self._l1 = AnalyticCacheModel(spec.l1_capacity_per_sm_bytes, spec.global_access_granularity_bytes)
        self._l2 = AnalyticCacheModel(spec.l2_capacity_bytes, spec.global_access_granularity_bytes)

    # ------------------------------------------------------------------
    # Bandwidth primitives
    # ------------------------------------------------------------------
    def sequential_read_seconds(self, num_bytes: float, efficiency: float = 1.0) -> float:
        """Time to stream ``num_bytes`` of coalesced reads from global memory."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / (self.spec.global_read_bandwidth * max(efficiency, 1e-6))

    def sequential_write_seconds(self, num_bytes: float, efficiency: float = 1.0) -> float:
        """Time to stream ``num_bytes`` of coalesced writes to global memory."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / (self.spec.global_write_bandwidth * max(efficiency, 1e-6))

    def random_access_seconds(self, num_accesses: float, working_set_bytes: float) -> tuple[float, str]:
        """Time for random probes into a structure of the given size.

        Implements the two-case model of Section 4.3: when the structure fits
        in the L2 cache the probes are served at L2 bandwidth (after the L1
        filters whatever fits per SM); otherwise each L2 miss moves one full
        128-byte transaction from global memory.  Returns ``(seconds,
        serviced_by)`` where ``serviced_by`` names the bottleneck level.
        """
        if num_accesses <= 0:
            return 0.0, "none"
        # Transactions that reach global memory move a full 128-byte line;
        # accesses served by the L2 move a 64-byte L2 line.
        dram_line = self.spec.global_access_granularity_bytes
        l2_line = dram_line // 2
        l1_hit = self._l1.hit_ratio(working_set_bytes)
        if self._l2.fits(working_set_bytes):
            bytes_from_l2 = (1.0 - l1_hit) * num_accesses * l2_line
            return bytes_from_l2 / self.spec.l2_bandwidth, "L2"
        l2_hit = self._l2.hit_ratio(working_set_bytes)
        bytes_from_dram = (1.0 - l2_hit) * num_accesses * dram_line
        bytes_from_l2 = l2_hit * num_accesses * l2_line
        seconds = bytes_from_dram / self.spec.global_read_bandwidth + bytes_from_l2 / self.spec.l2_bandwidth
        return seconds, "global"

    def atomic_seconds(self, num_atomics: float, num_targets: float = 1.0) -> float:
        """Time for atomics; contention on few targets serializes them."""
        if num_atomics <= 0:
            return 0.0
        # Atomics to distinct targets proceed in parallel across L2 banks;
        # contention on a single target serializes at the atomic throughput.
        parallelism = max(1.0, min(num_targets, self.spec.num_sms))
        return num_atomics / (self.spec.atomic_throughput_ops_per_s * parallelism)

    def compute_seconds(self, num_ops: float) -> float:
        """Time for scalar arithmetic across the whole device."""
        if num_ops <= 0:
            return 0.0
        throughput = self.spec.total_cores * self.spec.frequency_hz
        return num_ops / throughput

    def shared_memory_seconds(self, num_bytes: float) -> float:
        """Time for shared-memory traffic (order of magnitude above global)."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self.spec.shared_memory_bandwidth or (self.spec.global_read_bandwidth * 10)
        return num_bytes / bandwidth

    # ------------------------------------------------------------------
    # Kernel-level simulation
    # ------------------------------------------------------------------
    def occupancy(self, launch: KernelLaunch) -> float:
        """Achieved occupancy for a launch configuration."""
        return self.spec.occupancy(
            launch.threads_per_block,
            launch.shared_bytes_per_block,
            launch.registers_per_thread,
        )

    def sync_overhead_seconds(self, launch: KernelLaunch, num_tiles: float) -> float:
        """Cost of block-wide barriers over the whole grid.

        Larger blocks synchronize more warps per barrier; fewer resident
        blocks per SM leave less independent work to overlap the barrier
        latency with, which is what makes 512/1024-thread blocks slower in
        Figure 9 even though they issue fewer atomics.
        """
        if num_tiles <= 0 or launch.barriers_per_tile <= 0:
            return 0.0
        warps_per_block = -(-launch.threads_per_block // self.spec.warp_size)
        resident_blocks = max(
            1,
            self.spec.occupancy_limit_blocks(
                launch.threads_per_block,
                launch.shared_bytes_per_block,
                launch.registers_per_thread,
            ),
        )
        # Barrier cost per tile grows with the number of warps that must
        # rendezvous; overlap across resident blocks and SMs divides it down.
        per_tile = launch.barriers_per_tile * warps_per_block * _BARRIER_COST_PER_WARP_S
        overlap = self.spec.num_sms * resident_blocks
        return num_tiles * per_tile / overlap

    def latency_penalty_seconds(self, launch: KernelLaunch, num_tiles: float) -> float:
        """Extra time charged when occupancy is too low to hide latency."""
        occ = self.occupancy(launch)
        if occ >= _LATENCY_HIDING_OCCUPANCY or num_tiles <= 0:
            return 0.0
        shortfall = (_LATENCY_HIDING_OCCUPANCY - occ) / _LATENCY_HIDING_OCCUPANCY
        per_tile = self.spec.global_latency_ns * 1e-9
        return shortfall * num_tiles * per_tile / self.spec.num_sms

    def run_kernel(
        self,
        traffic: TrafficCounter,
        launch: KernelLaunch | None = None,
        label: str = "",
    ) -> GPUExecution:
        """Simulate one kernel described by ``traffic`` under ``launch``.

        The streaming, random-access, and compute components overlap (a
        bandwidth-bound kernel is limited by the slowest of them); atomics,
        barriers, and the launch overhead are charged on top because they
        serialize against the data path.
        """
        launch = launch or KernelLaunch(label=label or "kernel")
        efficiency = launch.load_efficiency()

        read_s = self.sequential_read_seconds(traffic.sequential_read_bytes, efficiency)
        write_s = self.sequential_write_seconds(traffic.sequential_write_bytes, efficiency)
        random_s, serviced_by = self.random_access_seconds(
            traffic.random_accesses, traffic.random_working_set_bytes
        )
        compute_s = self.compute_seconds(traffic.compute_ops)
        shared_s = self.shared_memory_seconds(traffic.shared_bytes)

        streaming_s = read_s + write_s
        if serviced_by == "global":
            # Probe misses share the global-memory bus with the streaming
            # traffic, so the two add up (Section 4.3, large hash tables).
            datapath_s = streaming_s + random_s
            datapath_s = max(datapath_s, compute_s, shared_s)
        else:
            # Cache-resident probes run on the L2/shared path concurrently
            # with streaming traffic; the slower of the two dominates.
            datapath_s = max(streaming_s, random_s, compute_s, shared_s)

        num_tiles = launch.grid_tiles
        if num_tiles <= 0 and launch.tile_size > 0:
            items = traffic.sequential_read_bytes / 4.0
            num_tiles = items / launch.tile_size if items > 0 else 0.0

        atomic_s = self.atomic_seconds(traffic.atomic_updates, traffic.atomic_targets)
        sync_s = self.sync_overhead_seconds(launch, num_tiles)
        latency_s = self.latency_penalty_seconds(launch, num_tiles)

        time = TimeBreakdown()
        time.add("datapath", datapath_s)
        time.add("atomics", atomic_s)
        time.add("sync", sync_s)
        time.add("latency", latency_s)
        time.add("launch", _KERNEL_LAUNCH_OVERHEAD_S)

        return GPUExecution(
            time=time,
            traffic=traffic,
            launch=launch,
            occupancy=self.occupancy(launch),
            label=label or launch.label,
        )

    def run_kernels(self, executions: list[GPUExecution]) -> TimeBreakdown:
        """Total time of a sequence of dependent kernels (no overlap)."""
        total = TimeBreakdown()
        for index, execution in enumerate(executions):
            total.merge(execution.time, prefix=f"k{index}.")
        return total
