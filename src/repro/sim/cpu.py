"""CPU execution simulator.

Converts an operator's :class:`~repro.hardware.counters.TrafficCounter` into
simulated time on a :class:`~repro.hardware.specs.CPUSpec`.  The mechanisms
modelled are the ones the paper uses to explain its CPU results:

* **DRAM streaming bandwidth**, shared by all cores, with separate read and
  write bandwidths and a bonus for non-temporal (streaming) stores that skip
  the read-for-ownership traffic (Figure 10, CPU vs CPU-Opt).
* **SIMD vs scalar compute throughput** -- a projection like the sigmoid of
  Q2 is compute bound without SIMD and bandwidth bound with it.
* **Branch misprediction** -- the selectivity-dependent penalty of the
  branching selection scan (Figure 12, CPU If vs CPU Pred).
* **Cache hierarchy for random access** -- probes into a hash table are
  served by L1/L2/L3/DRAM according to the analytic hit-ratio model, and
  unlike the GPU the CPU cannot fully hide the DRAM latency of irregular
  accesses, so an extra stall factor applies once probes spill out of the
  last-level cache (Figure 13 and the Section 5.3 case study).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cache import AnalyticCacheModel
from repro.hardware.counters import TrafficCounter
from repro.hardware.presets import INTEL_I7_6900
from repro.hardware.specs import CPUSpec
from repro.sim.timing import TimeBreakdown

#: Instructions (scalar micro-ops) retired per core per cycle for the simple
#: arithmetic in these workloads.
_SCALAR_IPC = 2.0

#: Fraction of peak DRAM bandwidth achievable when the access pattern is a
#: stream of independent random cache-line misses.  The paper notes the
#: measured CPU join is slower than the bandwidth-saturating model because of
#: memory stalls; this factor reproduces that gap.
_RANDOM_ACCESS_EFFICIENCY = 0.62

#: Effective penalty per mispredicted branch after overlap with the memory
#: system, in seconds.  The architectural penalty is ~15 cycles, but much of
#: it hides behind outstanding memory traffic in a streaming scan.
_EFFECTIVE_BRANCH_MISS_PENALTY_S = 1.1e-9


@dataclass
class CPUExecution:
    """Result of simulating one CPU operator."""

    time: TimeBreakdown
    traffic: TrafficCounter
    cores_used: int
    used_simd: bool
    label: str = ""

    @property
    def seconds(self) -> float:
        return self.time.total_seconds

    @property
    def milliseconds(self) -> float:
        return self.time.total_ms


class CPUSimulator:
    """Analytic multicore CPU performance simulator."""

    def __init__(self, spec: CPUSpec = INTEL_I7_6900) -> None:
        self.spec = spec
        self._levels = [AnalyticCacheModel(c.capacity_bytes, c.line_bytes) for c in spec.caches]

    # ------------------------------------------------------------------
    # Bandwidth and compute primitives
    # ------------------------------------------------------------------
    def sequential_read_seconds(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` from DRAM across all cores."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.spec.dram_read_bandwidth

    def sequential_write_seconds(self, num_bytes: float, non_temporal: bool = False) -> float:
        """Time to stream ``num_bytes`` of stores to DRAM.

        Regular stores first read the target line into the cache
        (read-for-ownership), effectively moving the data twice; non-temporal
        stores bypass the caches and write combining buffers flush full lines
        directly, recovering that factor.
        """
        if num_bytes <= 0:
            return 0.0
        if non_temporal:
            return num_bytes / self.spec.dram_write_bandwidth
        rfo_read = num_bytes / self.spec.dram_read_bandwidth
        return num_bytes / self.spec.dram_write_bandwidth + rfo_read * 0.5

    def compute_seconds(self, num_ops: float, cores: int | None = None, simd: bool = False) -> float:
        """Time for arithmetic on ``cores`` cores, optionally SIMD-vectorized."""
        if num_ops <= 0:
            return 0.0
        cores = cores or self.spec.cores
        lanes = self.spec.simd_lanes_32bit if simd else 1
        throughput = cores * self.spec.frequency_hz * _SCALAR_IPC * lanes
        return num_ops / throughput

    def branch_miss_seconds(self, num_branches: float, miss_rate: float, cores: int | None = None) -> float:
        """Aggregate branch-misprediction penalty across cores."""
        if num_branches <= 0 or miss_rate <= 0:
            return 0.0
        cores = cores or self.spec.cores
        penalty = max(_EFFECTIVE_BRANCH_MISS_PENALTY_S, self.spec.branch_miss_penalty_ns * 1e-9 * 0.25)
        return num_branches * min(miss_rate, 1.0) * penalty / cores

    def random_access_seconds(
        self,
        num_accesses: float,
        working_set_bytes: float,
        cores: int | None = None,
        random_efficiency: float | None = None,
        dependent: bool = False,
    ) -> tuple[float, str]:
        """Time for random probes into a structure of the given size.

        Follows the Section 4.3 model: if the structure fits in a cache
        level, the probes are served at that level's bandwidth (L1/L2 probes
        are effectively free relative to the DRAM-bound scan; L3 probes run
        at the measured 157 GBps).  Once the structure exceeds the LLC, every
        miss moves a 64-byte line from DRAM and memory stalls keep the CPU
        from reaching peak bandwidth on that traffic.
        """
        if num_accesses <= 0:
            return 0.0, "none"
        line = self.spec.cache_line_bytes
        l1, l2, l3 = self._levels[0], self._levels[1], self._levels[2]
        cores = cores or self.spec.cores
        # Overlap of outstanding cache misses: independent probes (the join
        # microbenchmark) keep several in flight per core; probes on a
        # dependent chain (pipelined multi-join queries) wait for each other,
        # and only SMT threads provide extra overlap.  This is the mechanism
        # behind the Section 5.3 finding that measured CPU query times exceed
        # the bandwidth model while the GPU's do not.
        if dependent:
            overlap = 1.0
            workers = self.spec.total_threads
        else:
            overlap = 4.0
            workers = cores
        if l2.fits(working_set_bytes):
            # Private-cache resident: bandwidth is effectively unlimited
            # compared to DRAM; charge the L2 latency-bound throughput.
            latency_s = self.spec.caches[1].latency_ns * 1e-9
            return num_accesses * latency_s / (overlap * workers), "L2"
        if l3.fits(working_set_bytes):
            l2_hit = l2.hit_ratio(working_set_bytes)
            misses = (1.0 - l2_hit) * num_accesses
            bytes_from_l3 = misses * line
            bandwidth = self.spec.caches[2].bandwidth_bytes_per_s or self.spec.dram_read_bandwidth * 3
            bandwidth_bound = bytes_from_l3 / bandwidth
            latency_s = self.spec.caches[2].latency_ns * 1e-9
            latency_bound = misses * latency_s / (overlap * workers)
            return max(bandwidth_bound, latency_bound), "L3"
        l3_hit = l3.hit_ratio(working_set_bytes)
        bytes_from_dram = (1.0 - l3_hit) * num_accesses * line
        efficiency = random_efficiency if random_efficiency is not None else _RANDOM_ACCESS_EFFICIENCY
        effective_bw = self.spec.dram_read_bandwidth * efficiency
        bandwidth_bound = bytes_from_dram / effective_bw
        # Latency/occupancy bound: each core can keep a limited number of
        # misses in flight.
        cores = cores or self.spec.cores
        miss_rate_per_core = self.spec.max_outstanding_misses / (self.spec.dram_latency_ns * 1e-9)
        latency_bound = (1.0 - l3_hit) * num_accesses / (miss_rate_per_core * cores)
        return max(bandwidth_bound, latency_bound), "DRAM"

    def atomic_seconds(self, num_atomics: float, num_targets: float = 1.0) -> float:
        """Atomic updates to shared counters (coarse contention model)."""
        if num_atomics <= 0:
            return 0.0
        # A contended atomic costs roughly a cache-line round trip between
        # cores (~20 ns); independent targets scale with core count.
        parallelism = max(1.0, min(num_targets, self.spec.cores))
        return num_atomics * 20e-9 / parallelism

    # ------------------------------------------------------------------
    # Operator-level simulation
    # ------------------------------------------------------------------
    def run(
        self,
        traffic: TrafficCounter,
        cores: int | None = None,
        use_simd: bool = False,
        non_temporal_writes: bool = False,
        random_efficiency: float | None = None,
        dependent_random: bool = False,
        label: str = "",
    ) -> CPUExecution:
        """Simulate one operator described by ``traffic``.

        Streaming, random, and compute phases overlap up to the point allowed
        by the hardware: the operator is bound by the slowest of (a) the DRAM
        streaming traffic, (b) the compute throughput, and (c) the
        cache-resident probe traffic; DRAM-bound random traffic and branch
        penalties add on top because they stall the pipeline.
        """
        cores = cores or self.spec.cores

        # A single core cannot saturate the memory bus; streaming bandwidth
        # scales with the number of active cores up to the DRAM limit.
        stream_share = min(
            1.0, cores * self.spec.per_core_stream_bandwidth / self.spec.dram_read_bandwidth
        )
        read_s = self.sequential_read_seconds(traffic.sequential_read_bytes) / stream_share
        write_s = (
            self.sequential_write_seconds(traffic.sequential_write_bytes, non_temporal_writes)
            / stream_share
        )
        compute_s = self.compute_seconds(traffic.compute_ops, cores, use_simd)
        random_s, serviced_by = self.random_access_seconds(
            traffic.random_accesses,
            traffic.random_working_set_bytes,
            cores,
            random_efficiency=random_efficiency,
            dependent=dependent_random,
        )
        branch_s = self.branch_miss_seconds(
            traffic.data_dependent_branches, traffic.branch_miss_rate, cores
        )
        atomic_s = self.atomic_seconds(traffic.atomic_updates, traffic.atomic_targets)
        shared_s = 0.0
        if traffic.shared_bytes > 0:
            # L1-resident buffer traffic (the CPU analogue of shared memory);
            # cheap but not free.
            shared_s = traffic.shared_bytes / (self.spec.dram_read_bandwidth * 8)

        streaming_s = read_s + write_s
        if serviced_by == "DRAM" or dependent_random:
            # DRAM-bound probe misses share the memory bus with the scan, and
            # dependent probe chains stall the pipeline: both add to the
            # streaming time instead of hiding behind it.
            datapath_s = streaming_s + random_s
            datapath_s = max(datapath_s, compute_s, shared_s)
        else:
            datapath_s = max(streaming_s, random_s, compute_s, shared_s)

        time = TimeBreakdown()
        time.add("datapath", datapath_s)
        time.add("branches", branch_s)
        time.add("atomics", atomic_s)

        return CPUExecution(
            time=time,
            traffic=traffic,
            cores_used=cores,
            used_simd=use_simd,
            label=label,
        )
