"""Analytic cost models from the paper (Sections 4 and 5.3).

Every model assumes the implementation saturates the relevant memory
bandwidth and predicts runtime purely from data sizes, selectivities, and
the hardware parameters of Table 2.  The models serve two purposes in the
reproduction, exactly as in the paper: they are the dashed reference lines
in every microbenchmark figure, and they are the yardstick that tells us
whether an implementation is as good as it can be.
"""

from repro.models.base import ModelPrediction
from repro.models.coprocessor import coprocessor_query_lower_bound, cpu_query_upper_bound
from repro.models.join import join_probe_model
from repro.models.project import project_model
from repro.models.query import QueryCostInputs, ssb_q21_model
from repro.models.select import select_model
from repro.models.sort import radix_histogram_model, radix_shuffle_model, radix_sort_model

__all__ = [
    "ModelPrediction",
    "QueryCostInputs",
    "coprocessor_query_lower_bound",
    "cpu_query_upper_bound",
    "join_probe_model",
    "project_model",
    "radix_histogram_model",
    "radix_shuffle_model",
    "radix_sort_model",
    "select_model",
    "ssb_q21_model",
]
