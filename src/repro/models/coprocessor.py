"""Coprocessor-model bounds (Section 3.1).

For a query that scans ``total_bytes`` of column data:

* An efficient CPU engine needs at most one pass over the data, so its
  runtime is upper-bounded by ``total_bytes / B_c``.
* A GPU coprocessor must ship the same bytes over PCIe, so even with
  perfect overlap of transfer and execution its runtime is lower-bounded by
  ``total_bytes / B_p``.

Because PCIe bandwidth is lower than CPU memory bandwidth on every modern
platform, the coprocessor's lower bound exceeds the CPU's upper bound --
the paper's argument that the coprocessor model cannot win against a good
CPU implementation.
"""

from __future__ import annotations

from repro.hardware.interconnect import PCIeLink
from repro.hardware.presets import DEFAULT_PCIE, INTEL_I7_6900, NVIDIA_V100
from repro.hardware.specs import CPUSpec, GPUSpec
from repro.models.base import ModelPrediction


def cpu_query_upper_bound(total_bytes: float, spec: CPUSpec = INTEL_I7_6900) -> ModelPrediction:
    """Upper bound on an efficient CPU engine's runtime: one pass over the data."""
    if total_bytes < 0:
        raise ValueError("byte count must be non-negative")
    seconds = total_bytes / spec.dram_read_bandwidth
    return ModelPrediction(seconds=seconds, terms={"single_pass_scan": seconds}, combination="sum")


def coprocessor_query_lower_bound(
    total_bytes: float,
    gpu_kernel_seconds: float = 0.0,
    pcie_bandwidth: float = DEFAULT_PCIE,
    result_bytes: float = 0.0,
) -> ModelPrediction:
    """Lower bound on a GPU coprocessor's runtime for the same query.

    With perfect overlap the runtime is the slower of the PCIe transfer and
    the GPU kernel; the (usually tiny) result transfer back is added on top.
    """
    if total_bytes < 0 or result_bytes < 0 or gpu_kernel_seconds < 0:
        raise ValueError("inputs must be non-negative")
    link = PCIeLink(bandwidth_bytes_per_s=pcie_bandwidth)
    transfer_s = link.transfer_seconds(total_bytes)
    bound = max(transfer_s, gpu_kernel_seconds)
    result_s = link.transfer_seconds(result_bytes)
    return ModelPrediction(
        seconds=bound + result_s,
        terms={"overlapped_transfer_or_kernel": bound, "result_transfer": result_s},
        combination="sum",
    )


def coprocessor_vs_cpu_ratio(
    total_bytes: float,
    cpu_spec: CPUSpec = INTEL_I7_6900,
    pcie_bandwidth: float = DEFAULT_PCIE,
) -> float:
    """Ratio of the coprocessor lower bound to the CPU upper bound (>1 means CPU wins)."""
    cpu = cpu_query_upper_bound(total_bytes, cpu_spec)
    gpu = coprocessor_query_lower_bound(total_bytes, pcie_bandwidth=pcie_bandwidth)
    if cpu.seconds == 0:
        return float("inf")
    return gpu.seconds / cpu.seconds
