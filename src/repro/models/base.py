"""Shared model output type."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ModelPrediction:
    """A model-predicted runtime with its component terms.

    Attributes:
        seconds: Predicted runtime in seconds.
        terms: Named component terms (seconds) whose combination (sum or
            max, depending on the model) produced the total; kept for
            reporting and for testing individual terms.
        combination: How the terms were combined: ``"sum"`` or ``"max"``.
    """

    seconds: float
    terms: dict[str, float] = field(default_factory=dict)
    combination: str = "sum"

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    def term(self, name: str) -> float:
        return self.terms[name]
