"""Projection cost model (Section 4.1).

``runtime = 2 * 4 * N / B_r + 4 * N / B_w``

The first term is the time to stream the two 4-byte input columns, the
second the time to write the 4-byte result column.  The same formula applies
to the CPU and the GPU with their respective bandwidths.
"""

from __future__ import annotations

from repro.hardware.presets import INTEL_I7_6900, NVIDIA_V100
from repro.hardware.specs import CPUSpec, GPUSpec
from repro.models.base import ModelPrediction


def project_model(
    num_rows: int,
    read_bandwidth: float,
    write_bandwidth: float,
    num_input_columns: int = 2,
    value_bytes: int = 4,
) -> ModelPrediction:
    """Bandwidth-saturated runtime of a projection over ``num_rows`` rows."""
    if num_rows < 0:
        raise ValueError("row count must be non-negative")
    read_s = num_input_columns * value_bytes * num_rows / read_bandwidth
    write_s = value_bytes * num_rows / write_bandwidth
    return ModelPrediction(
        seconds=read_s + write_s,
        terms={"read_inputs": read_s, "write_output": write_s},
        combination="sum",
    )


def cpu_project_model(num_rows: int, spec: CPUSpec = INTEL_I7_6900) -> ModelPrediction:
    """Projection model instantiated with the paper's CPU bandwidths."""
    return project_model(num_rows, spec.dram_read_bandwidth, spec.dram_write_bandwidth)


def gpu_project_model(num_rows: int, spec: GPUSpec = NVIDIA_V100) -> ModelPrediction:
    """Projection model instantiated with the paper's GPU bandwidths."""
    return project_model(num_rows, spec.global_read_bandwidth, spec.global_write_bandwidth)
