"""Radix partitioning / radix sort cost model (Section 4.4).

* Histogram phase: read the key column, write a (negligible) histogram::

      runtime_histogram = 4 * R / B_r

* Shuffle phase: read key and payload columns, write the partitioned key
  and payload columns::

      runtime_shuffle = 2 * 4 * R / B_r + 2 * 4 * R / B_w

* A full radix sort is the sum of its per-pass histogram and shuffle times.
"""

from __future__ import annotations

from repro.hardware.presets import INTEL_I7_6900, NVIDIA_V100
from repro.hardware.specs import CPUSpec, GPUSpec
from repro.models.base import ModelPrediction


def radix_histogram_model(num_rows: int, read_bandwidth: float, key_bytes: int = 4) -> ModelPrediction:
    """Bandwidth-saturated histogram-phase runtime."""
    if num_rows < 0:
        raise ValueError("row count must be non-negative")
    read_s = key_bytes * num_rows / read_bandwidth
    return ModelPrediction(seconds=read_s, terms={"read_keys": read_s}, combination="sum")


def radix_shuffle_model(
    num_rows: int,
    read_bandwidth: float,
    write_bandwidth: float,
    key_bytes: int = 4,
    payload_bytes: int = 4,
) -> ModelPrediction:
    """Bandwidth-saturated shuffle-phase runtime."""
    if num_rows < 0:
        raise ValueError("row count must be non-negative")
    tuple_bytes = key_bytes + payload_bytes
    read_s = tuple_bytes * num_rows / read_bandwidth
    write_s = tuple_bytes * num_rows / write_bandwidth
    return ModelPrediction(
        seconds=read_s + write_s,
        terms={"read_tuples": read_s, "write_tuples": write_s},
        combination="sum",
    )


def radix_sort_model(
    num_rows: int,
    num_passes: int,
    read_bandwidth: float,
    write_bandwidth: float,
) -> ModelPrediction:
    """Full radix sort: ``num_passes`` histogram + shuffle rounds."""
    if num_passes <= 0:
        raise ValueError("a radix sort needs at least one pass")
    hist = radix_histogram_model(num_rows, read_bandwidth)
    shuffle = radix_shuffle_model(num_rows, read_bandwidth, write_bandwidth)
    per_pass = hist.seconds + shuffle.seconds
    return ModelPrediction(
        seconds=num_passes * per_pass,
        terms={"per_pass": per_pass, "passes": float(num_passes)},
        combination="sum",
    )


def cpu_radix_sort_model(num_rows: int, num_passes: int = 4, spec: CPUSpec = INTEL_I7_6900) -> ModelPrediction:
    """CPU LSB radix sort model (4 passes of 8 bits for 32-bit keys)."""
    return radix_sort_model(num_rows, num_passes, spec.dram_read_bandwidth, spec.dram_write_bandwidth)


def gpu_radix_sort_model(num_rows: int, num_passes: int = 4, spec: GPUSpec = NVIDIA_V100) -> ModelPrediction:
    """GPU MSB radix sort model (4 passes of 8 bits for 32-bit keys)."""
    return radix_sort_model(num_rows, num_passes, spec.global_read_bandwidth, spec.global_write_bandwidth)
