"""Selection-scan cost model (Section 4.2).

``runtime = 4 * N / B_r + 4 * sigma * N / B_w``

The whole input column is read; only the matching entries (fraction
``sigma``) are written out.
"""

from __future__ import annotations

from repro.hardware.presets import INTEL_I7_6900, NVIDIA_V100
from repro.hardware.specs import CPUSpec, GPUSpec
from repro.models.base import ModelPrediction


def select_model(
    num_rows: int,
    selectivity: float,
    read_bandwidth: float,
    write_bandwidth: float,
    value_bytes: int = 4,
) -> ModelPrediction:
    """Bandwidth-saturated runtime of a selection scan."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be within [0, 1]")
    if num_rows < 0:
        raise ValueError("row count must be non-negative")
    read_s = value_bytes * num_rows / read_bandwidth
    write_s = value_bytes * selectivity * num_rows / write_bandwidth
    return ModelPrediction(
        seconds=read_s + write_s,
        terms={"read_input": read_s, "write_matches": write_s},
        combination="sum",
    )


def cpu_select_model(num_rows: int, selectivity: float, spec: CPUSpec = INTEL_I7_6900) -> ModelPrediction:
    """Selection model with the paper's CPU bandwidths."""
    return select_model(num_rows, selectivity, spec.dram_read_bandwidth, spec.dram_write_bandwidth)


def gpu_select_model(num_rows: int, selectivity: float, spec: GPUSpec = NVIDIA_V100) -> ModelPrediction:
    """Selection model with the paper's GPU bandwidths."""
    return select_model(num_rows, selectivity, spec.global_read_bandwidth, spec.global_write_bandwidth)
