"""Full-query cost model for the SSB case study q2.1 (Section 5.3).

The probe-phase runtime of a star-join query is modelled as three terms:

* ``r1`` -- streaming the fact-table columns: the first column is read in
  full; each later column is accessed only for rows that survived the
  previous joins, so its traffic is the smaller of a full-column scan and
  one cache line per surviving row.
* ``r2`` -- probing the dimension hash tables: the small supplier and date
  tables are read once into cache; the part hash table is probed once per
  surviving row, with a fraction ``pi`` of the probes hitting the cache
  level that (partially) holds it.
* ``r3`` -- reading and writing the aggregate/result table.

The same formulas apply to the CPU by substituting the CPU cache sizes --
where all three hash tables fit in the 20 MB L3, making ``pi`` effectively
one -- and the CPU bandwidths; the paper's point is that the measured CPU
runtime still exceeds this model because CPUs cannot hide the latency of
irregular probe accesses, while the GPU's warp scheduling can.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.presets import INTEL_I7_6900, NVIDIA_V100
from repro.hardware.specs import CPUSpec, GPUSpec
from repro.models.base import ModelPrediction


@dataclass(frozen=True)
class QueryCostInputs:
    """Cardinalities and selectivities describing a 3-join SSB query plan."""

    fact_rows: int
    supplier_rows: int
    part_rows: int
    date_rows: int
    join1_selectivity: float
    join2_selectivity: float
    num_fact_columns: int = 4
    value_bytes: int = 4

    @classmethod
    def ssb_q21_sf(cls, scale_factor: float = 20.0) -> "QueryCostInputs":
        """The q2.1 parameters at a given SSB scale factor.

        At SF 20 the paper quotes 120 M fact rows, 40 K suppliers, 1 M parts
        and 2556 dates, with join selectivities of 1/5 (s_region) and 1/25
        (p_category).
        """
        # SSB sizing rules: lineorder = 6M * SF, supplier = 2k * SF,
        # part = 200k * (1 + floor(log2(SF))), date = ~7 years of days.
        part_rows = int(200_000 * (1 + max(0, math.floor(math.log2(max(scale_factor, 1.0))))))
        return cls(
            fact_rows=int(6_000_000 * scale_factor),
            supplier_rows=int(2_000 * scale_factor),
            part_rows=part_rows,
            date_rows=2_556,
            join1_selectivity=1.0 / 5.0,
            join2_selectivity=1.0 / 25.0,
        )


def _column_access_bytes(fact_rows: int, surviving_rows: float, line_bytes: int, value_bytes: int) -> float:
    """Bytes touched when reading a fact column for ``surviving_rows`` rows.

    The smaller of a full sequential scan of the column and one cache line
    per surviving row (the ``min`` terms of r1 in the paper).
    """
    full_scan = value_bytes * fact_rows
    per_row = surviving_rows * line_bytes
    return min(full_scan, per_row)


def ssb_q21_model(
    inputs: QueryCostInputs,
    read_bandwidth: float,
    write_bandwidth: float,
    line_bytes: int,
    cache_bytes_for_part: float,
    part_table_fits: bool,
) -> ModelPrediction:
    """The r1 + r2 + r3 model of Section 5.3.

    Args:
        inputs: Query cardinalities and selectivities.
        read_bandwidth / write_bandwidth: Device bandwidths.
        line_bytes: Memory-transaction granularity ``C``.
        cache_bytes_for_part: Cache capacity left for the part hash table
            after the supplier and date tables claimed their share.
        part_table_fits: True when the part hash table fully fits in cache
            (the CPU case); then no probe goes to device memory.
    """
    s1 = inputs.join1_selectivity
    s2 = inputs.join2_selectivity
    L = inputs.fact_rows
    vb = inputs.value_bytes
    C = line_bytes

    # Perfect-hashing sizes: two 4-byte values per build row.
    part_ht_bytes = 2.0 * vb * inputs.part_rows
    supplier_ht_bytes = 2.0 * vb * inputs.supplier_rows
    date_ht_bytes = 2.0 * vb * inputs.date_rows

    # r1: fact-table column accesses.  Column 1 (suppkey) is read in full;
    # partkey is needed for rows surviving join 1; orderdate and revenue for
    # rows surviving joins 1 and 2.
    col1 = float(vb * L)
    col2 = _column_access_bytes(L, L * s1, C, vb)
    col3 = _column_access_bytes(L, L * s1 * s2, C, vb)
    col4 = _column_access_bytes(L, L * s1 * s2, C, vb)
    r1 = (col1 + col2 + col3 + col4) / read_bandwidth

    # r2: probing the dimension hash tables.  Following the paper, the warm-up
    # reads of the supplier and date hash tables cost 2*|S| and 2*|D|
    # cache-line accesses; the part hash table either also fits (CPU: 2*|P|
    # accesses) or is probed once per surviving row with a fraction pi of the
    # probes hitting the cache (GPU).
    if part_table_fits:
        pi = 1.0
        part_accesses = 2.0 * inputs.part_rows
    else:
        pi = min(cache_bytes_for_part / part_ht_bytes, 1.0)
        part_accesses = (1.0 - pi) * (L * s1)
    r2_accesses = 2.0 * inputs.supplier_rows + 2.0 * inputs.date_rows + part_accesses
    r2 = r2_accesses * C / read_bandwidth

    # r3: result read/write.  The aggregate output is one row per surviving
    # fact row in the worst case (before grouping collapses them).
    result_rows = L * s1 * s2
    r3 = result_rows * C / read_bandwidth + result_rows * C / write_bandwidth

    return ModelPrediction(
        seconds=r1 + r2 + r3,
        terms={"r1_fact_columns": r1, "r2_hash_probes": r2, "r3_result": r3},
        combination="sum",
    )


def gpu_ssb_q21_model(inputs: QueryCostInputs, spec: GPUSpec = NVIDIA_V100) -> ModelPrediction:
    """q2.1 model on the GPU: the part hash table only partially fits in L2."""
    supplier_ht = 2.0 * inputs.value_bytes * inputs.supplier_rows
    date_ht = 2.0 * inputs.value_bytes * inputs.date_rows
    available = max(float(spec.l2_capacity_bytes) - supplier_ht - date_ht, 0.0)
    return ssb_q21_model(
        inputs,
        read_bandwidth=spec.global_read_bandwidth,
        write_bandwidth=spec.global_write_bandwidth,
        line_bytes=spec.global_access_granularity_bytes,
        cache_bytes_for_part=available,
        part_table_fits=False,
    )


def cpu_ssb_q21_model(inputs: QueryCostInputs, spec: CPUSpec = INTEL_I7_6900) -> ModelPrediction:
    """q2.1 model on the CPU: all three hash tables fit in the 20 MB L3."""
    l3 = spec.cache_named("L3")
    return ssb_q21_model(
        inputs,
        read_bandwidth=spec.dram_read_bandwidth,
        write_bandwidth=spec.dram_write_bandwidth,
        line_bytes=spec.cache_line_bytes,
        cache_bytes_for_part=float(l3.capacity_bytes),
        part_table_fits=True,
    )
