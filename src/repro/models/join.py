"""Hash-join probe cost model (Section 4.3).

Two cases, depending on whether the hash table fits in the last cache level
that can hold it:

* Hash table fits in the level-K cache::

      runtime = max( 4 * 2 * |P| / B_r,
                     (1 - pi_{K-1}) * |P| * C / B_K )

  The scan of the probe relation (two 4-byte columns) and the probe traffic
  proceed in parallel; the slower one is the bottleneck.

* Hash table larger than the last-level cache::

      runtime = 4 * 2 * |P| / B_r + (1 - pi) * |P| * C / B_r

  where ``pi`` is the probability a probe hits the LLC.  Probe misses now
  share the memory bus with the scan, so the terms add.

``C`` is the memory-transaction granularity: 64 bytes on the CPU, 128 bytes
on the GPU -- the factor behind the paper's observation that GPU random
probes move twice the data per access.
"""

from __future__ import annotations

from repro.hardware.presets import INTEL_I7_6900, NVIDIA_V100
from repro.hardware.specs import CPUSpec, GPUSpec
from repro.models.base import ModelPrediction


def join_probe_model(
    probe_rows: int,
    hash_table_bytes: float,
    cache_levels: list[tuple[float, float | None]],
    read_bandwidth: float,
    line_bytes: int,
    tuple_bytes: int = 8,
    cached_line_bytes: int | None = None,
) -> ModelPrediction:
    """General probe-phase model.

    Args:
        probe_rows: ``|P|``, the probe-relation cardinality.
        hash_table_bytes: ``H``, the hash-table size.
        cache_levels: Ordered ``(capacity_bytes, bandwidth)`` pairs from the
            innermost level to the LLC.  ``bandwidth`` may be ``None`` for
            levels whose bandwidth never binds (they only filter accesses).
        read_bandwidth: Device-memory read bandwidth ``B_r``.
        line_bytes: Memory-transaction granularity ``C`` for accesses that
            reach device memory.
        tuple_bytes: Bytes of probe-side data scanned per row (two 4-byte
            columns in Q4).
        cached_line_bytes: Transaction granularity for probes served by a
            cache level (defaults to ``line_bytes``; the GPU L2 serves
            64-byte lines while global-memory transactions move 128 bytes).
    """
    if cached_line_bytes is None:
        cached_line_bytes = line_bytes
    if probe_rows < 0:
        raise ValueError("probe cardinality must be non-negative")
    scan_s = tuple_bytes * probe_rows / read_bandwidth

    # Find the last level that can hold the table.
    fitting_level = None
    for index, (capacity, _bandwidth) in enumerate(cache_levels):
        if hash_table_bytes <= capacity:
            fitting_level = index
            break

    if fitting_level is not None:
        capacity, bandwidth = cache_levels[fitting_level]
        if fitting_level == 0:
            inner_hit = 1.0
        else:
            inner_capacity = cache_levels[fitting_level - 1][0]
            inner_hit = min(inner_capacity / hash_table_bytes, 1.0) if hash_table_bytes > 0 else 1.0
        if bandwidth is None:
            probe_s = 0.0
        else:
            probe_s = (1.0 - inner_hit) * probe_rows * cached_line_bytes / bandwidth
        total = max(scan_s, probe_s)
        return ModelPrediction(
            seconds=total,
            terms={"scan_probe_relation": scan_s, "probe_hash_table": probe_s},
            combination="max",
        )

    llc_capacity = cache_levels[-1][0]
    llc_hit = min(llc_capacity / hash_table_bytes, 1.0) if hash_table_bytes > 0 else 1.0
    probe_s = (1.0 - llc_hit) * probe_rows * line_bytes / read_bandwidth
    return ModelPrediction(
        seconds=scan_s + probe_s,
        terms={"scan_probe_relation": scan_s, "probe_hash_table": probe_s},
        combination="sum",
    )


def cpu_join_probe_model(
    probe_rows: int, hash_table_bytes: float, spec: CPUSpec = INTEL_I7_6900
) -> ModelPrediction:
    """Probe model instantiated with the paper's CPU cache hierarchy.

    The CPU levels considered are the per-core L2 (probes essentially free
    relative to the DRAM-bound scan) and the shared L3 at its measured
    bandwidth; beyond the L3 each miss moves a 64-byte line from DRAM.
    """
    l2 = spec.cache_named("L2")
    l3 = spec.cache_named("L3")
    cache_levels = [
        (float(l2.capacity_bytes), None),
        (float(l3.capacity_bytes), l3.bandwidth_bytes_per_s),
    ]
    return join_probe_model(
        probe_rows,
        hash_table_bytes,
        cache_levels,
        spec.dram_read_bandwidth,
        spec.cache_line_bytes,
    )


def gpu_join_probe_model(
    probe_rows: int, hash_table_bytes: float, spec: GPUSpec = NVIDIA_V100
) -> ModelPrediction:
    """Probe model instantiated with the paper's GPU cache hierarchy."""
    cache_levels = [
        (float(spec.l1_capacity_per_sm_bytes), None),
        (float(spec.l2_capacity_bytes), spec.l2_bandwidth),
    ]
    return join_probe_model(
        probe_rows,
        hash_table_bytes,
        cache_levels,
        spec.global_read_bandwidth,
        spec.global_access_granularity_bytes,
        cached_line_bytes=spec.global_access_granularity_bytes // 2,
    )
