"""Concurrent query serving: admission control, timeouts, request traces.

The service layer turns the batch-oriented :class:`~repro.api.Session` into
a concurrent query *server*:

* :mod:`repro.service.service` -- :class:`QueryService`, an asyncio front
  end admitting queries through a bounded queue onto the session's shared
  worker pool, with ``reject``/``shed`` overload policies, per-request
  timeouts, graceful drain, and typed failures (:class:`OverloadError`,
  :class:`QueryTimeoutError`, :class:`ServiceClosedError`).
* :mod:`repro.service.trace` -- :class:`RequestTrace`, the per-request
  record (queue/execute timestamps, congestion seen at admission, cache
  counter deltas, attempts/faults/plane) every admitted request carries.

Failure handling (the degradation ladder) is configured through
:class:`~repro.faults.ResiliencePolicy` (re-exported here): transient
failures retry with backoff through re-admission, and repeated shard-plane
failures trip a breaker that routes to ``shards=1`` until a probe heals.

The workload driver in :mod:`repro.workload` replays mixed query traffic
against this layer and reports tail latencies.
"""

from repro.faults import ResiliencePolicy
from repro.service.service import (
    OVERLOAD_POLICIES,
    IngestResult,
    OverloadError,
    QueryService,
    QueryTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceResult,
    ServiceStats,
)
from repro.service.trace import TERMINAL_STATUSES, RequestTrace

__all__ = [
    "OVERLOAD_POLICIES",
    "IngestResult",
    "OverloadError",
    "QueryService",
    "QueryTimeoutError",
    "RequestTrace",
    "ResiliencePolicy",
    "ServiceClosedError",
    "ServiceError",
    "ServiceResult",
    "ServiceStats",
    "TERMINAL_STATUSES",
]
