"""An asyncio query service with admission control over a :class:`Session`.

:class:`QueryService` turns the batch-oriented Session into something that
can *serve*: any number of concurrent asyncio tasks ``await submit(...)``
queries, the service admits them through a bounded queue onto the session's
shared worker pool (:attr:`repro.api.Session.executor`), and at most
``max_inflight`` queries execute at once.  The session's caches are already
``ContextVar``-scoped and lock-guarded, so concurrent executions share the
execution memo, build artifacts, and zone maps safely.

Overload is a first-class state, not a crash: when the queue is full the
service either **rejects** the new request with a typed
:class:`OverloadError` carrying the queue stats the client needs for
backoff, or **sheds** the oldest queued request of the most-represented
class (``overload="shed"``) so a burst of one query class cannot starve the
others.  Per-request timeouts cover the whole queued+running lifetime, and
:meth:`QueryService.close` drains gracefully: no new admissions, every
admitted request finishes.

Failure is the other first-class state (the degradation ladder, governed by
the session's :class:`~repro.faults.ResiliencePolicy`):

* **Retry rung** -- a transient execution failure puts the request into
  ``backoff`` (exponential delay, deterministic per-request jitter) and
  then *re-admits* it: the retry passes the same overload gate as a fresh
  submission, so retries pay for their own queueing instead of jumping the
  line.  The request's one timeout spans all attempts.
* **Breaker rung** -- ``breaker_threshold`` consecutive shard-plane
  failures (monolithic fallbacks or pool rebuilds observed in the counter
  delta) trip a breaker that routes queries to ``shards=1``; every
  ``breaker_probe_every``-th dispatch while open probes the shard plane at
  full width, and a clean probe closes it.

Every trace records ``attempts``, the ``faults`` absorbed, and the
``plane`` that finally answered.

All service state mutates on the event-loop thread only (``submit``,
dispatch, completion callbacks, timeouts, retries); worker threads touch
nothing but the session, so the service itself needs no locks.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import Counter, deque
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.api.builder import QueryBuilder
from repro.api.resultset import ResultSet
from repro.api.session import Session
from repro.faults import SERVICE_EXECUTE, ResiliencePolicy
from repro.service.trace import RequestTrace
from repro.ssb.queries import SSBQuery

#: Overload policies: refuse the newcomer, or evict the oldest queued
#: request of the most-represented class to make room for it.
OVERLOAD_POLICIES = ("reject", "shed")


class ServiceError(RuntimeError):
    """Base of the service's typed failures."""


class OverloadError(ServiceError):
    """The bounded queue refused a request (reject) or evicted one (shed).

    Carries the queue stats a client needs to back off intelligently:
    the depth and inflight count at refusal time, the configured limits,
    and which policy fired.  ``shed=True`` marks the *evicted* request's
    error (its submitter receives this exception); the newcomer that
    triggered the shed is admitted normally.
    """

    def __init__(
        self,
        message: str,
        *,
        policy: str,
        queue_depth: int,
        max_queue_depth: int,
        inflight: int,
        max_inflight: int,
        class_tag: Optional[str] = None,
        shed: bool = False,
    ) -> None:
        super().__init__(message)
        self.policy = policy
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
        self.inflight = inflight
        self.max_inflight = max_inflight
        self.class_tag = class_tag
        self.shed = shed


class QueryTimeoutError(ServiceError):
    """A request exceeded its timeout while queued or running.

    ``where`` says which: ``"queued"`` requests are removed from the queue
    and never execute; ``"running"`` requests cannot be interrupted
    mid-kernel -- the worker finishes and the result is discarded.
    """

    def __init__(self, message: str, *, timeout_s: float, where: str) -> None:
        super().__init__(message)
        self.timeout_s = timeout_s
        self.where = where


class ServiceClosedError(ServiceError):
    """Submit after :meth:`QueryService.close` (or a non-drain shutdown)."""


@dataclass(frozen=True)
class ServiceResult:
    """One successful execution: the decoded answer plus its trace."""

    result: ResultSet
    trace: RequestTrace

    @property
    def latency_ms(self) -> float:
        return self.trace.total_ms or 0.0


@dataclass(frozen=True)
class IngestResult:
    """One successful ingest: the published version plus its trace."""

    table: str
    version: int
    rows: int
    trace: RequestTrace

    @property
    def latency_ms(self) -> float:
        return self.trace.total_ms or 0.0


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time summary of everything the service has seen."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    shed: int = 0
    timed_out: int = 0
    failed: int = 0
    cancelled: int = 0
    queued: int = 0
    inflight: int = 0
    peak_queue_depth: int = 0
    peak_inflight: int = 0
    #: Transient failures absorbed by the retry rung (attempts beyond each
    #: request's first), and times the shard breaker tripped open.
    retries: int = 0
    breaker_trips: int = 0

    @property
    def settled(self) -> int:
        """Requests that reached a terminal state."""
        return (
            self.completed + self.rejected + self.shed
            + self.timed_out + self.failed + self.cancelled
        )


@dataclass(eq=False)  # identity semantics: requests live in the backoff set
class _Request:
    """Internal per-request state: the spec, its future, and its trace.

    ``kind`` is ``"query"`` or ``"ingest"``; ingest requests carry
    ``payload = (table, arrays, rows)`` instead of a query spec.  Both
    kinds flow through the same admission queue, so a workload that
    interleaves reads and writes is governed by one overload policy.
    """

    query: Optional[SSBQuery]
    engine: str
    trace: RequestTrace
    future: asyncio.Future
    timeout_handle: Optional[asyncio.TimerHandle] = field(default=None, repr=False)
    kind: str = "query"
    payload: Optional[tuple] = field(default=None, repr=False)
    #: Current execution attempt (1-based); mirrored onto the trace.
    attempt: int = 1
    #: The shard width this dispatch chose (None = service default off).
    shards_used: Optional[int] = None
    #: Whether this dispatch is a breaker probe at full shard width.
    probe: bool = field(default=False, repr=False)
    #: The pending backoff timer between attempts, if any.
    retry_handle: Optional[asyncio.TimerHandle] = field(default=None, repr=False)


class QueryService:
    """Admission-controlled concurrent query execution over one Session.

    Usage::

        session = Session(db)
        async with QueryService(session, max_inflight=4, max_queue_depth=64) as svc:
            result = await svc.submit(QUERIES["q2.1"], class_tag="q2.1")
            print(result.result, result.trace)

    ``max_inflight`` bounds concurrent executions on the session's worker
    pool; ``max_queue_depth`` bounds how many admitted requests may wait.
    ``overload`` picks what happens when both are full (see
    :data:`OVERLOAD_POLICIES`); ``timeout_s`` is the default per-request
    timeout (``submit(timeout=...)`` overrides per call).  Answers are
    byte-identical to ``session.run`` -- the service adds scheduling, never
    execution semantics.
    """

    def __init__(
        self,
        session: Session,
        *,
        engine: str = "cpu",
        max_inflight: int = 2,
        max_queue_depth: int = 64,
        overload: str = "reject",
        timeout_s: Optional[float] = None,
        optimize: bool = False,
        trace_limit: int = 100_000,
        shards: Optional[int] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {max_queue_depth}")
        if overload not in OVERLOAD_POLICIES:
            raise ValueError(f"overload must be one of {OVERLOAD_POLICIES}, got {overload!r}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.session = session
        self.engine = engine
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self.overload = overload
        self.timeout_s = timeout_s
        self.optimize = optimize
        #: Intra-query process parallelism: every served query dispatches to
        #: the session's shard pool at this width.  The blocking shard waits
        #: happen on the session's executor *threads*, so the asyncio loop
        #: never blocks -- admission, timeouts, and shedding stay live while
        #: worker processes chew on shards.
        self.shards = shards
        #: The degradation ladder's knobs; defaults to the session's policy
        #: so one ``Session(resilience=...)`` configures every layer.
        self.resilience = resilience if resilience is not None else session.resilience
        self.traces: deque = deque(maxlen=trace_limit)
        self._queue: deque = deque()
        self._inflight = 0
        self._closing = False
        self._idle_waiters: list = []
        self._ids = itertools.count(1)
        #: Requests sleeping between attempts (their backoff timers are
        #: cancelled by a non-drain close; drain waits for them).
        self._backoff: set = set()
        self._breaker_open = False
        self._breaker_failures = 0
        self._breaker_dispatches = 0
        self._stats = {
            "submitted": 0, "completed": 0, "rejected": 0, "shed": 0,
            "timed_out": 0, "failed": 0, "cancelled": 0,
            "peak_queue_depth": 0, "peak_inflight": 0,
            "retries": 0, "breaker_trips": 0,
        }
        # Fail fast on a bad default engine, and pre-instantiate it so
        # worker threads only ever *read* the session's engine map.
        session.engine(engine)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """Counters so far plus the live queue/inflight gauges."""
        return ServiceStats(queued=len(self._queue), inflight=self._inflight, **self._stats)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def inflight(self) -> int:
        return self._inflight

    # ------------------------------------------------------------------
    async def submit(
        self,
        query: "SSBQuery | QueryBuilder",
        *,
        engine: Optional[str] = None,
        class_tag: Optional[str] = None,
        timeout: "float | None | object" = ...,
    ) -> ServiceResult:
        """Admit one query and await its result.

        Raises :class:`OverloadError` if admission is refused,
        :class:`QueryTimeoutError` if the request's timeout fires first,
        :class:`ServiceClosedError` after shutdown, and whatever the
        execution itself raises (bad column, bad engine, ...).
        """
        if self._closing:
            raise ServiceClosedError("QueryService is closed; no new submissions")
        loop = asyncio.get_running_loop()
        prepared = self.session.prepare(query, optimize=self.optimize)
        engine_name = engine if engine is not None else self.engine
        self.session.engine(engine_name)  # fail fast, on the loop thread
        trace = RequestTrace(
            request_id=next(self._ids),
            query=prepared.name,
            class_tag=class_tag if class_tag is not None else prepared.name,
            engine=engine_name,
            enqueued_at=time.perf_counter(),
            enqueued_wall=time.time(),
            queue_depth_seen=len(self._queue),
            inflight_seen=self._inflight,
        )
        request = self._admit(loop, trace, query=prepared, engine=engine_name, timeout=timeout)
        return await request.future

    async def ingest(
        self,
        table: str,
        arrays: dict,
        *,
        class_tag: Optional[str] = None,
        timeout: "float | None | object" = ...,
    ) -> IngestResult:
        """Admit one micro-batch append and await its published version.

        Ingests flow through the same bounded queue and worker pool as
        queries, so reads and writes interleave under one admission policy.
        The append itself is seal-then-publish with an atomic version flip
        (:meth:`repro.storage.Table.append`): a query admitted at version
        ``v`` never observes a torn batch -- it reads all of ``v`` or all
        of a later fully-sealed version.  Registered standing queries are
        refreshed as part of the request, on the worker.
        """
        if self._closing:
            raise ServiceClosedError("QueryService is closed; no new submissions")
        loop = asyncio.get_running_loop()
        self.session.db.table(table)  # fail fast on an unknown table
        rows = len(next(iter(arrays.values()))) if arrays else 0
        trace = RequestTrace(
            request_id=next(self._ids),
            query=f"ingest:{table}",
            class_tag=class_tag if class_tag is not None else f"ingest:{table}",
            engine="-",
            enqueued_at=time.perf_counter(),
            enqueued_wall=time.time(),
            queue_depth_seen=len(self._queue),
            inflight_seen=self._inflight,
        )
        request = self._admit(
            loop, trace, kind="ingest", payload=(table, arrays, rows), timeout=timeout
        )
        return await request.future

    def _admit(
        self,
        loop: asyncio.AbstractEventLoop,
        trace: RequestTrace,
        *,
        query: Optional[SSBQuery] = None,
        engine: str = "-",
        kind: str = "query",
        payload: Optional[tuple] = None,
        timeout: "float | None | object" = ...,
    ) -> _Request:
        """Shared admission tail of :meth:`submit` and :meth:`ingest`."""
        self._stats["submitted"] += 1
        if self._inflight >= self.max_inflight and len(self._queue) >= self.max_queue_depth:
            self._overloaded(trace)
        request = _Request(query, engine, trace, loop.create_future(), kind=kind, payload=payload)
        self._queue.append(request)
        self._stats["peak_queue_depth"] = max(self._stats["peak_queue_depth"], len(self._queue))
        timeout_s = self.timeout_s if timeout is ... else timeout
        if timeout_s is not None:
            trace.timeout_s = timeout_s
            request.timeout_handle = loop.call_later(timeout_s, self._expire, request, timeout_s)
        self._dispatch(loop)
        return request

    # ------------------------------------------------------------------
    def _overloaded(self, trace: RequestTrace) -> None:
        """Queue full: reject the newcomer, or shed a queued victim."""
        stats = dict(
            queue_depth=len(self._queue),
            max_queue_depth=self.max_queue_depth,
            inflight=self._inflight,
            max_inflight=self.max_inflight,
        )
        if self.overload == "reject" or not self._queue:
            # No queued victim to shed (max_queue_depth=0): reject instead.
            trace.status = "rejected"
            trace.finished_at = time.perf_counter()
            self._stats["rejected"] += 1
            self.traces.append(trace)
            raise OverloadError(
                f"queue full ({stats['queue_depth']}/{self.max_queue_depth} queued, "
                f"{self._inflight}/{self.max_inflight} inflight); request "
                f"{trace.class_tag!r} rejected",
                policy="reject", class_tag=trace.class_tag, **stats,
            )
        # Shed: evict the oldest queued request of the most-represented
        # class, so a burst of one class pays for its own burst instead of
        # squeezing out minority classes.
        counts = Counter(queued.trace.class_tag for queued in self._queue)
        heaviest = max(counts.values())
        victim = next(r for r in self._queue if counts[r.trace.class_tag] == heaviest)
        self._queue.remove(victim)
        if victim.timeout_handle is not None:
            victim.timeout_handle.cancel()
        victim.trace.status = "shed"
        victim.trace.finished_at = time.perf_counter()
        self._stats["shed"] += 1
        self.traces.append(victim.trace)
        victim.future.set_exception(
            OverloadError(
                f"request {victim.trace.class_tag!r} shed to admit {trace.class_tag!r} "
                f"(class had {heaviest} queued)",
                policy="shed", class_tag=victim.trace.class_tag, shed=True, **stats,
            )
        )
        self._notify_idle()

    def _dispatch(self, loop: asyncio.AbstractEventLoop) -> None:
        """Move queued requests onto the worker pool up to ``max_inflight``."""
        while self._queue and self._inflight < self.max_inflight:
            request = self._queue.popleft()
            request.trace.status = "running"
            request.trace.dequeued_at = time.perf_counter()
            request.shards_used, request.probe = self._route(request)
            self._inflight += 1
            self._stats["peak_inflight"] = max(self._stats["peak_inflight"], self._inflight)
            pool_future = loop.run_in_executor(self.session.executor, self._execute, request)
            pool_future.add_done_callback(
                lambda done, request=request: self._finish(request, done)
            )

    def _route(self, request: _Request) -> "tuple[Optional[int], bool]":
        """The breaker's routing decision: ``(shard width, is_probe)``.

        With the breaker open, queries run at ``shards=1`` (the degraded
        plane shares the monolithic cache key, so answers stay warm), and
        every ``breaker_probe_every``-th dispatch goes out at full width
        to test whether the shard plane has healed.
        """
        if request.kind != "query" or self.shards is None or self.shards <= 1:
            return self.shards, False
        if not self._breaker_open:
            return self.shards, False
        self._breaker_dispatches += 1
        if self._breaker_dispatches % self.resilience.breaker_probe_every == 0:
            return self.shards, True
        return 1, False

    def _execute(self, request: _Request):
        """Worker-thread body: run the request, bracketed by counter snapshots.

        Besides the cache-counter delta, the request captures the table
        versions it ran against: queries read them at dispatch (the
        execution snapshots each table once, so a concurrent append can
        only ever substitute a *fresher fully-sealed* version, never a torn
        one), ingests read them after their batch publishes.

        Queries carry the :data:`~repro.faults.SERVICE_EXECUTE` injection
        site here, upstream of the session run -- the exact spot the retry
        rung recovers from.  Ingests deliberately do not: an append is not
        idempotent, so the service never retries one and never injects
        ahead of one.
        """
        before = self.session.counters()
        if request.kind == "ingest":
            table, arrays, _rows = request.payload
            version = self.session.ingest(table, arrays)
            manager = getattr(self.session, "durability", None)
            if manager is not None:
                # The acknowledgement below only happens after this point,
                # so the client's success is gated on the configured
                # durability point: the WAL record (and, under ``always``,
                # its fsync) completed inside ``ingest`` before the version
                # published.  Stamp what the wait bought.
                request.trace.durability = manager.config.fsync
                request.trace.fsync_ms = manager.last_fsync_ms
            return version, self.session.counters() - before, self.session.table_versions()
        plan = self.session.faults
        if plan is not None:
            plan.fire(SERVICE_EXECUTE)
        versions = self.session.table_versions()
        result = self.session.run(
            request.query, engine=request.engine, shards=request.shards_used
        )
        return result, self.session.counters() - before, versions

    def _finish(self, request: _Request, done: asyncio.Future) -> None:
        """Loop-thread completion: settle, retry, or fall down the ladder."""
        self._inflight -= 1
        trace = request.trace
        try:
            result, delta, versions = done.result()
        except Exception as exc:
            trace.faults.append(f"attempt {request.attempt}: {type(exc).__name__}: {exc}")
            if isinstance(exc, BrokenExecutor):
                # Only unambiguously shard-shaped escapes feed the breaker:
                # a bad-column TypeError says nothing about the shard plane.
                self._note_shard_health(request, failed=True)
            if self._should_retry(request, exc):
                self._schedule_retry(request)
                self._dispatch(asyncio.get_running_loop())
                return
            trace.finished_at = time.perf_counter()
            if request.timeout_handle is not None:
                request.timeout_handle.cancel()
            if not request.future.done():  # not already timed out
                trace.status = "error"
                trace.error = f"{type(exc).__name__}: {exc}"
                self._stats["failed"] += 1
                request.future.set_exception(exc)
        else:
            trace.finished_at = time.perf_counter()
            if request.timeout_handle is not None:
                request.timeout_handle.cancel()
            trace.counters = delta
            trace.table_versions = dict(versions)
            if request.kind == "query":
                trace.plane = self._plane_of(request, delta)
                self._note_shard_health(
                    request, failed=delta.failure_fallbacks > 0 or delta.pool_rebuilds > 0
                )
            if not request.future.done():
                trace.status = "ok"
                self._stats["completed"] += 1
                if request.kind == "ingest":
                    table, _arrays, rows = request.payload
                    request.future.set_result(
                        IngestResult(table=table, version=result, rows=rows, trace=trace)
                    )
                else:
                    request.future.set_result(ServiceResult(result, trace))
            # else: timed out while running; the computed answer is discarded.
        self.traces.append(trace)
        self._dispatch(asyncio.get_running_loop())
        self._notify_idle()

    # ------------------------------------------------------------------
    # The degradation ladder (loop-thread only, like all service state)
    # ------------------------------------------------------------------
    def _plane_of(self, request: _Request, delta) -> str:
        """Which execution plane answered, read off the counter delta."""
        if delta.failure_fallbacks > 0:
            return "monolithic-fallback"
        if delta.shard_queries > 0:
            return "sharded"
        if (
            self.shards is not None
            and self.shards > 1
            and request.shards_used is not None
            and request.shards_used <= 1
        ):
            return "monolithic-breaker"
        return "monolithic"

    def _note_shard_health(self, request: _Request, *, failed: bool) -> None:
        """Feed one full-width shard outcome into the breaker."""
        if request.kind != "query" or self.shards is None or self.shards <= 1:
            return
        if request.shards_used != self.shards:
            return  # degraded dispatch: says nothing about the shard plane
        if failed:
            self._breaker_failures += 1
            if not self._breaker_open and self._breaker_failures >= self.resilience.breaker_threshold:
                self._breaker_open = True
                self._breaker_dispatches = 0
                self._stats["breaker_trips"] += 1
        else:
            self._breaker_failures = 0
            self._breaker_open = False

    @property
    def breaker_open(self) -> bool:
        """Whether the shard breaker is currently routing to ``shards=1``."""
        return self._breaker_open

    def _should_retry(self, request: _Request, exc: Exception) -> bool:
        """Whether the retry rung absorbs this failure."""
        return (
            request.kind == "query"
            and not request.future.done()  # a timed-out request stays failed
            and request.attempt < self.resilience.max_attempts
            and self.resilience.is_transient(exc)
        )

    def _schedule_retry(self, request: _Request) -> None:
        """Put the request into backoff; it re-enters admission on wake."""
        delay = self.resilience.backoff_s(request.trace.request_id, request.attempt)
        request.attempt += 1
        request.trace.attempts = request.attempt
        request.trace.status = "backoff"
        self._stats["retries"] += 1
        self._backoff.add(request)
        request.retry_handle = asyncio.get_running_loop().call_later(
            delay, self._readmit, request
        )

    def _readmit(self, request: _Request) -> None:
        """Backoff elapsed: pass the overload gate again and re-queue.

        The retry is deliberately *not* front-of-line: it pays the same
        admission toll as a fresh submission (reject settles it with
        :class:`OverloadError`; shed policy evicts a victim to seat it),
        so a failing workload cannot crowd out healthy traffic by
        retrying.
        """
        self._backoff.discard(request)
        request.retry_handle = None
        trace = request.trace
        if request.future.done():
            # Timed out (or cancelled) while backing off; _expire's running
            # branch left the trace un-appended for us to finalize.
            if trace.finished_at is None:
                trace.finished_at = time.perf_counter()
            self.traces.append(trace)
            self._notify_idle()
            return
        if self._inflight >= self.max_inflight and len(self._queue) >= self.max_queue_depth:
            try:
                self._overloaded(trace)
            except OverloadError as exc:
                if request.timeout_handle is not None:
                    request.timeout_handle.cancel()
                request.future.set_exception(exc)
                self._notify_idle()
                return
        trace.status = "queued"
        self._queue.append(request)
        self._stats["peak_queue_depth"] = max(self._stats["peak_queue_depth"], len(self._queue))
        self._dispatch(asyncio.get_running_loop())

    def _expire(self, request: _Request, timeout_s: float) -> None:
        """Timeout fired for a still-unsettled request."""
        if request.future.done():
            return
        trace = request.trace
        where = "queued" if trace.status == "queued" else "running"
        if where == "queued":
            self._queue.remove(request)
            trace.finished_at = time.perf_counter()
            self.traces.append(trace)
        trace.status = "timeout"
        self._stats["timed_out"] += 1
        request.future.set_exception(
            QueryTimeoutError(
                f"request {trace.class_tag!r} exceeded {timeout_s * 1e3:.0f}ms while {where}",
                timeout_s=timeout_s, where=where,
            )
        )
        self._notify_idle()

    # ------------------------------------------------------------------
    def _idle(self) -> bool:
        return not self._queue and self._inflight == 0 and not self._backoff

    def _notify_idle(self) -> None:
        if not self._idle():
            return
        waiters, self._idle_waiters = self._idle_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def drain(self) -> None:
        """Wait until every admitted request has reached a terminal state."""
        if self._idle():
            return
        waiter = asyncio.get_running_loop().create_future()
        self._idle_waiters.append(waiter)
        await waiter

    async def close(self, *, drain: bool = True) -> None:
        """Stop admissions; drain outstanding work (or cancel the queue).

        ``drain=True`` (graceful, the default) lets every queued, inflight,
        and backing-off request finish.  ``drain=False`` cancels queued
        requests *and* pending retries with :class:`ServiceClosedError` and
        waits only for the inflight ones (a running query cannot be
        interrupted).
        """
        self._closing = True
        if not drain:
            while self._queue:
                request = self._queue.popleft()
                self._cancel(request)
            for request in sorted(self._backoff, key=lambda r: r.trace.request_id):
                if request.retry_handle is not None:
                    request.retry_handle.cancel()
                self._cancel(request)
            self._backoff.clear()
        await self.drain()

    def _cancel(self, request: _Request) -> None:
        """Settle one not-yet-running request as cancelled (non-drain close)."""
        if request.timeout_handle is not None:
            request.timeout_handle.cancel()
        request.trace.status = "cancelled"
        request.trace.finished_at = time.perf_counter()
        self._stats["cancelled"] += 1
        self.traces.append(request.trace)
        if not request.future.done():
            request.future.set_exception(
                ServiceClosedError("QueryService shut down before execution")
            )

    async def __aenter__(self) -> "QueryService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close(drain=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryService(engine={self.engine!r}, inflight={self._inflight}/"
            f"{self.max_inflight}, queued={len(self._queue)}/{self.max_queue_depth}, "
            f"policy={self.overload!r})"
        )
