"""Per-request observability: the :class:`RequestTrace` record.

Every request admitted by :class:`~repro.service.QueryService` carries one
trace through its whole lifetime -- enqueue, dispatch onto the worker pool,
execution, and a terminal state -- so tail-latency analysis can split a
slow request into *time spent waiting for admission* versus *time spent
executing*, and attribute cache behaviour (execution-memo replays, shared
build reuse, zones pruned) to the individual request via
:class:`~repro.engine.cache.CounterSnapshot` deltas.

Timestamps are :func:`time.perf_counter` readings: monotonic, comparable
within one process, meaningless across processes.  ``enqueued_wall`` is
the one wall-clock stamp, for correlating traces with external logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.cache import CounterSnapshot

#: Terminal trace states.  ``queued``, ``running``, and ``backoff`` (a
#: retry waiting to re-enter admission) are the live states a trace passes
#: through on the way to exactly one of these.
TERMINAL_STATUSES = ("ok", "error", "timeout", "rejected", "shed", "cancelled")


@dataclass
class RequestTrace:
    """The recorded lifetime of one service request.

    ``status`` walks ``queued`` -> ``running`` -> one of
    :data:`TERMINAL_STATUSES` (requests refused at admission jump straight
    to ``rejected``/``shed``).  ``queue_depth_seen`` and ``inflight_seen``
    are the congestion the request observed *at admission* -- the numbers
    that explain its wait time.  ``counters`` is the cache-counter delta
    bracketing this request's execution (best-effort under concurrency;
    exact when the session is otherwise quiet).
    """

    request_id: int
    query: str
    class_tag: str
    engine: str
    enqueued_at: float
    enqueued_wall: float
    status: str = "queued"
    queue_depth_seen: int = 0
    inflight_seen: int = 0
    dequeued_at: Optional[float] = None
    finished_at: Optional[float] = None
    counters: Optional[CounterSnapshot] = None
    error: Optional[str] = None
    timeout_s: Optional[float] = field(default=None, repr=False)
    #: The per-table data versions the request ran against: for a query,
    #: the versions read at dispatch onto the worker (a concurrent append
    #: may publish a *fresher fully-sealed* version mid-run, never a torn
    #: one); for an ingest, the versions after its batch published.
    table_versions: Optional[dict] = None
    #: Execution attempts this request consumed (1 = no retries).  A trace
    #: in ``backoff`` is between attempts, waiting to re-enter admission.
    attempts: int = 1
    #: The transient failures absorbed along the way, one human-readable
    #: entry per failed attempt (``"attempt 1: TransientFaultError: ..."``).
    faults: list = field(default_factory=list)
    #: Which execution plane finally answered: ``"sharded"``,
    #: ``"monolithic"`` (service configured shardless),
    #: ``"monolithic-fallback"`` (the shard plane exhausted its retry
    #: budget mid-query), or ``"monolithic-breaker"`` (the service's
    #: breaker routed this request to ``shards=1`` up front).
    plane: Optional[str] = None
    #: Ingest requests only: the fsync policy the acknowledgement waited
    #: behind (``"always"``/``"batch"``/``"off"``), or ``None`` when the
    #: session has no durability configured (in-memory acknowledgement).
    durability: Optional[str] = None
    #: Ingest requests only: duration of the WAL fsync that made this
    #: batch durable (``None`` when no fsync happened -- policy ``off``,
    #: an unfilled ``batch`` window, or no durability at all).
    fsync_ms: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def wait_ms(self) -> Optional[float]:
        """Milliseconds spent queued before a worker picked the request up."""
        if self.dequeued_at is None:
            return None
        return (self.dequeued_at - self.enqueued_at) * 1e3

    @property
    def execute_ms(self) -> Optional[float]:
        """Milliseconds between dispatch and completion on the worker pool."""
        if self.dequeued_at is None or self.finished_at is None:
            return None
        return (self.finished_at - self.dequeued_at) * 1e3

    @property
    def total_ms(self) -> Optional[float]:
        """End-to-end milliseconds from admission to the terminal state."""
        if self.finished_at is None:
            return None
        return (self.finished_at - self.enqueued_at) * 1e3

    @property
    def execution_cached(self) -> bool:
        """Whether the answer replayed from the session's execution memo."""
        return self.counters is not None and self.counters.execution_cached

    @property
    def builds_shared(self) -> bool:
        """Whether the request reused at least one shared build artifact."""
        return self.counters is not None and self.counters.builds_shared

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """The trace as one tidy record (for JSON/CSV export)."""
        return {
            "request_id": self.request_id,
            "query": self.query,
            "class_tag": self.class_tag,
            "engine": self.engine,
            "status": self.status,
            "enqueued_wall": self.enqueued_wall,
            "queue_depth_seen": self.queue_depth_seen,
            "inflight_seen": self.inflight_seen,
            "wait_ms": self.wait_ms,
            "execute_ms": self.execute_ms,
            "total_ms": self.total_ms,
            "execution_cached": self.execution_cached,
            "builds_shared": self.builds_shared,
            "rows_pruned": self.counters.rows_pruned if self.counters else 0,
            "table_versions": self.table_versions,
            "attempts": self.attempts,
            "faults": list(self.faults),
            "plane": self.plane,
            "durability": self.durability,
            "fsync_ms": self.fsync_ms,
            "error": self.error,
        }

    def __str__(self) -> str:
        timing = (
            f"wait {self.wait_ms:.2f}ms exec {self.execute_ms:.2f}ms"
            if self.execute_ms is not None
            else f"depth {self.queue_depth_seen}"
        )
        return (
            f"#{self.request_id} {self.class_tag} [{self.query} on {self.engine}] "
            f"{self.status}: {timing}"
        )
