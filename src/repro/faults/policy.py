"""The knobs of the degradation ladder: :class:`ResiliencePolicy`.

One frozen value object carries every failure-handling parameter a session
(and the service on top of it) consults, so "how does this deployment
degrade" is a single constructor argument instead of settings scattered
across three layers:

* **Shard rung** -- ``shard_retry_budget`` bounds how many recoverable
  failures one sharded query absorbs (pool rebuilds, re-exports, task
  resubmits) before :class:`~repro.engine.shard.ShardExecutor` falls back
  to the monolithic plane; ``shard_task_timeout_s`` bounds each shard
  task's wait so a hung worker is a recoverable failure, not a hang.
* **Service rung** -- transient execution failures retry up to
  ``max_attempts`` with exponential backoff and deterministic jitter
  (:meth:`ResiliencePolicy.backoff_s`); retries re-enter admission so they
  pay for their own queueing.
* **Breaker rung** -- ``breaker_threshold`` consecutive shard-plane
  failures trip a circuit breaker that routes requests to ``shards=1``;
  every ``breaker_probe_every``-th request while open probes the shard
  plane at full width, and a clean probe closes the breaker.

Jitter is *deterministic*: the delay is a pure function of ``(seed,
request_id, attempt)``, so a failing workload replays with identical
backoff timing -- randomized enough to de-synchronize retry herds, seeded
enough to debug.
"""

from __future__ import annotations

import random
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.faults.plan import TransientFaultError


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a session and its service absorb failure (see module docstring)."""

    #: Total execution attempts per request (1 = never retry).
    max_attempts: int = 3
    #: First retry's backoff, before jitter.
    backoff_base_s: float = 0.02
    #: Backoff growth per attempt (exponential).
    backoff_multiplier: float = 2.0
    #: Ceiling on any single backoff delay.
    backoff_max_s: float = 1.0
    #: Fractional jitter: the delay stretches by up to this fraction.
    jitter: float = 0.25
    #: Seed of the deterministic jitter stream.
    seed: int = 0
    #: Consecutive shard-plane failures that trip the breaker.
    breaker_threshold: int = 3
    #: While open, every Nth dispatch probes the shard plane at full width.
    breaker_probe_every: int = 4
    #: Recoverable failures one sharded query absorbs before the
    #: monolithic fallback rung (0 = fall back on the first failure).
    shard_retry_budget: int = 2
    #: Per-shard-task result wait; ``None`` waits forever (no hang guard).
    shard_task_timeout_s: Optional[float] = None
    #: Exception types the service retry rung treats as transient.
    retryable: tuple = field(default=(TransientFaultError, BrokenExecutor, ConnectionError))

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}")
        if self.backoff_max_s < 0:
            raise ValueError(f"backoff_max_s must be >= 0, got {self.backoff_max_s}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {self.breaker_threshold}")
        if self.breaker_probe_every < 1:
            raise ValueError(f"breaker_probe_every must be >= 1, got {self.breaker_probe_every}")
        if self.shard_retry_budget < 0:
            raise ValueError(f"shard_retry_budget must be >= 0, got {self.shard_retry_budget}")
        if self.shard_task_timeout_s is not None and self.shard_task_timeout_s <= 0:
            raise ValueError(
                f"shard_task_timeout_s must be positive, got {self.shard_task_timeout_s}"
            )

    # ------------------------------------------------------------------
    def is_transient(self, exc: BaseException) -> bool:
        """Whether the service retry rung should absorb ``exc``."""
        return isinstance(exc, self.retryable)

    def backoff_s(self, request_id: int, attempt: int) -> float:
        """The delay before retry number ``attempt`` of ``request_id``.

        Exponential in the attempt, capped at ``backoff_max_s``, stretched
        by jitter drawn from a stream keyed on ``(seed, request_id,
        attempt)`` -- every request backs off on its own schedule (no
        retry herd), and the same request replays the same schedule.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
            self.backoff_max_s,
        )
        if not self.jitter or not base:
            return base
        rng = random.Random(f"{self.seed}:{request_id}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())
