"""Deterministic fault injection: named sites, seeded plans, four failure modes.

Production failure handling that is only exercised by production failures is
untested code.  This module makes failure a *first-class, reproducible
input*: a :class:`FaultPlan` is a small declarative schedule of
:class:`FaultPoint` entries ("at the Nth arrival at site ``shard.task``,
kill the worker"), armed per call site, that the chaos suite replays
deterministically -- the same plan against the same workload injects the
same faults in the same order, so a recovery bug reproduces on the first
rerun instead of the thousandth.

Sites are plain strings; the ones wired through the codebase today:

* :data:`SHARD_TASK` -- the top of ``shard_worker.run_shard_task``.  The
  parent *arms* the plan per submitted task and ships the resulting
  :class:`FaultAction` inside the task manifest (ContextVars do not cross
  process boundaries), so the worker executes the fault without ever
  holding the plan.
* :data:`SHM_ATTACH` / :data:`SHM_EXPORT` -- the borrowing and owning
  halves of :mod:`repro.storage.shm`.
* :data:`SERVICE_EXECUTE` -- the worker-thread body of
  :meth:`repro.service.QueryService._execute`, upstream of the session
  run, which is what the service-level retry ladder recovers from.

Four modes:

``kill``
    ``os._exit`` the current process mid-task -- the hard failure that
    poisons a ``ProcessPoolExecutor`` (``BrokenProcessPool``).
``unlink``
    Tear a shared-memory segment's name out from under future attaches
    (existing mappings stay valid, exactly POSIX semantics).
``raise``
    Raise :class:`TransientFaultError`, the retryable failure class.
``latency``
    Sleep ``delay_s`` -- for exercising timeouts and backoff.
``torn``
    A crash mid-write: file-aware sites (the write-ahead log, the
    checkpoint writer in :mod:`repro.storage.wal` /
    :mod:`repro.storage.checkpoint`) write a *prefix* of the in-flight
    record to disk and then ``os._exit`` -- producing exactly the torn
    tail a power cut leaves behind, which recovery must detect and
    truncate.  Sites with no file in hand degrade to a plain ``kill``.

Activation follows the cache idiom (:mod:`repro.engine.cache`): a
``ContextVar`` scope installed by :func:`activate_faults`, read by
:func:`active_fault_plan`.  The no-fault default is a single ContextVar
read returning ``None`` per site -- zero allocation, no locks -- so
production paths pay nothing for carrying the injection points.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

#: The fault modes a :class:`FaultPoint` may request.
FAULT_MODES = ("kill", "raise", "latency", "unlink", "torn")

#: Exit code a ``kill`` fault terminates the process with -- distinctive in
#: worker-death postmortems (``BrokenProcessPool`` hides the code itself).
KILL_EXIT_CODE = 87

# The named injection sites wired through the codebase (plans may name
# arbitrary sites; these constants just keep call sites and tests aligned).
SHARD_TASK = "shard.task"
SHM_ATTACH = "shm.attach"
SHM_EXPORT = "shm.export"
SERVICE_EXECUTE = "service.execute"
WAL_APPEND = "wal.append"
WAL_FSYNC = "wal.fsync"
CHECKPOINT_WRITE = "checkpoint.write"


class FaultError(RuntimeError):
    """Base of injected failures."""


class TransientFaultError(FaultError):
    """An injected failure the retry machinery is expected to absorb.

    Raised by ``mode="raise"`` faults; also the class service retry
    policies treat as retryable by default.  Picklable (a plain message),
    so it crosses the process-pool future boundary intact.
    """


@dataclass(frozen=True)
class FaultAction:
    """One armed fault, ready to execute -- small, frozen, picklable.

    The parent-side :meth:`FaultPlan.arm` decision separated from its
    execution so the action can ship inside a :class:`~repro.engine.shard.
    ShardTask` manifest and fire in a worker process that never sees the
    plan.
    """

    site: str
    mode: str
    delay_s: float = 0.0


@dataclass(frozen=True)
class FaultPoint:
    """One scheduled fault: at ``site``, after ``skip`` arrivals, ``times`` times.

    ``skip`` counts arrivals at the site before the point becomes eligible
    (``skip=2`` leaves the first two alone); ``times`` bounds how many
    arrivals it then fires on.  ``probability`` (default certain) makes
    eligible arrivals fire on a seeded coin flip instead -- the draw order
    is the arrival order, so a given ``(plan seed, workload)`` pair always
    faults the same requests.  ``delay_s`` is the sleep for ``latency``
    mode (ignored by the instantaneous modes).
    """

    site: str
    mode: str
    skip: int = 0
    times: int = 1
    delay_s: float = 0.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("FaultPoint.site must be a non-empty string")
        if self.mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {self.mode!r}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")


class FaultPlan:
    """A seeded schedule of fault points, armed once per site arrival.

    Thread-safe: arrivals are counted under one lock, so concurrent
    executions (the morsel pool, the service's worker threads) each draw a
    distinct arrival index and the plan's budgets (``times``) are spent
    exactly once per fault.  Retries naturally stop faulting once every
    matching point's budget is exhausted -- which is what lets a bounded
    retry loop converge against a plan that faults the first attempt.
    """

    def __init__(self, points, *, seed: int = 0) -> None:
        self.points = tuple(points)
        self.seed = seed
        self._rng = random.Random(seed)
        self._budgets = [point.times for point in self.points]
        self._arrivals: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def arm(self, site: str) -> "FaultAction | None":
        """Count one arrival at ``site``; return the action to execute, if any.

        The decision half of injection: pure bookkeeping, never raises or
        sleeps itself.  Callers either run the action locally
        (:meth:`fire`) or ship it across a process boundary.
        """
        with self._lock:
            index = self._arrivals.get(site, 0)
            self._arrivals[site] = index + 1
            for i, point in enumerate(self.points):
                if point.site != site or self._budgets[i] <= 0 or index < point.skip:
                    continue
                if point.probability < 1.0 and self._rng.random() >= point.probability:
                    continue
                self._budgets[i] -= 1
                self._fired[site] = self._fired.get(site, 0) + 1
                return FaultAction(site=site, mode=point.mode, delay_s=point.delay_s)
        return None

    def fire(self, site: str, *, segment: "str | None" = None) -> "FaultAction | None":
        """Arm ``site`` and execute the resulting action in this process.

        ``segment`` names the shared-memory segment an ``unlink`` fault at
        this site should tear down.  Returns the action that ran (``None``
        when the site stayed quiet), mostly for tests.
        """
        action = self.arm(site)
        if action is not None:
            execute_fault(action, segment=segment)
        return action

    # ------------------------------------------------------------------
    def fired(self, site: "str | None" = None) -> int:
        """Faults fired so far -- at one site, or in total."""
        with self._lock:
            if site is not None:
                return self._fired.get(site, 0)
            return sum(self._fired.values())

    def arrivals(self, site: str) -> int:
        """Arrivals counted at ``site`` so far."""
        with self._lock:
            return self._arrivals.get(site, 0)

    def stats(self) -> dict:
        """Per-site ``{"arrivals": n, "fired": m}`` bookkeeping snapshot."""
        with self._lock:
            sites = set(self._arrivals) | set(self._fired)
            return {
                site: {
                    "arrivals": self._arrivals.get(site, 0),
                    "fired": self._fired.get(site, 0),
                }
                for site in sorted(sites)
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self.points)} points, seed={self.seed}, fired={self.fired()})"


def execute_fault(action: FaultAction, *, segment: "str | None" = None) -> None:
    """Carry out one armed :class:`FaultAction` in the current process."""
    if action.mode == "latency":
        time.sleep(action.delay_s)
        return
    if action.mode == "raise":
        raise TransientFaultError(
            f"injected transient fault at {action.site} (pid {os.getpid()})"
        )
    if action.mode == "kill":
        os._exit(KILL_EXIT_CODE)
    if action.mode == "torn":
        # File-aware sites intercept ``torn`` themselves (partial write,
        # then exit); reaching the generic executor means there is no file
        # in hand, so the closest honest behaviour is the crash half alone.
        os._exit(KILL_EXIT_CODE)
    if action.mode == "unlink":
        if segment is not None:
            unlink_segment(segment)
        return
    raise ValueError(f"unknown fault mode {action.mode!r}")  # pragma: no cover


def unlink_segment(name: str) -> bool:
    """Unlink the POSIX shared-memory segment ``name``, if it still exists.

    The ``unlink`` fault's hammer: removes the *name* so every future
    attach fails with :class:`FileNotFoundError`, while existing mappings
    (the owner's, other workers') stay valid -- exactly the crash shape a
    janitor or a dying owner produces.  Unlink bookkeeping in the owner's
    ``resource_tracker`` is left to the owning registry, which tolerates
    the segment already being gone.
    """
    try:
        os.unlink(os.path.join("/dev/shm", name))
        return True
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - non-Linux shm layout
        from multiprocessing import shared_memory

        try:
            handle = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        handle.close()
        handle.unlink()
        return True


# ----------------------------------------------------------------------
# Activation scope (the cache.py idiom: ContextVar + contextmanager)
# ----------------------------------------------------------------------

_ACTIVE_FAULTS: ContextVar["FaultPlan | None"] = ContextVar("repro_active_fault_plan", default=None)


def active_fault_plan() -> "FaultPlan | None":
    """The plan installed by the innermost :func:`activate_faults`, or ``None``."""
    return _ACTIVE_FAULTS.get()


@contextmanager
def activate_faults(plan: FaultPlan):
    """Make ``plan`` the active fault plan for the calling context.

    Installed by ``Session._execute`` when the session was constructed
    with ``faults=...`` -- on the executing thread itself, because
    ``loop.run_in_executor`` does not propagate ContextVars.  Instrumented
    sites read :func:`active_fault_plan` and stay no-ops when it is
    ``None``.
    """
    token = _ACTIVE_FAULTS.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_FAULTS.reset(token)
