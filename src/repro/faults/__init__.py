"""Deterministic fault injection and the resilience policy that absorbs it.

See :mod:`repro.faults.plan` for the injection subsystem (seeded
:class:`FaultPlan` schedules over named sites, four failure modes) and
:mod:`repro.faults.policy` for :class:`ResiliencePolicy`, the single value
object carrying the retry / breaker / fallback knobs of the degradation
ladder.
"""

from repro.faults.plan import (
    CHECKPOINT_WRITE,
    FAULT_MODES,
    KILL_EXIT_CODE,
    SERVICE_EXECUTE,
    SHARD_TASK,
    SHM_ATTACH,
    SHM_EXPORT,
    WAL_APPEND,
    WAL_FSYNC,
    FaultAction,
    FaultError,
    FaultPlan,
    FaultPoint,
    TransientFaultError,
    activate_faults,
    active_fault_plan,
    execute_fault,
    unlink_segment,
)
from repro.faults.policy import ResiliencePolicy

__all__ = [
    "CHECKPOINT_WRITE",
    "FAULT_MODES",
    "KILL_EXIT_CODE",
    "SERVICE_EXECUTE",
    "SHARD_TASK",
    "SHM_ATTACH",
    "SHM_EXPORT",
    "WAL_APPEND",
    "WAL_FSYNC",
    "FaultAction",
    "FaultError",
    "FaultPlan",
    "FaultPoint",
    "ResiliencePolicy",
    "TransientFaultError",
    "activate_faults",
    "active_fault_plan",
    "execute_fault",
    "unlink_segment",
]
