"""Process-parallel sharded execution: escape the GIL, keep byte-identity.

The morsel-parallel thread pool (``Session.run_many(workers=N)``) tops out
where NumPy holds the GIL: one Python process cannot use more than roughly
one core's worth of the kernels that dominate SSB queries.  This module
shards a *single query* across worker **processes** instead:

1. The fact table's columns (and bit-packed twins) are published once per
   ``(table, version)`` into shared memory (:mod:`repro.storage.shm`) --
   workers map the same physical pages read-only, zero copies.
2. :func:`shard_ranges` splits the fact rows into zone-aligned ranges, so
   each shard's rows cover whole zones and zone-map pruning applies per
   shard exactly as it does monolithically.
3. Dimension lookups are built **once in the parent**
   (:meth:`~repro.engine.physical.BuildLookup.fetch_artifact`, through the
   session's shared build cache) and shipped to the workers -- inline for
   small artifacts, through shared memory for large ones
   (:data:`INLINE_ARTIFACT_BYTES` decides).
4. Each worker runs the zone-pruned selection-vector pipeline over its row
   range (:func:`~repro.engine.physical.execute_physical_partial`) and
   returns a mergeable :class:`~repro.engine.physical.PartialAggregate`
   plus its profile slice.
5. The parent merges (:func:`~repro.engine.plan.merge_partial_aggregates`)
   and folds the profile slices back into the monolithic shape
   (:func:`~repro.engine.plan.fold_shard_profiles`) -- answers *and*
   profiles stay byte-identical to the single-process planes, which is the
   differential guarantee ``tests/test_sharded.py`` pins.

The executor owns a persistent :class:`~concurrent.futures.
ProcessPoolExecutor` (lifecycle tied to ``Session.close()``) and a
:class:`~repro.storage.shm.SharedMemoryRegistry` with strict unlink
discipline, and it is installed per-execution as a context binding
(:func:`~repro.engine.cache.activate_shards`) so the engine layer routes
through it without importing it.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.engine.cache import active_build_cache, active_zone_maps
from repro.faults import SHARD_TASK, FaultAction, TransientFaultError, active_fault_plan
from repro.engine.physical import BuildArtifact, execute_physical, execute_physical_partial, lower_query
from repro.engine.plan import QueryProfile, fold_shard_profiles, merge_partial_aggregates
from repro.ssb.queries import SSBQuery
from repro.storage.shm import (
    SharedMemoryRegistry,
    ShmArraySpec,
    TableExport,
    export_table,
)
from repro.storage.zonemap import DEFAULT_ZONE_SIZE, PACKED_MAX_BITS

#: Artifacts whose lookup + present arrays exceed this many bytes ship to
#: workers through shared memory; smaller ones pickle inline with the task
#: (cheaper than a segment round-trip for e.g. a 64-entry year lookup).
INLINE_ARTIFACT_BYTES = 256 * 1024

#: Failures one retry round of :meth:`ShardExecutor.execute` can recover
#: from: a poisoned pool (worker death), a hung task (per-task timeout), a
#: torn-down segment (attach after an unlink -- re-export fixes it), and an
#: injected/declared transient.  Anything else is a real query error and
#: propagates immediately.
RECOVERABLE_SHARD_FAILURES = (
    BrokenExecutor,
    FuturesTimeoutError,
    FileNotFoundError,
    TransientFaultError,
)


def shard_ranges(num_rows: int, shards: int, zone_size: int = DEFAULT_ZONE_SIZE) -> list[tuple[int, int]]:
    """Zone-aligned ``[start, stop)`` row ranges, one per shard.

    Zones are distributed as evenly as integer division allows, so every
    shard boundary (except the table's tail) lands on a zone boundary and
    per-zone statistics, packed-word offsets, and zone-granular skipping
    remain valid inside each shard.  With more shards than zones, the
    excess shards get empty ranges (``start == stop``); callers skip them
    at submission time.  Ranges partition ``[0, num_rows)`` exactly.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if zone_size < 1:
        raise ValueError(f"zone_size must be >= 1, got {zone_size}")
    zones = -(-num_rows // zone_size) if num_rows else 0
    ranges = []
    for i in range(shards):
        z0 = i * zones // shards
        z1 = (i + 1) * zones // shards
        ranges.append((z0 * zone_size, min(z1 * zone_size, num_rows)))
    return ranges


# ----------------------------------------------------------------------
# Task manifests (pickled parent -> worker)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InlineArtifact:
    """A parent-built dimension lookup small enough to pickle with the task."""

    artifact: BuildArtifact


@dataclass(frozen=True)
class ShmArtifact:
    """A parent-built dimension lookup shipped through shared memory.

    Carries the artifact's scalar fields plus segment specs for the two
    arrays; ``token`` identifies the artifact so workers reconstruct each
    one once per process and reuse it across tasks.
    """

    token: str
    dimension: str
    dimension_rows: int
    build_rows: int
    hash_table_bytes: float
    build_scan_bytes: float
    lookup: ShmArraySpec
    present: ShmArraySpec
    key_base: int
    key_low: int
    key_high: int


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to run one shard of one query."""

    export: TableExport
    query: SSBQuery
    start: int
    stop: int
    artifacts: tuple[InlineArtifact | ShmArtifact, ...]
    #: Whether the parent session runs the zone-pruned plane; workers build
    #: their zone caches with the same geometry so shard pipelines take the
    #: same pruning decisions the monolithic pipeline would.
    zones: bool
    zone_size: int
    packed_max_bits: int
    #: An armed fault the worker executes before the shard runs (chaos
    #: testing only; ``None`` on every production task).  Armed parent-side
    #: because ContextVars do not cross the process boundary.
    fault: FaultAction | None = None


class ShardStats(NamedTuple):
    """Counters of one :class:`ShardExecutor` (see ``Session.counters()``)."""

    #: Queries dispatched through the shard pool.
    queries: int
    #: Shard tasks run (non-empty ranges actually submitted).
    tasks: int
    #: Queries routed back to the monolithic path (off-database, or an
    #: empty fact table -- nothing to shard).
    fallbacks: int
    #: Worker processes the persistent pool currently holds (0 = not spun up).
    workers: int
    #: Recoverable-failure retry rounds absorbed (pool rebuilt, segments
    #: re-exported, or tasks simply resubmitted).
    retries: int = 0
    #: Worker pools discarded after a failure and rebuilt on the next round.
    pool_rebuilds: int = 0
    #: Queries that exhausted the retry budget and fell back to the
    #: monolithic plane (the ladder's last rung -- still byte-identical).
    failure_fallbacks: int = 0


class ShardBinding:
    """One execution's view of the shard pool: an effective shard count.

    The opaque object :func:`~repro.engine.cache.activate_shards` installs:
    the engine layer reads ``shards`` (cache keys) and calls ``execute``
    (dispatch); everything else stays behind the executor.
    """

    __slots__ = ("executor", "shards")

    def __init__(self, executor: "ShardExecutor", shards: int) -> None:
        self.executor = executor
        self.shards = shards

    def execute(self, db, query: SSBQuery) -> tuple[object, QueryProfile]:
        return self.executor.execute(db, query, self.shards)


class ShardExecutor:
    """The parent-side owner of the worker pool and the shared-memory plane.

    One per :class:`~repro.api.Session` (created lazily on the first
    ``shards > 1`` execution, torn down by ``Session.close()``).  The pool
    is persistent: workers keep their attached segments, reconstructed
    tables, zone statistics, and artifact reconstructions across queries,
    so steady-state dispatch ships only a small manifest per shard.

    Thread-safe: the morsel-parallel thread pool and the asyncio service's
    executor threads may dispatch concurrently; pool creation, export
    caching, artifact-ref assignment, and counters all mutate under one
    lock, while the actual shard waits happen outside it.
    """

    def __init__(
        self,
        db,
        *,
        start_method: str | None = None,
        zones: bool = True,
        zone_size: int | None = None,
        packed_max_bits: int | None = None,
        retry_budget: int = 2,
        task_timeout_s: float | None = None,
    ) -> None:
        if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} is not available on this platform; "
                f"choose from {multiprocessing.get_all_start_methods()}"
            )
        if retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {retry_budget}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError(f"task_timeout_s must be positive, got {task_timeout_s}")
        self.db = db
        self.start_method = start_method
        self.zones = zones
        self.zone_size = DEFAULT_ZONE_SIZE if zone_size is None else zone_size
        self.packed_max_bits = PACKED_MAX_BITS if packed_max_bits is None else packed_max_bits
        #: Recoverable failures one query absorbs before the monolithic
        #: fallback rung; per-task result wait (None = no hang guard).
        self.retry_budget = retry_budget
        self.task_timeout_s = task_timeout_s
        self.registry = SharedMemoryRegistry()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        #: One export per fact table name; re-exporting a newer version
        #: releases the old version's segments (workers re-attach by spec).
        self._exports: dict[str, tuple[int, TableExport, list[str]]] = {}
        #: Artifact shipping refs by ``id(artifact)``; ``_artifact_pins``
        #: keeps the artifacts alive so ids stay unique for the session.
        self._artifact_refs: dict[int, InlineArtifact | ShmArtifact] = {}
        self._artifact_pins: list[BuildArtifact] = []
        self._artifact_counter = 0
        self._lock = threading.Lock()
        self._closed = False
        self.queries = 0
        self.tasks = 0
        self.fallbacks = 0
        self.retries = 0
        self.pool_rebuilds = 0
        self.failure_fallbacks = 0

    # ------------------------------------------------------------------
    def bind(self, shards: int) -> ShardBinding:
        """A context binding that dispatches at ``shards`` parallelism."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return ShardBinding(self, shards)

    def stats(self) -> ShardStats:
        with self._lock:
            return ShardStats(
                queries=self.queries,
                tasks=self.tasks,
                fallbacks=self.fallbacks,
                workers=self._pool_workers,
                retries=self.retries,
                pool_rebuilds=self.pool_rebuilds,
                failure_fallbacks=self.failure_fallbacks,
            )

    def close(self) -> None:
        """Shut the worker pool down and unlink every shared segment.

        Idempotent and exception-safe: a second close (``Session.close``
        racing the registry's atexit hook) returns immediately, a pool
        poisoned by worker death must not abort the shutdown, and the
        registry is closed unconditionally -- its own unlink path already
        tolerates names that vanished underneath it, so segments are never
        double-unlinked.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            self._pool_workers = 0
            self._exports.clear()
            self._artifact_refs.clear()
            self._artifact_pins.clear()
        try:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may still raise
            pass
        finally:
            self.registry.close()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def execute(self, db, query: SSBQuery, shards: int) -> tuple[object, QueryProfile]:
        """Run ``query`` sharded ``shards`` ways; fall back monolithically
        when there is nothing to shard (off-database, or an empty fact).

        Must be called with the session's cache scopes already active (the
        normal ``Session._execute`` path): zone maps come from
        :func:`~repro.engine.cache.active_zone_maps`, parent-side builds go
        through :func:`~repro.engine.cache.active_build_cache`.

        Failure handling is a ladder, each rung cheaper than the last:
        recoverable failures (:data:`RECOVERABLE_SHARD_FAILURES`) are
        repaired in place -- a poisoned pool is discarded and rebuilt, a
        torn-down segment's export is released and re-published at fresh
        names -- and only the *missing* shard tasks are resubmitted, under
        a per-query ``retry_budget``; exhausting the budget drops to the
        monolithic plane (``failure_fallbacks``), which computes the same
        bytes from the parent's own arrays.  Completed shards are never
        re-run: a partial computed against the old export merges with
        partials from the re-export byte-identically, because both alias
        the same frozen snapshot.  Real query errors (bad column, bad
        spec) propagate immediately -- retrying them cannot help.
        """
        fact_name = getattr(query, "fact", None)
        tables = getattr(db, "tables", None)
        if (
            db is not self.db
            or shards < 2
            or fact_name is None
            or tables is None
            or fact_name not in tables
        ):
            return self._fallback(db, query)
        # Snowflake validation (and anything else lowering rejects) raises
        # here in the parent, before any pool work happens.
        plan = lower_query(query, db)
        fact = db.table(fact_name)
        if hasattr(fact, "snapshot"):
            fact = fact.snapshot()
        n = fact.num_rows
        if n == 0:
            return self._fallback(db, query)

        faults = active_fault_plan()
        ranges = [r for r in shard_ranges(n, shards, self.zone_size) if r[1] > r[0]]
        # Deferred import keeps the worker module (and its module globals)
        # out of the parent's hot path until sharding is actually used.
        from repro.engine.shard_worker import run_shard_task

        results: dict[int, tuple] = {}
        budget = self.retry_budget
        export = None
        artifacts: tuple = ()
        while len(results) < len(ranges):
            error: BaseException | None = None
            futures: dict[int, object] = {}
            try:
                if export is None:
                    export = self._export_for(db, fact)
                    artifacts = tuple(
                        self._artifact_ref(build.fetch_artifact(db, active_build_cache()))
                        for build in plan.builds
                    )
                pool = self._ensure_pool(shards)
                for i in range(len(ranges)):
                    if i in results:
                        continue
                    start, stop = ranges[i]
                    futures[i] = pool.submit(
                        run_shard_task,
                        ShardTask(
                            export=export,
                            query=query,
                            start=start,
                            stop=stop,
                            artifacts=artifacts,
                            zones=self.zones,
                            zone_size=self.zone_size,
                            packed_max_bits=self.packed_max_bits,
                            fault=faults.arm(SHARD_TASK) if faults is not None else None,
                        ),
                    )
            except RECOVERABLE_SHARD_FAILURES as exc:
                error = exc
            for i, future in futures.items():
                try:
                    results[i] = future.result(timeout=self.task_timeout_s)
                except RECOVERABLE_SHARD_FAILURES as exc:
                    if error is None:
                        error = exc
            if error is None:
                continue
            if isinstance(error, (BrokenExecutor, FuturesTimeoutError)):
                # Worker death poisons the whole pool; a hung task may as
                # well have.  Discard it -- the next round builds a fresh
                # one (segments survive: the parent owns them).
                self._discard_pool()
            if isinstance(error, FileNotFoundError):
                # A segment name vanished under an attach (worker-side
                # unlink, foreign janitor).  Release the export's surviving
                # names and re-publish at fresh ones next round.
                self._invalidate_export(fact_name)
                export = None
            if budget <= 0:
                with self._lock:
                    self.failure_fallbacks += 1
                return execute_physical(db, plan)
            budget -= 1
            with self._lock:
                self.retries += 1

        ordered = [results[i] for i in range(len(ranges))]
        partials = [partial for partial, _, _ in ordered]
        profiles = [profile for _, profile, _ in ordered]
        value = merge_partial_aggregates(partials)
        profile = fold_shard_profiles(profiles, value)
        zone_cache = active_zone_maps()
        if zone_cache is not None:
            for _, _, (skipped, taken, evaluated, rows_pruned) in ordered:
                if skipped or taken or evaluated or rows_pruned:
                    zone_cache.record(
                        skipped=skipped, taken=taken, evaluated=evaluated, rows_pruned=rows_pruned
                    )
        with self._lock:
            self.queries += 1
            self.tasks += len(ranges)
        return value, profile

    def _fallback(self, db, query: SSBQuery) -> tuple[object, QueryProfile]:
        with self._lock:
            self.fallbacks += 1
        return execute_physical(db, lower_query(query, db))

    def _discard_pool(self) -> None:
        """Drop the (presumed poisoned) pool; the next round rebuilds it."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_workers = 0
            if pool is not None:
                self.pool_rebuilds += 1
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken pools may raise
                pass

    def _invalidate_export(self, fact_name: str) -> None:
        """Forget ``fact_name``'s export (and every shm artifact ref).

        Releases whatever segment names survive -- the registry tolerates
        names an unlink fault already removed -- so the next round's
        re-export publishes under fresh names and workers re-attach
        cleanly.  Artifact refs are dropped wholesale: artifacts are built
        in the parent and re-shared cheaply, and a concurrent query racing
        this release simply takes the same recovery path.
        """
        with self._lock:
            held = self._exports.pop(fact_name, None)
            refs, self._artifact_refs = self._artifact_refs, {}
            self._artifact_pins.clear()
        names = list(held[2]) if held is not None else []
        for ref in refs.values():
            if isinstance(ref, ShmArtifact):
                names.append(ref.lookup.segment)
                names.append(ref.present.segment)
        if names:
            self.registry.release(names)

    # ------------------------------------------------------------------
    def _ensure_pool(self, shards: int) -> ProcessPoolExecutor:
        """The persistent worker pool, grown (never shrunk) to ``shards``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardExecutor is closed")
            if self._pool is None or self._pool_workers < shards:
                old = self._pool
                context = multiprocessing.get_context(self.start_method)
                self._pool = ProcessPoolExecutor(max_workers=shards, mp_context=context)
                self._pool_workers = shards
            else:
                old = None
            pool = self._pool
        if old is not None:
            old.shutdown(wait=True)
        return pool

    def _export_for(self, db, fact) -> TableExport:
        """The fact table's shared-memory manifest, one per (name, version).

        Exporting warms the parent's packed twins for *every* fact column
        first (through the active zone cache, so the parent and the workers
        share one deterministic compression plan per version), then copies
        columns and twin words into fresh segments.  A newer version
        releases the previous version's segments -- workers hold their own
        attachments, so in-flight shards on the old version finish safely;
        the pages are freed when the last attachment closes.
        """
        version = getattr(fact, "version", 0)
        with self._lock:
            held = self._exports.get(fact.name)
            if held is not None and held[0] == version:
                return held[1]
        packed: dict = {}
        zone_cache = active_zone_maps()
        if self.zones and zone_cache is not None:
            maps = zone_cache.maps(db, fact)
            if maps is not None:
                packed = {name: maps.packed(name) for name in fact.columns}
        export = export_table(self.registry, fact, packed)
        names = [spec.segment for _, item in export.columns for spec in (item.spec,)]
        names += [item.words.segment for _, item in export.packed if item is not None]
        with self._lock:
            held = self._exports.get(fact.name)
            if held is not None and held[0] == version:
                # A racing thread exported the same version first; keep its
                # manifest and release ours.
                stale = names
                export = held[1]
            else:
                stale = held[2] if held is not None else []
                self._exports[fact.name] = (version, export, names)
        if stale:
            self.registry.release(stale)
        return export

    def _artifact_ref(self, artifact: BuildArtifact) -> InlineArtifact | ShmArtifact:
        """How to ship ``artifact``: inline pickle or shared segments, by size."""
        with self._lock:
            ref = self._artifact_refs.get(id(artifact))
            if ref is not None:
                return ref
        nbytes = int(artifact.lookup.nbytes) + int(artifact.present.nbytes)
        if nbytes <= INLINE_ARTIFACT_BYTES:
            ref: InlineArtifact | ShmArtifact = InlineArtifact(artifact=artifact)
        else:
            lookup_spec = self.registry.share_array(np.asarray(artifact.lookup))
            present_spec = self.registry.share_array(np.asarray(artifact.present))
            with self._lock:
                self._artifact_counter += 1
                token = f"artifact-{self._artifact_counter}"
            ref = ShmArtifact(
                token=token,
                dimension=artifact.dimension,
                dimension_rows=artifact.dimension_rows,
                build_rows=artifact.build_rows,
                hash_table_bytes=artifact.hash_table_bytes,
                build_scan_bytes=artifact.build_scan_bytes,
                lookup=lookup_spec,
                present=present_spec,
                key_base=artifact.key_base,
                key_low=artifact.key_low,
                key_high=artifact.key_high,
            )
        with self._lock:
            held = self._artifact_refs.get(id(artifact))
            if held is not None:
                return held
            self._artifact_refs[id(artifact)] = ref
            self._artifact_pins.append(artifact)
        return ref


def partial_for_range(db, query: SSBQuery, start: int, stop: int):
    """Run one shard's partial in-process (test/experimentation helper).

    Lowers under whatever cache scopes are active and returns the
    ``(partial, profile)`` pair a worker would have produced for the range
    -- handy for property-style merge tests that need adversarial splits
    without paying for a process pool.
    """
    return execute_physical_partial(db, lower_query(query, db), start, stop)
