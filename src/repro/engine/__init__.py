"""Full-query execution engines.

All engines execute the declarative SSB queries of :mod:`repro.ssb.queries`
against a :class:`repro.storage.Database` and return a
:class:`~repro.engine.result.QueryResult` containing both the (exact) query
answer and the simulated runtime on the paper's hardware.

Engines:

* :class:`CPUStandaloneEngine` -- the paper's hand-optimized CPU
  implementation: vectorized single-pass pipeline with SIMD predicates and
  cache-resident dimension hash tables.
* :class:`GPUStandaloneEngine` -- the Crystal/tile-based GPU implementation:
  one fused probe kernel per query, with the working set resident in GPU
  memory.
* :class:`CoprocessorEngine` -- the GPU-as-coprocessor configuration of
  Section 3.1: data lives in CPU memory and the needed columns cross PCIe
  for every query.
* :mod:`repro.engine.baselines` -- calibrated models of the comparison
  systems (Hyper, MonetDB, OmniSci) that execute the same queries with those
  systems' documented execution strategies.

Every engine conforms to the :class:`repro.api.Engine` protocol (a ``name``
attribute plus ``run(query) -> QueryResult``) and registers itself with the
default engine registry under a short key (``"cpu"``, ``"gpu"``,
``"coprocessor"``, ``"hyper"``, ``"monetdb"``, ``"omnisci"``), so
:class:`repro.api.Session` can dispatch to any of them by name.

All engines share one functional execution pass: queries are lowered to the
staged physical pipeline of :mod:`repro.engine.physical` (ScanFilter /
BuildLookup / ProbeJoin / Aggregate operators whose dimension builds can be
shared across a batch), which emits the :class:`QueryProfile` each engine
then costs under its own hardware model.
"""

from repro.engine.baselines import HyperLikeEngine, MonetDBLikeEngine, OmnisciLikeEngine
from repro.engine.cache import (
    BuildArtifactCache,
    CacheInfo,
    ExecutionCache,
    ZoneInfo,
    ZoneMapCache,
    activate_zones,
)
from repro.engine.coprocessor import CoprocessorEngine
from repro.engine.cpu_engine import CPUStandaloneEngine
from repro.engine.gpu_engine import GPUStandaloneEngine
from repro.engine.physical import (
    BuildArtifact,
    LogicalJoin,
    LogicalPlan,
    PhysicalPlan,
    execute_physical,
    lower,
    lower_query,
    staged_builds,
)
from repro.engine.plan import QueryProfile, execute_query, execute_query_monolithic
from repro.engine.planner import JoinOrderPlanner, PlanChoice
from repro.engine.result import QueryResult

__all__ = [
    "BuildArtifact",
    "BuildArtifactCache",
    "CPUStandaloneEngine",
    "CacheInfo",
    "CoprocessorEngine",
    "ExecutionCache",
    "ZoneInfo",
    "ZoneMapCache",
    "activate_zones",
    "GPUStandaloneEngine",
    "HyperLikeEngine",
    "JoinOrderPlanner",
    "LogicalJoin",
    "LogicalPlan",
    "MonetDBLikeEngine",
    "OmnisciLikeEngine",
    "PhysicalPlan",
    "PlanChoice",
    "QueryProfile",
    "QueryResult",
    "execute_physical",
    "execute_query",
    "execute_query_monolithic",
    "lower",
    "lower_query",
    "staged_builds",
]
