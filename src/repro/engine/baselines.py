"""Calibrated baseline engines: Hyper-like, MonetDB-like, and OmniSci-like.

The paper compares its Standalone CPU/GPU implementations against three
existing systems.  Those systems are closed source (Hyper, OmniSci) or
impractical to embed here (MonetDB), so the reproduction models each one by
executing the same queries with that system's *documented execution
strategy* on the same simulated hardware:

* **Hyper-like** -- a compiled, pipelined, push-based CPU engine.  Its plan
  shape matches the Standalone CPU engine; what it lacks is the
  hand-vectorized predicate evaluation and the streaming stores, so it pays
  scalar predicate costs and regular write traffic (the paper measures
  Standalone CPU at about 1.17x faster on average).
* **MonetDB-like** -- an operator-at-a-time column engine.  Every operator
  materializes its full intermediate result (selection vectors, join
  row-id lists) to memory before the next operator starts, so each query
  pays several extra passes over fact-table-sized intermediates; this is
  the inefficiency the paper repeatedly warns against using as a baseline.
* **OmniSci-like** -- a GPU engine that treats each thread as an independent
  unit (no tile staging in shared memory): per-row access is uncoalesced
  (every 4-byte access moves a 32-byte sector), intermediates are
  materialized between operator kernels, and output writes are scattered.
  The paper measures Crystal at roughly 16x faster.
"""

from __future__ import annotations

from repro.api.registry import register_engine
from repro.engine.plan import QueryProfile, execute_query
from repro.engine.result import QueryResult
from repro.hardware.counters import TrafficCounter
from repro.sim.cpu import CPUSimulator
from repro.sim.gpu import GPUSimulator, KernelLaunch
from repro.sim.timing import TimeBreakdown
from repro.ssb.queries import SSBQuery
from repro.storage import Database

#: Sector size moved by an uncoalesced per-thread access on the GPU.
_UNCOALESCED_SECTOR_BYTES = 32


@register_engine("hyper")
class HyperLikeEngine:
    """A compiled, pipelined CPU OLAP engine without hand-tuned SIMD."""

    name = "hyper"

    def __init__(self, db: Database, simulator: CPUSimulator | None = None) -> None:
        self.db = db
        self.simulator = simulator or CPUSimulator()

    def simulate(self, query: SSBQuery, profile: QueryProfile) -> TimeBreakdown:
        """Simulated runtime for an already-collected profile."""
        line = self.simulator.spec.cache_line_bytes
        time = TimeBreakdown()

        # Build phase: same hash tables as the standalone engine.
        for stage in profile.joins:
            traffic = TrafficCounter(
                sequential_read_bytes=stage.build_scan_bytes,
                sequential_write_bytes=stage.hash_table_bytes,
                compute_ops=float(stage.dimension_rows) * 4.0,
            )
            time.merge(self.simulator.run(traffic, label=f"build-{stage.dimension}").time,
                       prefix=f"build.{stage.dimension}.")

        # Pipelined probe pass: scalar predicates, regular stores.  Compiled
        # scalar code evaluates one data-dependent branch per predicate leaf
        # plus one short-circuit jump per OR alternative, so branchy
        # disjunctions pay extra misprediction stalls that fused band
        # predicates do not.  (Counts come from the profile's filter stages,
        # so rescaled profiles charge consistently.)
        streaming = TrafficCounter(
            sequential_read_bytes=profile.selective_column_bytes(line),
            sequential_write_bytes=float(profile.num_groups) * profile.output_row_bytes,
            compute_ops=float(profile.fact_rows) * 8.0,
            data_dependent_branches=float(profile.fact_rows)
            * float(profile.filter_leaf_count() + profile.filter_or_branches()),
            branch_miss_rate=0.25,
        )
        time.merge(self.simulator.run(streaming, use_simd=False, label="fact-scan").time, prefix="scan.")

        for stage in profile.joins:
            probe = TrafficCounter(
                random_accesses=stage.probe_rows,
                random_working_set_bytes=stage.hash_table_bytes,
                random_access_bytes=8.0,
                compute_ops=stage.probe_rows * 4.0,
            )
            time.merge(
                self.simulator.run(probe, dependent_random=True, label=f"probe-{stage.dimension}").time,
                prefix=f"probe.{stage.dimension}.",
            )

        aggregate = TrafficCounter(
            random_accesses=profile.result_input_rows,
            random_working_set_bytes=float(profile.num_groups) * profile.output_row_bytes,
            compute_ops=profile.result_input_rows * 4.0,
        )
        time.merge(self.simulator.run(aggregate, label="aggregate").time, prefix="aggregate.")
        return time

    def run(self, query: SSBQuery) -> QueryResult:
        value, profile = execute_query(self.db, query)
        time = self.simulate(query, profile)
        return QueryResult(query=query.name, engine=self.name, value=value, time=time,
                           stats={"groups": float(profile.num_groups)})


@register_engine("monetdb")
class MonetDBLikeEngine:
    """An operator-at-a-time column engine with full intermediate materialization.

    Besides materializing every intermediate, MonetDB's operator-at-a-time
    execution parallelizes each operator independently ("mitosis"), which on
    short-running operators leaves part of the machine idle; the engine
    therefore runs its streaming operators at a reduced effective core count.
    """

    name = "monetdb"

    #: Effective cores the operator-at-a-time execution keeps busy.
    effective_cores = 3

    def __init__(self, db: Database, simulator: CPUSimulator | None = None) -> None:
        self.db = db
        self.simulator = simulator or CPUSimulator()

    def simulate(self, query: SSBQuery, profile: QueryProfile) -> TimeBreakdown:
        """Simulated runtime for an already-collected profile."""
        time = TimeBreakdown()
        n = float(profile.fact_rows)

        # Every fact filter is its own operator: read the column, write a
        # full selection vector; a combining AND re-reads the vectors.
        for index, access in enumerate(a for a in profile.column_accesses if a.role == "filter"):
            traffic = TrafficCounter(
                sequential_read_bytes=access.column_bytes + (n * 4 if index > 0 else 0.0),
                sequential_write_bytes=n * 4,
                compute_ops=n * 2.0,
            )
            time.merge(self.simulator.run(traffic, cores=self.effective_cores, label=f"select-{access.column}").time,
                       prefix=f"select{index}.")

        # Operator-at-a-time disjunctions: every OR leaf beyond the one
        # select per column above is its own extra scan, and every OR
        # alternative needs a selection-vector union pass -- all fully
        # materialized.  Fused band predicates (pure conjunctions) add
        # nothing here; this is the materialization tax the paper warns
        # about when such systems are used as baselines.
        for index, stage in enumerate(profile.filter_stages):
            extra_scans = max(stage.leaf_count - len(stage.columns), 0)
            for scan in range(extra_scans):
                traffic = TrafficCounter(
                    sequential_read_bytes=n * 4,
                    sequential_write_bytes=n * 4,
                    compute_ops=n * 2.0,
                )
                time.merge(
                    self.simulator.run(traffic, cores=self.effective_cores, label=f"select-leaf{index}.{scan}").time,
                    prefix=f"select-leaf{index}.{scan}.",
                )
            for union in range(stage.or_branches):
                traffic = TrafficCounter(
                    sequential_read_bytes=n * 8,
                    sequential_write_bytes=n * 4,
                    compute_ops=n * 1.0,
                )
                time.merge(
                    self.simulator.run(traffic, cores=self.effective_cores, label=f"union{index}.{union}").time,
                    prefix=f"union{index}.{union}.",
                )

        # Build phase.
        for stage in profile.joins:
            traffic = TrafficCounter(
                sequential_read_bytes=stage.build_scan_bytes,
                sequential_write_bytes=stage.hash_table_bytes,
                compute_ops=float(stage.dimension_rows) * 4.0,
            )
            time.merge(self.simulator.run(traffic, cores=self.effective_cores, label=f"build-{stage.dimension}").time,
                       prefix=f"build.{stage.dimension}.")

        # Each join is its own operator: read the key column and the current
        # row-id list, probe, and materialize the surviving row ids plus the
        # fetched payload column.
        for stage in profile.joins:
            surviving = stage.probe_rows * stage.selectivity
            traffic = TrafficCounter(
                sequential_read_bytes=stage.probe_rows * 4 + stage.probe_rows * 8,
                sequential_write_bytes=surviving * 8 + (surviving * 4 if stage.has_payload else 0.0),
                random_accesses=stage.probe_rows,
                random_working_set_bytes=stage.hash_table_bytes,
                random_access_bytes=8.0,
                compute_ops=stage.probe_rows * 4.0,
            )
            time.merge(
                self.simulator.run(traffic, cores=self.effective_cores, dependent_random=True, label=f"join-{stage.dimension}").time,
                prefix=f"join.{stage.dimension}.",
            )

        # Final aggregation: re-read the materialized measure and group columns.
        measures = [a for a in profile.column_accesses if a.role == "measure"]
        aggregate = TrafficCounter(
            sequential_read_bytes=sum(a.column_bytes for a in measures)
            + profile.result_input_rows * 4 * max(len(query.group_by), 1),
            sequential_write_bytes=float(profile.num_groups) * profile.output_row_bytes,
            random_accesses=profile.result_input_rows,
            random_working_set_bytes=float(profile.num_groups) * profile.output_row_bytes,
            compute_ops=profile.result_input_rows * 4.0,
        )
        time.merge(self.simulator.run(aggregate, cores=self.effective_cores, label="aggregate").time, prefix="aggregate.")
        return time

    def run(self, query: SSBQuery) -> QueryResult:
        value, profile = execute_query(self.db, query)
        time = self.simulate(query, profile)
        return QueryResult(query=query.name, engine=self.name, value=value, time=time,
                           stats={"groups": float(profile.num_groups)})


@register_engine("omnisci")
class OmnisciLikeEngine:
    """A thread-per-row GPU engine without tile staging or coalesced output."""

    name = "omnisci"

    def __init__(self, db: Database, simulator: GPUSimulator | None = None) -> None:
        self.db = db
        self.simulator = simulator or GPUSimulator()

    def simulate(self, query: SSBQuery, profile: QueryProfile) -> TimeBreakdown:
        """Simulated runtime for an already-collected profile."""
        time = TimeBreakdown()
        n = float(profile.fact_rows)
        launch = KernelLaunch(items_per_thread=1, label="omnisci-kernel")

        # Build kernels (same as the tile-based engine; the builds are tiny).
        for stage in profile.joins:
            traffic = TrafficCounter(
                sequential_read_bytes=stage.build_scan_bytes,
                sequential_write_bytes=stage.hash_table_bytes,
                compute_ops=float(stage.dimension_rows) * 3.0,
            )
            time.merge(self.simulator.run_kernel(traffic, KernelLaunch(label=f"build-{stage.dimension}")).time,
                       prefix=f"build.{stage.dimension}.")

        # One kernel per operator; per-row accesses are uncoalesced, so every
        # 4-byte column value read moves a 32-byte sector, and each operator
        # materializes a full-width intermediate to global memory.
        for index, access in enumerate(profile.column_accesses):
            rows = min(access.rows_needed, n)
            read_bytes = min(rows * _UNCOALESCED_SECTOR_BYTES, access.column_bytes * 8)
            traffic = TrafficCounter(
                sequential_read_bytes=read_bytes + (n * 4 if index > 0 else 0.0),
                sequential_write_bytes=n * 4,
                compute_ops=rows * 2.0,
            )
            time.merge(self.simulator.run_kernel(traffic, launch).time, prefix=f"op{index}.")

        # Disjunctions are operators too: one extra kernel per OR leaf
        # beyond the single scan each column got above, and one union kernel
        # per OR alternative, each materializing a full-width intermediate.
        # The fused tile kernel (Standalone GPU) evaluates the same tree
        # predicated in registers for free -- the Section 3.3 asymmetry.
        for index, stage in enumerate(profile.filter_stages):
            extra_kernels = max(stage.leaf_count - len(stage.columns), 0) + stage.or_branches
            for extra in range(extra_kernels):
                traffic = TrafficCounter(
                    sequential_read_bytes=n * 8,
                    sequential_write_bytes=n * 4,
                    compute_ops=n * 1.0,
                )
                time.merge(
                    self.simulator.run_kernel(traffic, launch).time, prefix=f"or{index}.{extra}."
                )

        # Join probe kernels with scattered output writes.
        for stage in profile.joins:
            surviving = stage.probe_rows * stage.selectivity
            traffic = TrafficCounter(
                sequential_read_bytes=stage.probe_rows * _UNCOALESCED_SECTOR_BYTES,
                random_accesses=stage.probe_rows + surviving,
                random_working_set_bytes=max(stage.hash_table_bytes, surviving * 8),
                random_access_bytes=8.0,
                compute_ops=stage.probe_rows * 4.0,
            )
            time.merge(self.simulator.run_kernel(traffic, launch).time, prefix=f"join.{stage.dimension}.")

        # Aggregation kernel with a global atomic per surviving row.
        aggregate = TrafficCounter(
            sequential_read_bytes=profile.result_input_rows * _UNCOALESCED_SECTOR_BYTES,
            atomic_updates=profile.result_input_rows,
            atomic_targets=float(profile.num_groups),
            compute_ops=profile.result_input_rows * 3.0,
        )
        time.merge(self.simulator.run_kernel(aggregate, launch).time, prefix="aggregate.")
        return time

    def run(self, query: SSBQuery) -> QueryResult:
        value, profile = execute_query(self.db, query)
        time = self.simulate(query, profile)
        return QueryResult(query=query.name, engine=self.name, value=value, time=time,
                           stats={"groups": float(profile.num_groups)})
