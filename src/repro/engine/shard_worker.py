"""The worker-process side of sharded execution.

This module is imported inside pool worker processes (its entry point,
:func:`run_shard_task`, must be a top-level function so tasks pickle under
the ``spawn`` start method).  Workers are long-lived and stateless from the
parent's point of view: everything a task needs arrives in its
:class:`~repro.engine.shard.ShardTask` manifest, and everything expensive a
worker derives from a manifest is memoized in process-global caches so
steady-state tasks pay only the partial-pipeline work itself:

* ``_SEGMENTS`` -- attached :class:`multiprocessing.shared_memory.
  SharedMemory` handles by segment name.  These must outlive every array
  view over them, so they live for the whole worker process.
* ``_TABLES`` -- reconstructed ``(Database, ZoneMapCache)`` pairs keyed by
  the export's ``(table, version)`` plus the zone geometry.  The zone
  cache's :class:`~repro.storage.zonemap.TableZoneMaps` is pre-populated
  with the parent's bit-packed twins (attached, not re-packed) for every
  column, so a worker never derives packing eligibility or repacks; only
  the cheap per-column min/max reductions happen worker-side, lazily.
* ``_ARTIFACTS`` -- :class:`~repro.engine.physical.BuildArtifact`
  reconstructions of shm-shipped lookups, by token.

Workers never build dimension tables at all: every probe consumes a
parent-built artifact, which is what keeps the sharded plane's profile
slices (build rows, hash-table bytes) identical to the monolithic plane's.
"""

from __future__ import annotations

from repro.engine.cache import ZoneMapCache, activate_zones
from repro.engine.physical import BuildArtifact, execute_physical_partial, lower_query
from repro.engine.shard import InlineArtifact, ShardTask, ShmArtifact
from repro.faults import FaultAction, execute_fault, unlink_segment
from repro.storage.database import Database
from repro.storage.shm import attach_array, attach_table

#: Attached segment handles by name -- keep-alive for every array view this
#: process holds (see module docstring).
_SEGMENTS: dict = {}
#: ``(table, version, zones, zone_size, packed_max_bits)`` -> (db, zone_cache).
_TABLES: dict = {}
#: Shm-shipped build artifacts by token.
_ARTIFACTS: dict = {}


def _database_for(task: ShardTask) -> tuple[Database, ZoneMapCache]:
    """The reconstructed single-table database (and zone cache) of a task."""
    export = task.export
    key = (export.name, export.version, task.zones, task.zone_size, task.packed_max_bits)
    held = _TABLES.get(key)
    if held is not None:
        return held
    table, packed = attach_table(export, _SEGMENTS)
    db = Database(name=f"shard-{export.name}", tables={export.name: table})
    zone_cache = ZoneMapCache(db, zone_size=task.zone_size, packed_max_bits=task.packed_max_bits)
    if task.zones:
        maps = zone_cache.maps(db, table)
        # Pre-populate every column's packed slot with the parent's twin
        # (or its None verdict): the compression plan is decided once, in
        # the parent, and workers must follow it -- both to skip the O(n)
        # packing pass and so every shard gathers from identical words.
        for name in table.columns:
            maps._packed[name] = packed.get(name)
    _TABLES[key] = (db, zone_cache)
    return db, zone_cache


def _resolve_artifact(ref: InlineArtifact | ShmArtifact) -> BuildArtifact:
    """An artifact ref back into a probe-ready :class:`BuildArtifact`."""
    if isinstance(ref, InlineArtifact):
        return ref.artifact
    held = _ARTIFACTS.get(ref.token)
    if held is not None:
        return held
    lookup = attach_array(ref.lookup, _SEGMENTS)
    present = attach_array(ref.present, _SEGMENTS)
    artifact = BuildArtifact(
        dimension=ref.dimension,
        dimension_rows=ref.dimension_rows,
        build_rows=ref.build_rows,
        hash_table_bytes=ref.hash_table_bytes,
        build_scan_bytes=ref.build_scan_bytes,
        lookup=lookup,
        present=present,
        key_base=ref.key_base,
        key_low=ref.key_low,
        key_high=ref.key_high,
    )
    _ARTIFACTS[ref.token] = artifact
    return artifact


def _apply_fault(task: ShardTask) -> None:
    """Execute the task's armed fault, if any (chaos testing only).

    ``kill``/``raise``/``latency`` run through the shared
    :func:`~repro.faults.execute_fault`.  ``unlink`` is worker-shaped: it
    tears the export's first column segment out of ``/dev/shm`` and drops
    this process's memoized reconstructions of the export, so the re-attach
    deterministically observes :class:`FileNotFoundError` even on a warm
    pool -- the exact debris a crashed owner leaves for a sibling.
    """
    action: "FaultAction | None" = task.fault
    if action is None:
        return
    if action.mode != "unlink":
        execute_fault(action)
        return
    export = task.export
    unlink_segment(export.columns[0][1].spec.segment)
    for key in [k for k in _TABLES if k[0] == export.name and k[1] == export.version]:
        del _TABLES[key]
    names = {item.spec.segment for _, item in export.columns}
    names |= {item.words.segment for _, item in export.packed if item is not None}
    for name in names:
        segment = _SEGMENTS.pop(name, None)
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view outlived the memo
                pass


def run_shard_task(task: ShardTask):
    """Execute one shard and return ``(partial, profile, zone_delta)``.

    ``zone_delta`` is the 4-tuple of zone counters this task accumulated
    (skipped, taken, evaluated, rows pruned), read as the before/after
    difference of the worker's zone cache so the parent can fold shard
    pruning activity into its own counters.  Exceptions propagate to the
    parent through the future, carrying the worker traceback.
    """
    _apply_fault(task)
    db, zone_cache = _database_for(task)
    artifacts = tuple(_resolve_artifact(ref) for ref in task.artifacts)
    if task.zones:
        before = zone_cache.info()
        with activate_zones(zone_cache):
            plan = lower_query(task.query, db)
            partial, profile = execute_physical_partial(
                db, plan, task.start, task.stop, artifacts=artifacts
            )
        after = zone_cache.info()
        delta = (
            after.zones_skipped - before.zones_skipped,
            after.zones_taken - before.zones_taken,
            after.zones_evaluated - before.zones_evaluated,
            after.rows_pruned - before.rows_pruned,
        )
    else:
        plan = lower_query(task.query, db)
        partial, profile = execute_physical_partial(
            db, plan, task.start, task.stop, artifacts=artifacts
        )
        delta = (0, 0, 0, 0)
    return partial, profile, delta
