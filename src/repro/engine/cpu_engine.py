"""Standalone CPU engine (the paper's hand-optimized CPU implementation).

Execution strategy (Section 5.2, "Standalone CPU"):

* For every dimension join, scan the (filtered) dimension once and build a
  cache-resident hash table keyed on the dimension key.
* Run a single pipelined pass over the fact table: vectors of rows flow
  through the fact filters (SIMD predicates), the chained hash-table probes,
  and into the final grouped aggregate without materializing intermediates.
* The probes of the chained joins are *dependent* random accesses: the CPU
  cannot hide their latency behind the streaming scan, which is why measured
  CPU runtimes exceed the bandwidth-saturated model (Section 5.3).
"""

from __future__ import annotations

from repro.api.registry import register_engine
from repro.engine.plan import QueryProfile, execute_query
from repro.engine.result import QueryResult
from repro.hardware.counters import TrafficCounter
from repro.sim.cpu import CPUSimulator
from repro.sim.timing import TimeBreakdown
from repro.ssb.queries import SSBQuery
from repro.storage import Database


@register_engine("cpu", aliases=("standalone-cpu",))
class CPUStandaloneEngine:
    """Pipelined, vectorized, SIMD CPU query engine."""

    name = "standalone-cpu"

    def __init__(self, db: Database, simulator: CPUSimulator | None = None) -> None:
        self.db = db
        self.simulator = simulator or CPUSimulator()

    # ------------------------------------------------------------------
    def build_time(self, profile: QueryProfile) -> TimeBreakdown:
        """Time to build the dimension hash tables."""
        time = TimeBreakdown()
        for stage in profile.joins:
            traffic = TrafficCounter(
                sequential_read_bytes=stage.build_scan_bytes,
                sequential_write_bytes=stage.hash_table_bytes,
                compute_ops=float(stage.dimension_rows) * 3.0,
            )
            execution = self.simulator.run(traffic, use_simd=True, label=f"build-{stage.dimension}")
            time.merge(execution.time, prefix=f"build.{stage.dimension}.")
        return time

    def probe_time(self, profile: QueryProfile) -> TimeBreakdown:
        """Time of the pipelined probe pass over the fact table."""
        line = self.simulator.spec.cache_line_bytes
        time = TimeBreakdown()

        # Streaming component: fact columns under the selective-access rule,
        # plus the (small) grouped output.  Fused band predicates evaluate
        # branch-free inside the SIMD pipeline; each extra OR alternative
        # costs one more predicated pass over the L1-resident vector to
        # merge its lane into the selection mask, so branchy disjunctions
        # are charged extra compute and L1 traffic (conjunctive plans are
        # unchanged).
        or_branches = profile.filter_or_branches()
        streaming = TrafficCounter(
            sequential_read_bytes=profile.selective_column_bytes(line),
            sequential_write_bytes=float(profile.num_groups) * profile.output_row_bytes,
            shared_bytes=float(profile.fact_rows) * 4.0 * or_branches,
            compute_ops=float(profile.fact_rows) * (4.0 + float(or_branches)),
        )
        scan_exec = self.simulator.run(
            streaming, use_simd=True, non_temporal_writes=True, label="fact-scan"
        )
        time.merge(scan_exec.time, prefix="scan.")

        # Dependent probes of each chained join.
        for stage in profile.joins:
            probe = TrafficCounter(
                random_accesses=stage.probe_rows,
                random_working_set_bytes=stage.hash_table_bytes,
                random_access_bytes=8.0,
                compute_ops=stage.probe_rows * 3.0,
            )
            probe_exec = self.simulator.run(
                probe, dependent_random=True, label=f"probe-{stage.dimension}"
            )
            time.merge(probe_exec.time, prefix=f"probe.{stage.dimension}.")

        # Grouped aggregation over the surviving rows (tiny, cache resident).
        aggregate = TrafficCounter(
            random_accesses=profile.result_input_rows,
            random_working_set_bytes=float(profile.num_groups) * profile.output_row_bytes,
            random_access_bytes=profile.output_row_bytes,
            compute_ops=profile.result_input_rows * 3.0,
        )
        agg_exec = self.simulator.run(aggregate, label="aggregate")
        time.merge(agg_exec.time, prefix="aggregate.")
        return time

    # ------------------------------------------------------------------
    def simulate(self, query: SSBQuery, profile: QueryProfile) -> TimeBreakdown:
        """Simulated runtime of ``query`` for an already-collected profile.

        Separated from :meth:`run` so the experiment harness can cost a
        profile that was rescaled to the paper's SF 20 data sizes.
        """
        time = TimeBreakdown()
        time.merge(self.build_time(profile))
        time.merge(self.probe_time(profile))
        return time

    def run(self, query: SSBQuery) -> QueryResult:
        """Execute a query and simulate its runtime on the paper's CPU."""
        value, profile = execute_query(self.db, query)
        time = self.simulate(query, profile)

        traffic = TrafficCounter(
            sequential_read_bytes=profile.selective_column_bytes(self.simulator.spec.cache_line_bytes),
            sequential_write_bytes=float(profile.num_groups) * profile.output_row_bytes,
        )
        stats = {
            "fact_rows": float(profile.fact_rows),
            "result_rows": profile.result_input_rows,
            "groups": float(profile.num_groups),
            "fact_filter_selectivity": profile.fact_filter_selectivity,
        }
        return QueryResult(
            query=query.name, engine=self.name, value=value, time=time, traffic=traffic, stats=stats
        )
