"""Predicate evaluation against columnar data.

Predicates arrive either as the legacy flat sequences of
:class:`~repro.ssb.queries.FilterSpec` (implicit conjunctions) or as
arbitrary boolean :class:`~repro.ssb.queries.Pred` trees; both are
normalized through :func:`~repro.ssb.queries.as_pred` and evaluated
recursively into NumPy boolean masks by :func:`evaluate_pred`.
"""

from __future__ import annotations

import numpy as np

from repro.ssb.queries import And, FilterSpec, Leaf, Not, Or, as_pred
from repro.storage import Table


def resolve_filter_value(table: Table, spec: FilterSpec):
    """Rewrite a filter's constant(s) into dictionary codes when needed."""
    if not spec.encoded:
        return spec.value
    encoder = table.dictionaries.get(spec.column)
    if encoder is None:
        raise KeyError(
            f"filter on {spec.column!r} is marked encoded but table {table.name!r} has no "
            f"dictionary for it"
        )
    if spec.op == "in":
        return tuple(encoder.encode_value(v) for v in spec.value)
    if spec.op == "between":
        low, high = spec.value
        return (encoder.encode_value(low), encoder.encode_value(high))
    return encoder.encode_value(spec.value)


def compare_values(values: np.ndarray, spec: FilterSpec, constant) -> np.ndarray:
    """Apply one filter's comparison to an array of (possibly gathered) values."""
    op = spec.op
    if op == "eq":
        return values == constant
    if op == "ne":
        return values != constant
    if op == "lt":
        return values < constant
    if op == "le":
        return values <= constant
    if op == "gt":
        return values > constant
    if op == "ge":
        return values >= constant
    if op == "between":
        low, high = constant
        return (values >= low) & (values <= high)
    if op == "in":
        return np.isin(values, np.asarray(constant))
    raise ValueError(f"unsupported filter operator {op!r}")


def _check_filter_types(values: np.ndarray, spec: FilterSpec, constant) -> None:
    if not spec.encoded and np.issubdtype(values.dtype, np.number):
        operands = (
            tuple(constant)
            if isinstance(constant, (tuple, list, set, frozenset, np.ndarray))
            else (constant,)
        )
        if any(isinstance(v, str) for v in operands):
            # NumPy would resolve str-vs-numeric comparisons to a scalar False,
            # silently selecting zero rows instead of failing.
            raise TypeError(
                f"filter on {spec.column!r} compares string constant(s) against a numeric "
                f"column; mark the filter encoded=True or build the query against the "
                f"database so constants are rewritten to dictionary codes"
            )


def evaluate_filter(table: Table, spec: FilterSpec, packed=None) -> np.ndarray:
    """Evaluate one filter against a table, returning a boolean mask.

    With ``packed`` (a mapping of column name to
    :class:`~repro.storage.compression.BitPackedColumn`) the comparison
    reads the packed twin -- decoded exactly, so the mask is identical;
    only the bytes touched differ.
    """
    if packed and spec.column in packed:
        values = packed[spec.column].unpack()
    else:
        values = table[spec.column]
    constant = resolve_filter_value(table, spec)
    _check_filter_types(values, spec, constant)
    return compare_values(values, spec, constant)


def evaluate_pred(table: Table, pred, packed=None) -> np.ndarray:
    """Evaluate a predicate tree against ``table``, returning a boolean mask.

    ``pred`` may be a :class:`~repro.ssb.queries.Pred`, a bare
    :class:`~repro.ssb.queries.FilterSpec`, or a tuple of specs (the legacy
    conjunction shape).  An empty :class:`~repro.ssb.queries.And` selects
    every row; an empty :class:`~repro.ssb.queries.Or` selects none (the
    identities of the respective operators).  ``packed`` optionally maps
    column names to packed twins the comparisons should read instead.
    """
    pred = as_pred(pred)
    if isinstance(pred, Leaf):
        return evaluate_filter(table, pred.spec, packed)
    if isinstance(pred, And):
        mask = np.ones(table.num_rows, dtype=bool)
        for child in pred.children:
            mask &= evaluate_pred(table, child, packed)
        return mask
    if isinstance(pred, Or):
        mask = np.zeros(table.num_rows, dtype=bool)
        for child in pred.children:
            mask |= evaluate_pred(table, child, packed)
        return mask
    if isinstance(pred, Not):
        return ~evaluate_pred(table, pred.child, packed)
    raise TypeError(f"unsupported predicate node {type(pred).__name__}")


def evaluate_pred_at(table: Table, pred, sel: np.ndarray, packed=None) -> np.ndarray:
    """Evaluate a predicate tree only at the rows named by ``sel``.

    The late-materialization counterpart of :func:`evaluate_pred`: instead
    of producing a full-width mask, each referenced column is gathered once
    at selection-vector width (``table[column][sel]``) and every comparison
    runs over the gathered values.  Returns a boolean array of ``sel.size``
    -- ``sel[evaluate_pred_at(table, pred, sel)]`` is the refined selection
    vector.  When the surviving fraction is small this touches a tiny slice
    of each column instead of re-scanning it, which is the whole point of
    carrying selection vectors between operators.

    Columns named in ``packed`` gather from their packed twin
    (:meth:`~repro.storage.compression.BitPackedColumn.unpack_at`: a
    word-aligned gather plus shift/mask) -- the compressed scan path, which
    touches ``bit_width`` bits per surviving row instead of a 4-byte value.
    """
    gathered: dict[str, np.ndarray] = {}

    def gather(column: str) -> np.ndarray:
        values = gathered.get(column)
        if values is None:
            if packed and column in packed:
                values = packed[column].unpack_at(sel)
            else:
                values = table[column][sel]
            gathered[column] = values
        return values

    def walk(node) -> np.ndarray:
        if isinstance(node, Leaf):
            spec = node.spec
            constant = resolve_filter_value(table, spec)
            values = gather(spec.column)
            _check_filter_types(values, spec, constant)
            return compare_values(values, spec, constant)
        if isinstance(node, And):
            keep = np.ones(sel.shape[0], dtype=bool)
            for child in node.children:
                keep &= walk(child)
            return keep
        if isinstance(node, Or):
            keep = np.zeros(sel.shape[0], dtype=bool)
            for child in node.children:
                keep |= walk(child)
            return keep
        if isinstance(node, Not):
            return ~walk(node.child)
        raise TypeError(f"unsupported predicate node {type(node).__name__}")

    return walk(as_pred(pred))


def evaluate_filters(table: Table, specs) -> np.ndarray:
    """AND a sequence of filters together (all-true for an empty sequence)."""
    return evaluate_pred(table, And(*specs))


# ----------------------------------------------------------------------
# Predicate shape: how a tree maps onto selection hardware.
#
# A conjunction of single-column comparisons evaluates as one fused,
# branch-free pass (the paper's Section 4.2 ``pred``/``simd_pred`` selection
# variants); every OR alternative beyond straight-line evaluation costs an
# extra predicated pass on SIMD CPUs, a short-circuit branch on compiled
# scalar code, and a whole extra operator (select + union of selection
# vectors) on operator-at-a-time engines.  These helpers measure that shape
# so the selection operators and the engine cost models can charge branchy
# disjunctions differently from fused band predicates.
# ----------------------------------------------------------------------

def predicate_leaf_count(pred) -> int:
    """Number of single-column comparisons in the tree."""
    return sum(1 for _ in as_pred(pred).leaves())


def predicate_or_branches(pred) -> int:
    """Extra disjunctive alternatives: ``sum(len(children) - 1)`` over Or nodes.

    Zero for any pure conjunction (including a fused band predicate such as
    ``between``), so conjunctive plans cost exactly what they did before
    disjunction support existed.
    """
    pred = as_pred(pred)
    if isinstance(pred, Leaf):
        return 0
    if isinstance(pred, Not):
        return predicate_or_branches(pred.child)
    extra = max(len(pred.children) - 1, 0) if isinstance(pred, Or) else 0
    return extra + sum(predicate_or_branches(child) for child in pred.children)
