"""Memoization of the functional execution pass.

Every engine answers a query by first running the shared functional
executor (:func:`repro.engine.plan.execute_query`) and then costing the
collected profile under its own hardware model.  The *answer* and the
*profile* depend only on ``(database, query)``, so when one query runs on
several engines -- :meth:`repro.api.Session.compare` across the paper's six
execution strategies -- the functional pass is pure repeated work.

:class:`ExecutionCache` memoizes that pass.  A :class:`~repro.api.Session`
activates its cache around each engine call via :func:`activate`;
``execute_query`` consults :func:`active_cache` and replays the memoized
``(value, profile)`` on a hit.  Cached entries are deep-copied on the way
out so an engine (or the experiment harness, which rescales profiles to the
paper's SF 20 sizes) can never mutate another engine's view.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, NamedTuple


class CacheInfo(NamedTuple):
    """Counters of one :class:`ExecutionCache` (mirrors ``functools``)."""

    hits: int
    misses: int
    size: int
    maxsize: int


class ExecutionCache:
    """An LRU memo of ``(value, profile)`` keyed by query spec.

    The cache is bound to one database at construction: queries are hashable
    frozen dataclasses, databases are not, so ``fetch`` falls through to an
    uncached execution whenever it is handed a different database (or an
    unhashable hand-built query).
    """

    def __init__(self, db: object, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.db = db
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    def fetch(self, db, query, compute: Callable):
        """``compute(db, query)``, memoized per query for the bound database."""
        if db is not self.db:
            return compute(db, query)
        try:
            cached = self._entries.get(query)
        except TypeError:  # a hand-built spec holding e.g. a list constant
            return compute(db, query)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(query)
            return copy.deepcopy(cached)
        self.misses += 1
        value, profile = compute(db, query)
        self._entries[query] = (copy.deepcopy(value), copy.deepcopy(profile))
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return value, profile

    def info(self) -> CacheInfo:
        """Hit/miss counters and occupancy."""
        return CacheInfo(self.hits, self.misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionCache({self.info()})"


#: The cache the *current* execution context consults, if any.  Installed by
#: :func:`activate`; plain module state (not per-thread) because engine runs
#: are synchronous single-threaded calls.
_ACTIVE: ExecutionCache | None = None


def active_cache() -> ExecutionCache | None:
    """The cache installed by the innermost :func:`activate`, or ``None``."""
    return _ACTIVE


@contextmanager
def activate(cache: ExecutionCache):
    """Route ``execute_query`` calls through ``cache`` for the duration."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous
