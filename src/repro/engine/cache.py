"""Caches shared across query executions.

Three caches live here, all activated through context-local scopes:

* :class:`ExecutionCache` memoizes the whole functional execution pass.
  Every engine answers a query by first running the shared functional
  executor (:func:`repro.engine.plan.execute_query`) and then costing the
  collected profile under its own hardware model.  The *answer* and the
  *profile* depend only on ``(database, query)``, so when one query runs on
  several engines -- :meth:`repro.api.Session.compare` across the paper's
  six execution strategies -- the functional pass is pure repeated work.
  A :class:`~repro.api.Session` activates its cache around each engine call
  via :func:`activate`; ``execute_query`` consults :func:`active_cache` and
  replays the memoized ``(value, profile)`` on a hit.  Cached entries are
  deep-copied on the way out so an engine (or the experiment harness, which
  rescales profiles to the paper's SF 20 sizes) can never mutate another
  engine's view.

* :class:`BuildArtifactCache` memoizes one *stage* of that pass: the
  dimension hash-table builds of the physical pipeline
  (:class:`repro.engine.physical.BuildLookup`).  A build artifact depends
  only on ``(dimension, key_column, payload_column, predicate)``, so a batch
  of queries touching the same dimensions -- ``Session.run_many(...,
  share_builds=True)`` -- constructs each distinct lookup once and shares it
  across the batch (the ROADMAP's batched-executor item).  Artifacts are
  immutable (their arrays are marked read-only), so sharing is safe without
  copying.

* :class:`ZoneMapCache` holds the data-skipping statistics of the pruned
  scan plane: one lazily-built
  :class:`~repro.storage.zonemap.TableZoneMaps` per table (zone min/max,
  tiny-domain bitsets, packed column twins).  Statistics depend only on
  the stored data, never on a query, so one cache serves every query a
  :class:`~repro.api.Session` runs; it also accumulates the pipeline's
  zone skip/take/evaluate counters, surfaced through
  ``Session.cache_info("zones")``.

All three caches invalidate by **(table, version)** under streaming ingest
(:meth:`repro.storage.Table.append` bumps a monotonic per-table version):
execution memo keys fold in :func:`table_versions`, build-artifact keys
carry the dimension's version (:meth:`repro.engine.physical.BuildLookup.
fetch_artifact`), and :meth:`ZoneMapCache.maps` *extends* a grown table's
statistics incrementally instead of rebuilding them.  An append to one
dimension therefore invalidates exactly that dimension's artifacts; every
other entry keeps hitting.

The active-cache slots are :class:`contextvars.ContextVar`, not module
globals: nested :func:`activate` scopes restore the previous cache on exit
via tokens, and concurrent batch executions (threads or asyncio tasks) each
see their own binding instead of clobbering one another.

Both caches are thread-safe: LRU mutation happens under an
:class:`threading.RLock`, so one cache instance can back a morsel-parallel
``Session.run_many(workers=N)`` batch.  The build cache goes further and
arbitrates racing misses exactly-once (in-flight events), because a build
artifact is expensive shared state; the execution cache lets racing workers
duplicate a computation instead of serializing whole query executions.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Hashable, NamedTuple


class CacheInfo(NamedTuple):
    """Counters of one :class:`ExecutionCache` (mirrors ``functools``)."""

    hits: int
    misses: int
    size: int
    maxsize: int


class CounterSnapshot(NamedTuple):
    """A point-in-time reading of every cache counter a Session carries.

    Snapshots subtract (``after - before``) into a delta covering exactly
    the work done between the two readings, which is how the serving layer
    attributes cache behaviour to a single request: snapshot around one
    execution and read e.g. ``delta.execution_hits`` to learn whether the
    answer was replayed from the execution memo.  Counters are monotonic,
    so deltas taken on one thread are exact when the session is quiet and a
    best-effort attribution when other workers run concurrently.
    """

    execution_hits: int = 0
    execution_misses: int = 0
    build_hits: int = 0
    build_misses: int = 0
    zone_hits: int = 0
    zone_misses: int = 0
    zones_skipped: int = 0
    zones_taken: int = 0
    zones_evaluated: int = 0
    rows_pruned: int = 0
    zone_extensions: int = 0
    #: Process-parallel sharded execution: queries dispatched to the shard
    #: pool, shard tasks run, and queries that fell back to the monolithic
    #: path (off-database, or an empty fact table).
    shard_queries: int = 0
    shard_tasks: int = 0
    shard_fallbacks: int = 0
    #: Fault recovery: shard-task retry rounds absorbed, worker pools torn
    #: down and rebuilt after a failure, and queries that exhausted their
    #: retry budget and fell back to the monolithic plane.
    shard_retries: int = 0
    pool_rebuilds: int = 0
    failure_fallbacks: int = 0

    def __sub__(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(*(a - b for a, b in zip(self, earlier)))

    @property
    def execution_cached(self) -> bool:
        """Whether the covered work replayed at least one memoized execution."""
        return self.execution_hits > 0

    @property
    def builds_shared(self) -> bool:
        """Whether the covered work reused at least one shared build artifact."""
        return self.build_hits > 0


def snapshot_counters(
    execution: "ExecutionCache | None",
    builds: "BuildArtifactCache | None",
    zones: "ZoneMapCache | None",
    shards: object | None = None,
) -> CounterSnapshot:
    """One consistent-enough reading across a session's caches (and shard pool).

    Each cache is read under its own lock; there is no global lock ordering
    the reads, so a snapshot taken while workers run is a best-effort
    point in time -- exactly what delta attribution needs, and no more.
    ``shards`` is the session's shard executor, if one has been spun up
    (anything with a ``stats()`` returning ``queries``/``tasks``/
    ``fallbacks``).
    """
    exec_info = execution.info() if execution is not None else None
    build_info = builds.info() if builds is not None else None
    zone_info = zones.info() if zones is not None else None
    shard_info = shards.stats() if shards is not None else None
    return CounterSnapshot(
        execution_hits=exec_info.hits if exec_info else 0,
        execution_misses=exec_info.misses if exec_info else 0,
        build_hits=build_info.hits if build_info else 0,
        build_misses=build_info.misses if build_info else 0,
        zone_hits=zone_info.hits if zone_info else 0,
        zone_misses=zone_info.misses if zone_info else 0,
        zones_skipped=zone_info.zones_skipped if zone_info else 0,
        zones_taken=zone_info.zones_taken if zone_info else 0,
        zones_evaluated=zone_info.zones_evaluated if zone_info else 0,
        rows_pruned=zone_info.rows_pruned if zone_info else 0,
        zone_extensions=zone_info.extended if zone_info else 0,
        shard_queries=shard_info.queries if shard_info else 0,
        shard_tasks=shard_info.tasks if shard_info else 0,
        shard_fallbacks=shard_info.fallbacks if shard_info else 0,
        shard_retries=shard_info.retries if shard_info else 0,
        pool_rebuilds=shard_info.pool_rebuilds if shard_info else 0,
        failure_fallbacks=shard_info.failure_fallbacks if shard_info else 0,
    )


def table_versions(db, query) -> "tuple[tuple[str, int], ...] | None":
    """The ``(table, version)`` pairs a query's answer depends on, sorted.

    The versioning half of every cache key: an answer (and its profile)
    is a pure function of the query spec plus the contents of the fact
    table and every joined dimension, and contents are identified by the
    table's monotonic :attr:`~repro.storage.Table.version`.  Returns
    ``None`` for hand-built specs whose shape cannot be introspected --
    those fall through uncached, exactly like unhashable specs do.
    """
    try:
        names = [query.fact]
        for join in query.joins:
            names.append(join.dimension)
            source = getattr(join, "source", None)
            if source is not None:
                names.append(source)
    except (AttributeError, TypeError):
        return None
    tables = getattr(db, "tables", None)
    if tables is None:
        return None
    versions = {
        name: getattr(tables[name], "version", 0) for name in names if name in tables
    }
    return tuple(sorted(versions.items()))


class ExecutionCache:
    """An LRU memo of ``(value, profile)`` keyed by query spec.

    The cache is bound to one database at construction: queries are hashable
    frozen dataclasses, databases are not, so ``fetch`` falls through to an
    uncached execution whenever it is handed a different database (or an
    unhashable hand-built query).

    Thread safety: every LRU mutation (lookup + recency bump, insert, evict,
    counters) happens under an :class:`threading.RLock`, so concurrent
    ``run_many(workers=N)`` batches share one cache without corrupting the
    ``OrderedDict``.  The *computation* runs outside the lock -- two workers
    racing on the same query may both execute it (the answers are identical;
    one result wins the insert), which is the right trade for a memo whose
    compute is a whole query execution.
    """

    def __init__(self, db: object, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.db = db
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _key(self, db, query):
        """The memo key: the spec plus the versions of the tables it reads.

        Folding :func:`table_versions` into the key is how streaming
        ingest invalidates by ``(table, version)`` instead of wiping the
        memo: an append bumps the fact (or one dimension's) version, so
        post-append fetches simply miss into a new entry while answers for
        other tables -- and for the *old* version, while it stays resident
        -- keep replaying.  Stale versions age out of the LRU naturally.
        ``None`` means "don't cache" (unhashable or uninspectable spec).
        """
        try:
            hash(query)
        except TypeError:  # a hand-built spec holding e.g. a list constant
            return None
        versions = table_versions(db, query)
        if versions is None:
            return None
        # Sharded executions (shards > 1) memoize under their own keys:
        # answers and folded profiles are byte-identical to the monolithic
        # plane, but per-request counter attribution differs (shard tasks
        # ran), so a replay must not masquerade as the other plane's entry.
        # shards=1 (and the threaded path) share the plain key -- the
        # regression tests in ``tests/test_sharded.py`` pin both behaviours.
        binding = active_shard_executor()
        if binding is not None and getattr(binding, "shards", 1) > 1:
            return (query, versions, ("shards", binding.shards))
        return (query, versions)

    def fetch(self, db, query, compute: Callable):
        """``compute(db, query)``, memoized per (query, table versions)."""
        if db is not self.db:
            return compute(db, query)
        key = self._key(db, query)
        if key is None:
            return compute(db, query)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return copy.deepcopy(cached)
            self.misses += 1
        value, profile = compute(db, query)
        with self._lock:
            self._entries[key] = (copy.deepcopy(value), copy.deepcopy(profile))
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return value, profile

    def contains(self, db, query) -> bool:
        """Whether ``fetch`` would replay ``query`` without executing it."""
        if db is not self.db:
            return False
        key = self._key(db, query)
        if key is None:
            return False
        with self._lock:
            return key in self._entries

    def info(self) -> CacheInfo:
        """Hit/miss counters and occupancy."""
        with self._lock:
            return CacheInfo(self.hits, self.misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionCache({self.info()})"


class BuildArtifactCache:
    """An LRU memo of dimension build artifacts, shared across a query batch.

    Keys are the full identity of a hash-table build -- ``(dimension,
    key_column, payload_column, predicate)`` -- so two joins share an
    artifact exactly when a real batched executor could reuse the build.
    The cache is bound to one database at construction (artifacts embed that
    database's arrays); :meth:`fetch` for a different database falls through
    to an uncached build, exactly like :class:`ExecutionCache`.

    Thread safety: LRU mutation is guarded by an :class:`threading.RLock`,
    and -- unlike :class:`ExecutionCache` -- misses are arbitrated
    **exactly-once**: the first worker to miss a key registers an in-flight
    event and builds outside the lock; every other worker racing on the same
    key waits on the event and then takes the hit path.  A morsel-parallel
    ``Session.run_many(workers=N, share_builds=True)`` therefore constructs
    each distinct artifact once no matter how the batch lands on the
    workers, and ``misses`` counts real constructions.
    """

    def __init__(self, db: object, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.db = db
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self._inflight: dict = {}

    # ------------------------------------------------------------------
    def fetch(self, db, key: Hashable, build: Callable[[], object]):
        """``build()``, memoized under ``key`` for the bound database.

        Hand-built specs can hold unhashable constants (e.g. a list inside a
        predicate); those fall through to an uncached build rather than
        erroring, so exotic queries still run -- they just never share.
        """
        if db is not self.db:
            return build()
        try:
            hash(key)
        except TypeError:  # unhashable hand-built predicate
            return build()
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return cached
                pending = self._inflight.get(key)
                if pending is None:
                    self._inflight[key] = pending = threading.Event()
                    self.misses += 1
                    owner = True
                else:
                    owner = False
            if not owner:
                # Another worker is constructing this artifact; wait and
                # re-check (the entry may also have been evicted by the time
                # we wake, in which case we become the new owner).
                pending.wait()
                continue
            try:
                artifact = build()
            except BaseException:
                with self._lock:
                    del self._inflight[key]
                    pending.set()  # waiters retry; one becomes the new owner
                raise
            with self._lock:
                self._entries[key] = artifact
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                del self._inflight[key]
                pending.set()
            return artifact

    def info(self) -> CacheInfo:
        """Hit/miss counters and occupancy."""
        with self._lock:
            return CacheInfo(self.hits, self.misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        """Drop every artifact and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BuildArtifactCache({self.info()})"


class ZoneInfo(NamedTuple):
    """Counters of one :class:`ZoneMapCache`.

    ``hits``/``misses`` count zone-map *constructions* per table (a miss
    builds the table's statistics holder, a hit reuses it); the zone
    counters accumulate what the pruned scan plane did with the
    classifications: zones proven empty and never materialized
    (``zones_skipped``), zones taken whole without evaluating the predicate
    (``zones_taken``), zones the statistics could not decide
    (``zones_evaluated``), and the total rows data skipping excluded
    without touching (``rows_pruned``).
    """

    hits: int
    misses: int
    tables: int
    zones_skipped: int
    zones_taken: int
    zones_evaluated: int
    rows_pruned: int
    #: Incremental zone-map maintenance events: an append-grown table whose
    #: statistics were *extended* (sealed zones reused, tail re-reduced,
    #: packed twins repacked only in the affected words) instead of rebuilt.
    extended: int = 0


class ZoneMapCache:
    """Per-table zone statistics plus the pipeline's data-skipping counters.

    Bound to one database like the other caches; :meth:`maps` for a
    different database returns ``None`` (callers fall back to the unpruned
    plane).  Thread-safe: the table dict and the counters mutate under an
    :class:`threading.RLock` here, and each
    :class:`~repro.storage.zonemap.TableZoneMaps` guards its own lazy
    per-column construction, so racing workers build every column's
    statistics (and packed twin) exactly once.
    """

    def __init__(self, db: object, zone_size: int | None = None, packed_max_bits: int | None = None) -> None:
        # Deferred import: the storage layer must not depend on this module.
        from repro.storage.zonemap import DEFAULT_ZONE_SIZE, PACKED_MAX_BITS

        if zone_size is not None and (zone_size < 1 or zone_size & (zone_size - 1)):
            # Fail at construction (e.g. the Session constructor), not deep
            # inside the first query's lowering.
            raise ValueError(f"zone_size must be a power of two, got {zone_size}")
        self.db = db
        self.zone_size = DEFAULT_ZONE_SIZE if zone_size is None else zone_size
        self.packed_max_bits = PACKED_MAX_BITS if packed_max_bits is None else packed_max_bits
        self.hits = 0
        self.misses = 0
        self.extended = 0
        self.zones_skipped = 0
        self.zones_taken = 0
        self.zones_evaluated = 0
        self.rows_pruned = 0
        self._tables: dict = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def maps(self, db, table):
        """The (memoized) zone statistics of ``table``, or ``None`` off-database.

        Version-aware: the cached :class:`TableZoneMaps` is bound to one
        frozen snapshot of the table, and a request for a *newer* version
        (the table grew by appends) extends it incrementally -- sealed-zone
        statistics and packed-twin words carry forward, only the tail is
        re-reduced (``extended`` counts these maintenance events).  A
        same-version request is a plain hit; anything that is not an
        append-grown successor (shrunk, replaced) rebuilds from scratch.
        One version of each table's maps is resident at a time, so every
        caller of a given version receives the *same instance* -- which is
        what lets :class:`~repro.engine.physical.ScanFilter` check
        classification staleness by identity.
        """
        from repro.storage.zonemap import TableZoneMaps

        if db is not self.db:
            return None
        snap = table.snapshot() if hasattr(table, "snapshot") else table
        version = getattr(snap, "version", 0)
        with self._lock:
            maps = self._tables.get(snap.name)
            if maps is not None:
                cached_version = getattr(maps.table, "version", 0)
                if cached_version == version and maps.table.num_rows == snap.num_rows:
                    self.hits += 1
                    return maps
                if cached_version < version and maps.table.num_rows <= snap.num_rows:
                    maps = maps.extended_to(snap)
                    self._tables[snap.name] = maps
                    self.extended += 1
                    return maps
            self.misses += 1
            maps = TableZoneMaps(snap, zone_size=self.zone_size, packed_max_bits=self.packed_max_bits)
            self._tables[snap.name] = maps
            return maps

    def record(self, skipped: int = 0, taken: int = 0, evaluated: int = 0, rows_pruned: int = 0) -> None:
        """Accumulate one operator's zone classification outcome."""
        with self._lock:
            self.zones_skipped += skipped
            self.zones_taken += taken
            self.zones_evaluated += evaluated
            self.rows_pruned += rows_pruned

    def info(self) -> ZoneInfo:
        """Construction and data-skipping counters."""
        with self._lock:
            return ZoneInfo(
                hits=self.hits,
                misses=self.misses,
                tables=len(self._tables),
                zones_skipped=self.zones_skipped,
                zones_taken=self.zones_taken,
                zones_evaluated=self.zones_evaluated,
                rows_pruned=self.rows_pruned,
                extended=self.extended,
            )

    def clear(self) -> None:
        """Drop every table's statistics and reset the counters."""
        with self._lock:
            self._tables.clear()
            self.hits = 0
            self.misses = 0
            self.extended = 0
            self.zones_skipped = 0
            self.zones_taken = 0
            self.zones_evaluated = 0
            self.rows_pruned = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZoneMapCache({self.info()})"


#: The caches the *current* execution context consults, if any.  Installed by
#: :func:`activate` / :func:`activate_builds` / :func:`activate_zones`.
#: ContextVars (not module globals) so nested scopes restore correctly and
#: threaded batch execution cannot clobber another context's binding.
_ACTIVE: ContextVar[ExecutionCache | None] = ContextVar("repro_active_execution_cache", default=None)
_ACTIVE_BUILDS: ContextVar[BuildArtifactCache | None] = ContextVar(
    "repro_active_build_cache", default=None
)
_ACTIVE_ZONES: ContextVar["ZoneMapCache | None"] = ContextVar("repro_active_zone_cache", default=None)
#: The sharded-execution binding of the current context: an opaque object
#: carrying ``shards`` (the effective shard count) and ``execute(db, query)``
#: (the shard-pool dispatch).  Kept opaque so this module never imports the
#: shard executor -- the engine layer routes through it, the API layer
#: installs it.
_ACTIVE_SHARDS: ContextVar[object | None] = ContextVar("repro_active_shard_binding", default=None)


def active_cache() -> ExecutionCache | None:
    """The cache installed by the innermost :func:`activate`, or ``None``."""
    return _ACTIVE.get()


def active_build_cache() -> BuildArtifactCache | None:
    """The cache installed by the innermost :func:`activate_builds`, or ``None``."""
    return _ACTIVE_BUILDS.get()


@contextmanager
def activate(cache: ExecutionCache):
    """Route ``execute_query`` calls through ``cache`` for the duration."""
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)


@contextmanager
def activate_builds(cache: BuildArtifactCache):
    """Route physical-pipeline dimension builds through ``cache`` for the duration."""
    token = _ACTIVE_BUILDS.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_BUILDS.reset(token)


def active_zone_maps() -> "ZoneMapCache | None":
    """The cache installed by the innermost :func:`activate_zones`, or ``None``."""
    return _ACTIVE_ZONES.get()


@contextmanager
def activate_zones(cache: "ZoneMapCache"):
    """Enable zone-map data skipping (and packed gathers) for the duration."""
    token = _ACTIVE_ZONES.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_ZONES.reset(token)


def active_shard_executor() -> object | None:
    """The binding installed by the innermost :func:`activate_shards`, or ``None``."""
    return _ACTIVE_SHARDS.get()


@contextmanager
def activate_shards(binding: object):
    """Route uncached query executions through the sharded plane for the duration.

    ``binding`` exposes ``shards`` and ``execute(db, query) -> (value,
    profile)`` (see :meth:`repro.engine.shard.ShardExecutor.bind`);
    :func:`repro.engine.plan._execute_query_uncached` consults
    :func:`active_shard_executor` before lowering, and
    :meth:`ExecutionCache._key` folds the shard count into memo keys for
    ``shards > 1``.
    """
    token = _ACTIVE_SHARDS.set(binding)
    try:
        yield binding
    finally:
        _ACTIVE_SHARDS.reset(token)
