"""Caches shared across query executions.

Two caches live here, both activated through context-local scopes:

* :class:`ExecutionCache` memoizes the whole functional execution pass.
  Every engine answers a query by first running the shared functional
  executor (:func:`repro.engine.plan.execute_query`) and then costing the
  collected profile under its own hardware model.  The *answer* and the
  *profile* depend only on ``(database, query)``, so when one query runs on
  several engines -- :meth:`repro.api.Session.compare` across the paper's
  six execution strategies -- the functional pass is pure repeated work.
  A :class:`~repro.api.Session` activates its cache around each engine call
  via :func:`activate`; ``execute_query`` consults :func:`active_cache` and
  replays the memoized ``(value, profile)`` on a hit.  Cached entries are
  deep-copied on the way out so an engine (or the experiment harness, which
  rescales profiles to the paper's SF 20 sizes) can never mutate another
  engine's view.

* :class:`BuildArtifactCache` memoizes one *stage* of that pass: the
  dimension hash-table builds of the physical pipeline
  (:class:`repro.engine.physical.BuildLookup`).  A build artifact depends
  only on ``(dimension, key_column, payload_column, predicate)``, so a batch
  of queries touching the same dimensions -- ``Session.run_many(...,
  share_builds=True)`` -- constructs each distinct lookup once and shares it
  across the batch (the ROADMAP's batched-executor item).  Artifacts are
  immutable (their arrays are marked read-only), so sharing is safe without
  copying.

The active-cache slots are :class:`contextvars.ContextVar`, not module
globals: nested :func:`activate` scopes restore the previous cache on exit
via tokens, and concurrent batch executions (threads or asyncio tasks) each
see their own binding instead of clobbering one another.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Hashable, NamedTuple


class CacheInfo(NamedTuple):
    """Counters of one :class:`ExecutionCache` (mirrors ``functools``)."""

    hits: int
    misses: int
    size: int
    maxsize: int


class ExecutionCache:
    """An LRU memo of ``(value, profile)`` keyed by query spec.

    The cache is bound to one database at construction: queries are hashable
    frozen dataclasses, databases are not, so ``fetch`` falls through to an
    uncached execution whenever it is handed a different database (or an
    unhashable hand-built query).
    """

    def __init__(self, db: object, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.db = db
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    def fetch(self, db, query, compute: Callable):
        """``compute(db, query)``, memoized per query for the bound database."""
        if db is not self.db:
            return compute(db, query)
        try:
            cached = self._entries.get(query)
        except TypeError:  # a hand-built spec holding e.g. a list constant
            return compute(db, query)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(query)
            return copy.deepcopy(cached)
        self.misses += 1
        value, profile = compute(db, query)
        self._entries[query] = (copy.deepcopy(value), copy.deepcopy(profile))
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return value, profile

    def contains(self, db, query) -> bool:
        """Whether ``fetch`` would replay ``query`` without executing it."""
        if db is not self.db:
            return False
        try:
            return query in self._entries
        except TypeError:  # unhashable hand-built spec
            return False

    def info(self) -> CacheInfo:
        """Hit/miss counters and occupancy."""
        return CacheInfo(self.hits, self.misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionCache({self.info()})"


class BuildArtifactCache:
    """An LRU memo of dimension build artifacts, shared across a query batch.

    Keys are the full identity of a hash-table build -- ``(dimension,
    key_column, payload_column, predicate)`` -- so two joins share an
    artifact exactly when a real batched executor could reuse the build.
    The cache is bound to one database at construction (artifacts embed that
    database's arrays); :meth:`fetch` for a different database falls through
    to an uncached build, exactly like :class:`ExecutionCache`.
    """

    def __init__(self, db: object, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.db = db
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    def fetch(self, db, key: Hashable, build: Callable[[], object]):
        """``build()``, memoized under ``key`` for the bound database.

        Hand-built specs can hold unhashable constants (e.g. a list inside a
        predicate); those fall through to an uncached build rather than
        erroring, so exotic queries still run -- they just never share.
        """
        if db is not self.db:
            return build()
        try:
            cached = self._entries.get(key)
        except TypeError:  # unhashable hand-built predicate
            return build()
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        artifact = build()
        self._entries[key] = artifact
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return artifact

    def info(self) -> CacheInfo:
        """Hit/miss counters and occupancy."""
        return CacheInfo(self.hits, self.misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        """Drop every artifact and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BuildArtifactCache({self.info()})"


#: The caches the *current* execution context consults, if any.  Installed by
#: :func:`activate` / :func:`activate_builds`.  ContextVars (not module
#: globals) so nested scopes restore correctly and threaded batch execution
#: cannot clobber another context's binding.
_ACTIVE: ContextVar[ExecutionCache | None] = ContextVar("repro_active_execution_cache", default=None)
_ACTIVE_BUILDS: ContextVar[BuildArtifactCache | None] = ContextVar(
    "repro_active_build_cache", default=None
)


def active_cache() -> ExecutionCache | None:
    """The cache installed by the innermost :func:`activate`, or ``None``."""
    return _ACTIVE.get()


def active_build_cache() -> BuildArtifactCache | None:
    """The cache installed by the innermost :func:`activate_builds`, or ``None``."""
    return _ACTIVE_BUILDS.get()


@contextmanager
def activate(cache: ExecutionCache):
    """Route ``execute_query`` calls through ``cache`` for the duration."""
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)


@contextmanager
def activate_builds(cache: BuildArtifactCache):
    """Route physical-pipeline dimension builds through ``cache`` for the duration."""
    token = _ACTIVE_BUILDS.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_BUILDS.reset(token)
