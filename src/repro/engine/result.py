"""Query result type shared by all engines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.counters import TrafficCounter
from repro.sim.timing import TimeBreakdown


@dataclass
class QueryResult:
    """The answer and simulated cost of one query on one engine."""

    query: str
    engine: str
    #: Scalar aggregate (flight 1) or ``{group key tuple: aggregate}`` dict.
    value: object
    time: TimeBreakdown
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    #: Data-dependent statistics gathered during execution.
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def simulated_ms(self) -> float:
        return self.time.total_ms

    @property
    def rows(self) -> int:
        """Number of result rows (1 for a scalar aggregate)."""
        if isinstance(self.value, dict):
            return len(self.value)
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryResult({self.query!r}, engine={self.engine!r}, rows={self.rows}, "
            f"simulated={self.simulated_ms:.2f}ms)"
        )
