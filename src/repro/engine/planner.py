"""Cost-based join ordering for star-join queries.

The paper notes (Section 5.3) that it chose the q2.1 plan -- join
``lineorder`` with ``supplier``, then ``part``, then ``date`` -- because it
"delivers the highest performance among the several promising plans".  For a
star join the plan space is simply the order in which the dimension joins are
applied; the best order applies the most selective joins first so that later
joins (and later fact-column accesses) touch fewer rows.

:class:`JoinOrderPlanner` enumerates the dimension-join permutations of a
declarative :class:`~repro.ssb.queries.SSBQuery`, costs each one with the
same bandwidth/cache model the engines use (via a lightweight per-order
profile), and returns the cheapest order.  The SSB engines accept the
reordered query transparently because the joins carry their own metadata.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

import numpy as np

from repro.engine.expr import evaluate_pred
from repro.engine.physical import LogicalPlan, PhysicalPlan, lower
from repro.engine.plan import HASH_ENTRY_BYTES
from repro.hardware.presets import NVIDIA_V100
from repro.hardware.specs import GPUSpec
from repro.ssb.queries import JoinSpec, SSBQuery
from repro.storage import Database


def joins_by_dimension(query: SSBQuery) -> dict[str, JoinSpec]:
    """Map each dimension name to its join spec.

    Join-order planning identifies joins by dimension name, so a query that
    joins the same dimension twice (a role-playing dimension) cannot be
    planned: collapsing the map silently would drop one join's filters and
    corrupt the answer, so this raises instead.
    """
    mapping = {join.dimension: join for join in query.joins}
    if len(mapping) != len(query.joins):
        raise ValueError(
            f"query {query.name!r} joins the same dimension more than once; "
            f"join-order planning requires one join per dimension"
        )
    return mapping


@dataclass(frozen=True)
class PlanChoice:
    """One candidate join order with its estimated cost."""

    join_order: tuple[str, ...]
    estimated_seconds: float
    selectivities: tuple[float, ...]


class JoinOrderPlanner:
    """Chooses the dimension-join order of a star-join query by cost."""

    def __init__(self, db: Database, spec: GPUSpec = NVIDIA_V100) -> None:
        self.db = db
        self.spec = spec

    # ------------------------------------------------------------------
    def join_selectivity(self, query: SSBQuery, dimension: str) -> float:
        """Fraction of fact rows that survive the join with ``dimension``.

        For SSB's uniform foreign keys this equals the fraction of dimension
        rows that pass the dimension's own filters.  Only raises when
        ``dimension`` itself is missing or joined more than once; other
        role-playing joins in the query do not make this answer ambiguous.
        """
        matches = [join for join in query.joins if join.dimension == dimension]
        if not matches:
            raise KeyError(f"query {query.name!r} has no join with dimension {dimension!r}")
        if len(matches) > 1:
            raise ValueError(
                f"query {query.name!r} joins dimension {dimension!r} more than once; "
                f"its selectivity is per-join, not per-dimension"
            )
        return self._join_selectivity(matches[0])

    def _join_selectivity(self, join: JoinSpec) -> float:
        table = self.db.table(join.dimension)
        if table.num_rows == 0:
            return 1.0
        mask = evaluate_pred(table, join.predicate)
        return float(np.count_nonzero(mask)) / table.num_rows

    def estimate_order_cost(
        self,
        query: SSBQuery,
        order: tuple[str, ...],
        fact_rows: int,
        *,
        selectivity_by_dimension: dict[str, float] | None = None,
    ) -> PlanChoice:
        """Estimate the probe-phase cost of one join order on the GPU model.

        The cost follows the Section 5.3 structure: each join's probes are
        charged one L2/global transaction for the fraction of its hash table
        that does not fit in cache, and each later fact column access shrinks
        with the cumulative selectivity.

        Selectivities are order-independent; :meth:`enumerate` computes them
        once and passes them via ``selectivity_by_dimension`` so the n!
        candidate orders do not each re-scan the dimension tables.
        """
        line = self.spec.global_access_granularity_bytes
        l2 = float(self.spec.l2_capacity_bytes)
        read_bw = self.spec.global_read_bandwidth

        joins = joins_by_dimension(query)
        if selectivity_by_dimension is None:
            selectivity_by_dimension = {
                dimension: self._join_selectivity(join) for dimension, join in joins.items()
            }
        selectivities = tuple(selectivity_by_dimension[dimension] for dimension in order)
        seconds = 0.0
        surviving = float(fact_rows)
        for dimension, selectivity in zip(order, selectivities):
            table = self.db.table(joins[dimension].dimension)
            hash_table_bytes = HASH_ENTRY_BYTES * table.num_rows
            # Key column access for the surviving rows.
            seconds += min(4.0 * fact_rows, surviving * line) / read_bw
            # Probe misses to global memory.
            hit = min(l2 / hash_table_bytes, 1.0) if hash_table_bytes > 0 else 1.0
            seconds += (1.0 - hit) * surviving * line / read_bw
            surviving *= selectivity
        # Measure columns for the rows that survive every join.
        seconds += len(query.aggregate.columns) * min(4.0 * fact_rows, surviving * line) / read_bw
        return PlanChoice(join_order=order, estimated_seconds=seconds, selectivities=selectivities)

    # ------------------------------------------------------------------
    def enumerate(self, query: SSBQuery, fact_rows: int | None = None) -> list[PlanChoice]:
        """All join orders of ``query`` with their estimated costs, best first."""
        if fact_rows is None:
            fact_rows = self.db.table(query.fact).num_rows
        joins = joins_by_dimension(query)
        selectivity_by_dimension = {
            dimension: self._join_selectivity(join) for dimension, join in joins.items()
        }
        choices = [
            self.estimate_order_cost(
                query, order, fact_rows, selectivity_by_dimension=selectivity_by_dimension
            )
            for order in itertools.permutations(tuple(joins))
        ]
        return sorted(choices, key=lambda choice: choice.estimated_seconds)

    def best_order(self, query: SSBQuery, fact_rows: int | None = None) -> PlanChoice:
        """The cheapest join order."""
        return self.enumerate(query, fact_rows)[0]

    def reorder(self, query: SSBQuery, fact_rows: int | None = None) -> SSBQuery:
        """Return ``query`` with its joins rearranged into the cheapest order."""
        best = self.best_order(query, fact_rows)
        joins = joins_by_dimension(query)
        reordered = tuple(joins[d] for d in best.join_order)
        return replace(query, joins=reordered)

    # ------------------------------------------------------------------
    def logical_plan(self, query: SSBQuery, *, optimize: bool = False) -> LogicalPlan:
        """Normalize ``query`` into a logical plan, optionally cost-ordered.

        With ``optimize=True`` the dimension joins are first rearranged into
        the cheapest order (same constraint as :meth:`reorder`: each
        dimension joined at most once); the plan then carries the chosen
        order, so lowering and batched execution need no further planning.
        """
        if optimize:
            query = self.reorder(query)
        return LogicalPlan.from_query(query)

    def physical_plan(self, query: SSBQuery, *, optimize: bool = False) -> PhysicalPlan:
        """Lower ``query`` straight to the staged physical operator pipeline."""
        return lower(self.logical_plan(query, optimize=optimize))
