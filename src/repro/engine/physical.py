"""The staged physical pipeline: LogicalPlan -> PhysicalPlan -> execution.

The paper's central result is that engine performance is determined by *how
work maps onto stages* -- build vs. probe passes, fused tile kernels vs.
operator-at-a-time materialization (Sections 3.3 and 5.2).  This module
makes those stages explicit: a declarative :class:`~repro.ssb.queries.SSBQuery`
is first normalized into a :class:`LogicalPlan` (which can carry snowflake
dimension->dimension join chains), then lowered to a :class:`PhysicalPlan`
of discrete operators:

* :class:`ScanFilter` -- one per top-level conjunct of the fact predicate,
* :class:`BuildLookup` -- one hash-table build per dimension join,
* :class:`ProbeJoin` -- the corresponding probe over the surviving rows,
* :class:`Aggregate` -- the final (grouped) reduction.

Each operator emits its own slice of the shared
:class:`~repro.engine.plan.QueryProfile` while executing exactly (NumPy), so
all six engines cost identical profiles to the seed monolithic executor
(:func:`~repro.engine.plan.execute_query_monolithic`) -- the differential
tests in ``tests/test_physical.py`` hold the two paths byte-identical.

The data plane is **late-materialization selection vectors**: the first
operator to touch the fact table compacts the survivors once
(``np.flatnonzero``), and every downstream operator -- later filter
conjuncts, probes, payload gathers, the measure expression, the group-by --
works at selection-vector width.  Payload codes ride along in the narrow
dtype of their dimension's lookup, and the grouped aggregate factorizes
packed-radix int64 keys (:func:`~repro.engine.plan.factorize_group_keys`)
instead of sorting row tuples.  Only the *mechanics* changed: answers and
profiles stay byte-identical to the full-width mask reference, so the cost
models are untouched (``benchmarks/bench_pipeline_hotpath.py`` measures the
wall-clock gap between the two data planes).

On top of the selection vectors sits the **pruned, compression-aware scan
plane** (on whenever a :class:`~repro.engine.cache.ZoneMapCache` is active,
which a :class:`~repro.api.Session` does by default): :func:`lower` folds
each fact-filter conjunct against per-zone min/max + tiny-domain bitset
statistics (:mod:`repro.storage.zonemap`) so :class:`ScanFilter` skips
provably-empty zones and takes provably-full ones whole; :class:`ProbeJoin`
skips fact zones whose key range cannot intersect the build's present keys
and drops its range-validity passes when statistics prove every key in
bounds; :class:`BuildLookup` bases its perfect-hash arrays at the key
column's minimum (a ~65 K-entry ``date`` lookup instead of ~20 M); and
sparse gathers decode ``<= 16``-bit columns from packed words.  All of it
is *sound* -- zones are only skipped or taken when statistics prove the
outcome -- so answers and profiles remain byte-identical to the seed
executor (``tests/test_zonemap.py`` holds all three planes together, and
``benchmarks/bench_zonemap_scan.py`` measures the gap).

The decomposition buys two things the monolithic pass could not offer:

* **Shared build artifacts.**  :class:`BuildLookup` products are immutable
  :class:`BuildArtifact` values keyed by ``(dimension, key_column,
  payload_column, predicate)``; with a
  :class:`~repro.engine.cache.BuildArtifactCache` active, a batch of queries
  touching the same dimensions constructs each distinct lookup exactly once
  (``Session.run_many(..., share_builds=True)``).
* **A seam for snowflake lowering.**  :class:`LogicalJoin` records the
  probe-side ``source`` table of every join, so dimension->dimension chains
  are *represented* today; executing them is a change to :func:`lower`
  alone, not another executor rewrite (the ROADMAP's multi-fact item).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

import numpy as np

from repro.engine.cache import BuildArtifactCache, ZoneMapCache, active_build_cache, active_zone_maps
from repro.engine.expr import (
    evaluate_pred,
    evaluate_pred_at,
    predicate_leaf_count,
    predicate_or_branches,
)
from repro.engine.plan import (
    HASH_ENTRY_BYTES,
    ColumnAccess,
    FilterStage,
    JoinStage,
    QueryProfile,
    build_dimension_lookup,
    combine_measures,
    factorize_group_keys,
    grouped_aggregate_values,
    scalar_aggregate_values,
    validate_aggregate,
)
from repro.ssb.queries import AggregateSpec, Pred, SSBQuery, conjuncts
from repro.storage import Database, Table
from repro.storage.zonemap import (
    ZONE_EVALUATE,
    ZONE_SKIP,
    ZONE_TAKE,
    TableZoneMaps,
    zone_rows,
)

# ----------------------------------------------------------------------
# Logical plan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LogicalJoin:
    """One equi-join edge of the star (or snowflake) join graph.

    ``source`` is the table the probe-side key column lives on: the fact
    table for every single-hop star join, or another dimension for a
    snowflake chain.  The logical plan carries both; only single-hop edges
    lower to physical operators today.
    """

    source: str
    source_key: str
    dimension: str
    dimension_key: str
    predicate: Pred
    payload: str | None

    @property
    def build_key(self) -> Hashable:
        """Identity of this join's hash-table build.

        Two joins share a build artifact exactly when dimension, key column,
        payload column, and dimension predicate all coincide -- the key of
        :class:`~repro.engine.cache.BuildArtifactCache`.
        """
        return (self.dimension, self.dimension_key, self.payload, self.predicate)


@dataclass(frozen=True)
class LogicalPlan:
    """A normalized, engine-independent description of one query."""

    query: SSBQuery
    fact: str
    predicate: Pred
    joins: tuple[LogicalJoin, ...]
    group_by: tuple[str, ...]
    aggregate: AggregateSpec

    @classmethod
    def from_query(cls, query: SSBQuery) -> "LogicalPlan":
        """Normalize a declarative spec (legacy filter tuples included)."""
        joins = tuple(
            LogicalJoin(
                source=join.source if join.source is not None else query.fact,
                source_key=join.fact_key,
                dimension=join.dimension,
                dimension_key=join.dimension_key,
                predicate=join.predicate,
                payload=join.payload,
            )
            for join in query.joins
        )
        return cls(
            query=query,
            fact=query.fact,
            predicate=query.predicate,
            joins=joins,
            group_by=query.group_by,
            aggregate=query.aggregate,
        )

    def join_depth(self, join: LogicalJoin) -> int:
        """Hops between ``join``'s source and the fact table (0 = star edge).

        Snowflake chains resolve through the other joins' dimensions; a
        source that is neither the fact table nor a joined dimension (or a
        cyclic chain) is a malformed plan and raises.
        """
        by_dimension = {j.dimension: j for j in self.joins}
        depth = 0
        source = join.source
        while source != self.fact:
            parent = by_dimension.get(source)
            if parent is None or depth > len(self.joins):
                raise ValueError(
                    f"join with {join.dimension!r} hangs off {join.source!r}, which is "
                    f"neither the fact table {self.fact!r} nor a joined dimension"
                )
            depth += 1
            source = parent.source
        return depth


# ----------------------------------------------------------------------
# Build artifacts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BuildArtifact:
    """The immutable product of one dimension hash-table build.

    Carries the perfect-hash lookup arrays *and* every dimension-side
    quantity the profile's :class:`~repro.engine.plan.JoinStage` needs, so a
    probe against a cached artifact emits exactly the profile slice a fresh
    build would.  Arrays are marked read-only: artifacts are shared across
    queries in a batch, never copied.
    """

    dimension: str
    dimension_rows: int
    build_rows: int
    hash_table_bytes: float
    build_scan_bytes: float
    lookup: np.ndarray
    present: np.ndarray
    #: Key of slot 0: ``lookup[k - key_base]`` answers dimension key ``k``.
    #: The zone-map plane sets it to the key column's minimum so sparse key
    #: domains (dates) get compact arrays; 0 reproduces the seed layout.
    key_base: int = 0
    #: Range of the keys actually present (``[0, -1]`` for an empty build),
    #: so probes can zone-skip fact rows whose keys cannot possibly match.
    key_low: int = 0
    key_high: int = -1


# ----------------------------------------------------------------------
# Execution state threaded through the operators
# ----------------------------------------------------------------------

#: A selection-vector gather reads packed words only when it touches fewer
#: than ``1/this`` of the fact rows (see :meth:`PipelineState.packed_for`).
PACKED_GATHER_DENOMINATOR = 32


@dataclass
class PipelineState:
    """Mutable state one query execution threads through its operators.

    The data plane is a **selection vector**, not a boolean mask: ``sel``
    holds the row ids (ascending) of the fact rows still alive, or ``None``
    before any operator has touched the data ("all rows alive", so the first
    filter or probe runs full-width and compacts once).  Every payload code
    array in ``group_columns`` is carried at selection-vector width and
    compacted in lockstep whenever an operator shrinks ``sel`` -- late
    materialization: after the scan cuts the batch to its few surviving rows,
    no downstream operator touches full-fact-width arrays again.
    """

    db: Database
    fact: Table
    query_name: str
    profile: QueryProfile
    build_cache: BuildArtifactCache | None
    rows_alive: float
    #: Zone statistics of the fact table (``None`` = data skipping off);
    #: ``zone_cache`` additionally collects the skip/take/evaluate counters.
    zones: TableZoneMaps | None = None
    zone_cache: ZoneMapCache | None = None
    #: Selection vector of surviving fact row ids (``None`` = all alive).
    sel: np.ndarray | None = None
    #: Filter columns already charged to the profile (each exactly once).
    charged: set = field(default_factory=set)
    #: Build artifacts by logical-join identity (``id()``), for the probes
    #: to consume.  Keyed by identity, not by build key, because hand-built
    #: predicates can hold unhashable constants (e.g. a list in an ``in``
    #: filter) -- such queries must still run, just without sharing.
    artifacts: dict = field(default_factory=dict)
    #: Payload code arrays by column name, at selection-vector width.
    group_columns: dict = field(default_factory=dict)
    value: object = None

    def compact(self, keep: np.ndarray) -> None:
        """Shrink the selection vector (and every carried payload) by ``keep``.

        ``keep`` is a boolean array at current selection-vector width.  The
        payload arrays stay aligned with ``sel`` by construction, so a probe
        that drops rows compacts them all in one pass over the (small)
        survivor set instead of re-gathering from full-width arrays.
        """
        self.sel = self.sel[keep]
        for name, codes in self.group_columns.items():
            self.group_columns[name] = codes[keep]
        self.rows_alive = float(self.sel.size)

    def packed_for(self, columns, width: int) -> dict | None:
        """Packed twins for ``columns``, for a gather of ``width`` rows.

        ``None`` when data skipping is off or the gather is too wide:
        decoding packed words costs shift/mask work per value, which a real
        machine buys back in bandwidth but a NumPy reproduction pays in
        wall clock, so the compressed gather path is reserved for sparse
        selections (< 1/:data:`PACKED_GATHER_DENOMINATOR` of the fact
        rows), where the byte saving is also at its largest.  The operator
        models in ``repro.ops`` charge the full packed-scan economics.
        """
        if self.zones is None or width * PACKED_GATHER_DENOMINATOR > self.fact.num_rows:
            return None
        return self.zones.packed_for(columns) or None


# ----------------------------------------------------------------------
# Physical operators
# ----------------------------------------------------------------------


class ScanFilter:
    """Apply one top-level conjunct of the fact predicate to the scan.

    Models the selection stage of the pipelined probe pass: the paper's
    Section 4.2 selection variants (branching / predicated / SIMD selective
    stores) and the fused predicate lanes of the Crystal kernel (Section
    5.2).  Emits one filter :class:`~repro.engine.plan.ColumnAccess` per
    newly-referenced column (a single scan feeds every comparison, so each
    column's bytes are charged exactly once per query) and one
    :class:`~repro.engine.plan.FilterStage` recording the term's row shrink
    and branchiness.

    The first conjunct scans full-width and compacts the survivors into the
    selection vector once (``np.flatnonzero``); every later conjunct
    evaluates only at the surviving row ids
    (:func:`~repro.engine.expr.evaluate_pred_at`), so a selective leading
    term makes the rest of the predicate nearly free.

    With a zone classification attached (the pruning pass in :func:`lower`
    folds the term against the fact table's zone statistics), the scan is
    zone-granular: *skip* zones are never materialized, *take-all* zones
    join the selection vector without evaluating the predicate, and only
    *evaluate* zones run :func:`~repro.engine.expr.evaluate_pred_at` --
    over packed column twins where the domain fits.  Classification is
    sound, so the resulting selection vector (and therefore the profile)
    is byte-identical to the unpruned scan.
    """

    def __init__(self, term: Pred, zone_cls: np.ndarray | None = None) -> None:
        self.term = term
        #: Tri-state per-zone fold of ``term`` (None = statistics silent).
        self.zone_cls = zone_cls
        #: The exact :class:`TableZoneMaps` instance the classification was
        #: folded against (set by :func:`lower`).  Under streaming ingest a
        #: zone-count check is not enough -- an append can change the tail
        #: zone's *contents* without changing the zone count -- so at run
        #: time the classification only applies when the pipeline's maps
        #: are this very instance (the version-aware
        #: :class:`~repro.engine.cache.ZoneMapCache` memoizes one instance
        #: per version, making identity equivalent to version equality).
        self.zone_maps: TableZoneMaps | None = None

    def run(self, state: PipelineState) -> None:
        profile = state.profile
        for column in self.term.columns():
            if column in state.charged:
                continue
            state.charged.add(column)
            column_bytes = float(state.fact.column(column).nbytes)
            profile.column_accesses.append(
                ColumnAccess(
                    column=column, column_bytes=column_bytes, rows_needed=state.rows_alive, role="filter"
                )
            )
        rows_in = state.rows_alive
        cls = self.zone_cls
        if cls is not None and (
            state.zones is None
            or (self.zone_maps is not None and state.zones is not self.zone_maps)
            or cls.shape[0] != state.zones.num_zones
        ):
            cls = None  # classified against other data or geometry; ignore
        if state.sel is None:
            if cls is None:
                state.sel = np.flatnonzero(evaluate_pred(state.fact, self.term))
            else:
                state.sel = self._seed_selection(state, cls)
            state.rows_alive = float(state.sel.size)
        else:
            if cls is None:
                keep = evaluate_pred_at(
                    state.fact, self.term, state.sel, packed=state.packed_for(self.term.columns(), state.sel.size)
                )
            else:
                keep = self._refine_selection(state, cls)
            state.compact(keep)
        profile.filter_stages.append(
            FilterStage(
                columns=self.term.columns(),
                rows_in=rows_in,
                rows_out=state.rows_alive,
                leaf_count=predicate_leaf_count(self.term),
                or_branches=predicate_or_branches(self.term),
            )
        )

    def _seed_selection(self, state: PipelineState, cls: np.ndarray) -> np.ndarray:
        """First-conjunct scan as a zone-granular selection-vector seed."""
        zones = state.zones
        n = state.fact.num_rows
        take_rows = zone_rows(np.flatnonzero(cls == ZONE_TAKE), zones.zone_size, n)
        eval_ids = np.flatnonzero(cls == ZONE_EVALUATE)
        if eval_ids.size:
            candidates = zone_rows(eval_ids, zones.zone_size, n)
            matched = candidates[
                evaluate_pred_at(
                    state.fact, self.term, candidates, packed=state.packed_for(self.term.columns(), candidates.size)
                )
            ]
        else:
            candidates = matched = np.empty(0, dtype=np.int64)
        if state.zone_cache is not None:
            state.zone_cache.record(
                skipped=int(np.count_nonzero(cls == ZONE_SKIP)),
                taken=int(cls.size - eval_ids.size - np.count_nonzero(cls == ZONE_SKIP)),
                evaluated=int(eval_ids.size),
                rows_pruned=int(n - take_rows.size - candidates.size),
            )
        if not take_rows.size:
            return matched
        sel = np.concatenate([matched, take_rows])
        sel.sort()
        return sel

    def _refine_selection(self, state: PipelineState, cls: np.ndarray) -> np.ndarray:
        """Later-conjunct refinement: evaluate only survivors in *evaluate* zones."""
        sel = state.sel
        categories = cls[state.zones.zone_of(sel)]
        keep = categories > 0
        undecided = categories == 0
        if undecided.any():
            subset = sel[undecided]
            keep[undecided] = evaluate_pred_at(
                state.fact, self.term, subset, packed=state.packed_for(self.term.columns(), subset.size)
            )
        if state.zone_cache is not None:
            state.zone_cache.record(
                skipped=int(np.count_nonzero(cls == ZONE_SKIP)),
                taken=int(np.count_nonzero(cls == ZONE_TAKE)),
                evaluated=int(np.count_nonzero(cls == ZONE_EVALUATE)),
                rows_pruned=int(np.count_nonzero(categories < 0)),
            )
        return keep

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScanFilter({self.term})"


class BuildLookup:
    """Build (or fetch) one dimension's perfect-hash lookup.

    Models the build pass of the invisible-join style star join: scan the
    (filtered) dimension once and write a dense key -> payload array, the
    paper's Section 5.3 hash-table estimate of ``8 bytes x |dimension|``
    (one 4-byte key, one 4-byte payload per entry).  The product is an
    immutable :class:`BuildArtifact`; with a
    :class:`~repro.engine.cache.BuildArtifactCache` active, distinct builds
    are constructed once per batch and shared.
    """

    def __init__(self, join: LogicalJoin) -> None:
        self.join = join

    @property
    def key(self) -> Hashable:
        return self.join.build_key

    def build(self, db: Database) -> BuildArtifact:
        """Scan the dimension and construct the lookup arrays.

        With a :class:`~repro.engine.cache.ZoneMapCache` active, the lookup
        is based at the key column's statistics minimum: ``d_datekey``
        starts at 19920101, so the compact layout allocates ~65 K slots
        where the seed layout zero-filled ~20 M.  Probes read
        ``artifact.key_base``, so compact and seed-layout artifacts mix
        freely (the shared build cache may hold either).
        """
        dimension = db.table(self.join.dimension)
        if hasattr(dimension, "snapshot"):
            dimension = dimension.snapshot()
        return self._build_from(db, dimension)

    def fetch_artifact(self, db: Database, cache: BuildArtifactCache | None) -> BuildArtifact:
        """The artifact for the dimension's *current* version, cached.

        The ingest-aware fetch path: one snapshot of the dimension pins the
        data, and the cache key is ``(build_key, version)`` of that very
        snapshot -- so the key and the built content can never disagree, an
        append to the dimension simply misses into a fresh versioned entry
        (stale versions age out of the LRU), and appends to *other* tables
        leave this dimension's artifacts hitting.
        """
        dimension = db.table(self.join.dimension)
        if hasattr(dimension, "snapshot"):
            dimension = dimension.snapshot()
        if cache is None:
            return self._build_from(db, dimension)
        key = (self.key, getattr(dimension, "version", 0))
        return cache.fetch(db, key, lambda: self._build_from(db, dimension))

    def _build_from(self, db: Database, dimension: Table) -> BuildArtifact:
        join = self.join
        dim_mask = evaluate_pred(dimension, join.predicate)
        build_rows = int(np.count_nonzero(dim_mask))
        base = 0
        zone_cache = active_zone_maps()
        if zone_cache is not None:
            maps = zone_cache.maps(db, dimension)
            stats = maps.stats(join.dimension_key) if maps is not None else None
            if stats is not None and stats.low > 0:
                base = stats.low
        lookup, present = build_dimension_lookup(
            dimension, join.dimension_key, dim_mask, join.payload, base=base
        )
        lookup.setflags(write=False)
        present.setflags(write=False)
        if build_rows:
            selected_keys = dimension[join.dimension_key][dim_mask]
            key_low, key_high = int(selected_keys.min()), int(selected_keys.max())
        else:
            key_low, key_high = 0, -1
        build_scan_bytes = float(
            dimension.column(join.dimension_key).nbytes
            + sum(dimension.column(c).nbytes for c in join.predicate.columns())
            + (dimension.column(join.payload).nbytes if join.payload else 0)
        )
        return BuildArtifact(
            dimension=join.dimension,
            dimension_rows=dimension.num_rows,
            build_rows=build_rows,
            hash_table_bytes=float(HASH_ENTRY_BYTES * dimension.num_rows),
            build_scan_bytes=build_scan_bytes,
            lookup=lookup,
            present=present,
            key_base=base,
            key_low=key_low,
            key_high=key_high,
        )

    def run(self, state: PipelineState) -> None:
        # fetch_artifact() falls through to an uncached build when the key
        # is unhashable, so exotic hand-built predicates still execute.
        state.artifacts[id(self.join)] = self.fetch_artifact(state.db, state.build_cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BuildLookup({self.join.dimension!r} on {self.join.dimension_key!r})"


class ProbeJoin:
    """Probe one dimension lookup with the surviving fact rows.

    Models the probe side of the chained star join: the dependent random
    accesses the CPU cannot hide behind its streaming scan and the
    L2-vs-global probe traffic of the fused GPU kernel (Section 5.3's
    cost-model case study).  Emits the join-key
    :class:`~repro.engine.plan.ColumnAccess` and the full
    :class:`~repro.engine.plan.JoinStage` (build-side numbers come from the
    consumed :class:`BuildArtifact`, so cached and fresh builds profile
    identically).

    Zone statistics refine the probe two ways, neither of which can change
    the surviving set: fact zones whose key range cannot intersect the
    artifact's present keys (``[key_low, key_high]``) are skipped before
    any key is gathered -- those rows would all miss -- and when the key
    column's statistics prove every key lands inside the lookup, the
    range-validity passes are dropped and the probe is one straight gather.
    """

    def __init__(self, join: LogicalJoin) -> None:
        self.join = join

    @staticmethod
    def _hits(artifact: BuildArtifact, keys: np.ndarray, in_range: bool) -> tuple[np.ndarray, np.ndarray]:
        """Membership of each key in the build, and the lookup slot of each key."""
        slots = keys - artifact.key_base if artifact.key_base else keys
        if in_range:
            return artifact.present[slots], slots
        valid = (slots >= 0) & (slots < artifact.lookup.shape[0])
        hit = valid.copy()
        hit[valid] = artifact.present[slots[valid]]
        return hit, slots

    def run(self, state: PipelineState) -> None:
        join = self.join
        artifact: BuildArtifact = state.artifacts[id(join)]
        fact = state.fact

        fact_keys = fact[join.source_key]
        column_bytes = float(fact.column(join.source_key).nbytes)
        state.profile.column_accesses.append(
            ColumnAccess(
                column=join.source_key, column_bytes=column_bytes, rows_needed=state.rows_alive, role="join_key"
            )
        )

        stats = state.zones.stats(join.source_key) if state.zones is not None else None
        in_range = (
            stats is not None
            and stats.low >= artifact.key_base
            and stats.high < artifact.key_base + artifact.lookup.shape[0]
        )
        # Fact zones whose key range misses every present key: every row in
        # them would probe and miss, so they can vanish without a gather.
        zone_skip = None
        if stats is not None:
            skip_mask = (stats.maxs < artifact.key_low) | (stats.mins > artifact.key_high)
            if skip_mask.any():
                zone_skip = skip_mask

        probe_rows = state.rows_alive
        if state.sel is None:
            # The first probe of an unfiltered query is the one full-width
            # pass, and it compacts immediately.
            if zone_skip is None:
                keys = fact_keys
                hit, slots = self._hits(artifact, keys, in_range)
                state.sel = np.flatnonzero(hit)
                state.rows_alive = float(state.sel.size)
                surviving_slots = slots[state.sel]
            else:
                candidates = zone_rows(np.flatnonzero(~zone_skip), state.zones.zone_size, fact.num_rows)
                keys = fact_keys[candidates]
                hit, slots = self._hits(artifact, keys, in_range)
                state.sel = candidates[hit]
                state.rows_alive = float(state.sel.size)
                surviving_slots = slots[hit]
                if state.zone_cache is not None:
                    state.zone_cache.record(
                        skipped=int(np.count_nonzero(zone_skip)),
                        evaluated=int(zone_skip.size - np.count_nonzero(zone_skip)),
                        rows_pruned=int(fact.num_rows - candidates.size),
                    )
        else:
            sel = state.sel
            entry_skip = None
            if zone_skip is not None:
                entry_skip = zone_skip[state.zones.zone_of(sel)]
                if not entry_skip.any():
                    entry_skip = None
            if entry_skip is None:
                keys = self._gather_keys(state, fact_keys, sel)
                hit, slots = self._hits(artifact, keys, in_range)
                surviving_slots = slots[hit]
                state.compact(hit)
            else:
                undecided = np.flatnonzero(~entry_skip)
                subset = sel[undecided]
                keys = self._gather_keys(state, fact_keys, subset)
                hit_subset, slots = self._hits(artifact, keys, in_range)
                hit = np.zeros(sel.size, dtype=bool)
                hit[undecided] = hit_subset
                surviving_slots = slots[hit_subset]
                state.compact(hit)
                if state.zone_cache is not None:
                    state.zone_cache.record(
                        skipped=int(np.count_nonzero(zone_skip)),
                        evaluated=int(zone_skip.size - np.count_nonzero(zone_skip)),
                        rows_pruned=int(sel.size - subset.size),
                    )
        selectivity = state.rows_alive / probe_rows if probe_rows else 0.0

        state.profile.joins.append(
            JoinStage(
                dimension=join.dimension,
                fact_key=join.source_key,
                dimension_rows=artifact.dimension_rows,
                build_rows=artifact.build_rows,
                hash_table_bytes=artifact.hash_table_bytes,
                probe_rows=probe_rows,
                selectivity=selectivity,
                has_payload=join.payload is not None,
                build_scan_bytes=artifact.build_scan_bytes,
            )
        )

        if join.payload is not None:
            # Payload codes materialize at selection-vector width, in the
            # lookup's narrow dtype (lower() guarantees the name is unique).
            state.group_columns[join.payload] = artifact.lookup[surviving_slots]

    def _gather_keys(self, state: PipelineState, fact_keys: np.ndarray, sel: np.ndarray) -> np.ndarray:
        """Surviving rows' keys, read from the packed twin when one exists.

        Selection-vector key gathers are the probe's compressed scan path:
        a ``<= 16``-bit key column decodes from packed 64-bit words
        (word-aligned gather + shift/mask) instead of touching 4-byte
        values.  Full-width first probes stream the plain column -- a
        sequential scan is already optimal.
        """
        packed = state.packed_for((self.join.source_key,), sel.size)
        if packed is not None:
            return packed[self.join.source_key].unpack_at(sel)
        return fact_keys[sel]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbeJoin({self.join.dimension!r} via {self.join.source_key!r})"


class Aggregate:
    """Reduce the surviving rows to the (grouped) aggregate.

    Models the final stage of the single fused pass: the hash group-by
    aggregate the CPU keeps cache resident and the GPU updates with
    per-block atomics spread over the group slots (Section 5.2).  Emits the
    measure :class:`~repro.engine.plan.ColumnAccess` entries,
    ``result_input_rows``, ``num_groups``, and ``output_row_bytes``.
    """

    def __init__(self, group_by: tuple[str, ...], aggregate: AggregateSpec) -> None:
        self.group_by = group_by
        self.aggregate = aggregate

    def run(self, state: PipelineState) -> None:
        profile = state.profile
        profile.result_input_rows = state.rows_alive

        agg = self.aggregate
        validate_aggregate(agg)

        sel = state.sel
        count = int(sel.size) if sel is not None else state.fact.num_rows
        measure_columns = []
        for column in agg.columns:
            column_bytes = float(state.fact.column(column).nbytes)
            profile.column_accesses.append(
                ColumnAccess(
                    column=column, column_bytes=column_bytes, rows_needed=state.rows_alive, role="measure"
                )
            )
            # Gather survivors first, then widen: the float64 measure
            # expression is evaluated at selection-vector width, never at
            # fact width.
            values = state.fact[column] if sel is None else state.fact[column][sel]
            measure_columns.append(values.astype(np.float64))
        measure = combine_measures(agg, measure_columns)

        if not self.group_by:
            state.value = scalar_aggregate_values(agg.op, measure, count)
            profile.num_groups = 1
            profile.output_row_bytes = 8.0
            return

        missing = [name for name in self.group_by if name not in state.group_columns]
        if missing:
            raise ValueError(
                f"group-by column(s) {missing} are not payloads of any join in query "
                f"{state.query_name!r}"
            )
        if count == 0:
            value: dict = {}
        else:
            # Packed-radix group keys: the carried payload codes (already at
            # selection-vector width) mix into one int64 key per row and
            # factorize with bincount-style passes -- no row-wise
            # ``np.unique(..., axis=0)`` structured sort.
            key_arrays = [state.group_columns[name] for name in self.group_by]
            unique_keys, inverse = factorize_group_keys(key_arrays)
            totals = grouped_aggregate_values(agg.op, measure, inverse, unique_keys.shape[0])
            value = {tuple(int(x) for x in key): float(total) for key, total in zip(unique_keys, totals)}
        state.value = value
        profile.num_groups = max(len(value), 1)
        profile.output_row_bytes = float(8 + 4 * len(self.group_by))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Aggregate({self.aggregate.op!r}, group_by={self.group_by})"


# ----------------------------------------------------------------------
# Physical plan and lowering
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PhysicalPlan:
    """The staged operator pipeline of one query.

    Stages are explicit so a batched executor can pull every
    :class:`BuildLookup` out, group the batch's builds, and run each
    distinct one once before any probe runs.
    """

    logical: LogicalPlan
    filters: tuple[ScanFilter, ...]
    builds: tuple[BuildLookup, ...]
    probes: tuple[ProbeJoin, ...]
    aggregate: Aggregate

    def operators(self) -> Iterable[object]:
        """Every operator in execution order (builds before their probes)."""
        yield from self.filters
        for build, probe in zip(self.builds, self.probes):
            yield build
            yield probe
        yield self.aggregate


def lower(logical: LogicalPlan, db: Database | None = None) -> PhysicalPlan:
    """Lower a logical plan to physical operators.

    Only single-hop (fact -> dimension) joins lower today.  Snowflake
    chains are already *representable* -- :class:`LogicalJoin` carries the
    probe-side source table -- so extending this function (build the chain
    bottom-up, probe through the intermediate lookup) is all the multi-fact
    ROADMAP item needs; callers and operators stay unchanged.

    With ``db`` and an active :class:`~repro.engine.cache.ZoneMapCache`,
    lowering runs the **zone pruning pass**: every top-level conjunct of
    the fact predicate is folded against the fact table's zone statistics
    (:meth:`~repro.storage.zonemap.TableZoneMaps.classify`) and the
    resulting skip / take-all / evaluate classification rides on its
    :class:`ScanFilter`, which seeds the selection vector zone-granularly.
    Without ``db`` (or with no cache active) the plan is identical to the
    PR 4 selection-vector plane.
    """
    payloads: set[str] = set()
    for join in logical.joins:
        logical.join_depth(join)  # validate the chain is well-formed
        if join.source != logical.fact:
            raise NotImplementedError(
                f"join with {join.dimension!r} probes from {join.source!r}: snowflake "
                f"dimension->dimension chains are carried by the logical plan but not "
                f"lowered to physical operators yet (ROADMAP: multi-fact / snowflake "
                f"schemas)"
            )
        # Validate payload-name uniqueness at plan time: the old in-flight
        # check fired only after earlier probes had already mutated the
        # pipeline state, so a bad plan did real work before failing.
        if join.payload is not None:
            if join.payload in payloads:
                raise ValueError(
                    f"payload column {join.payload!r} is produced by more than one join in "
                    f"query {logical.query.name!r}; payload names must be unique"
                )
            payloads.add(join.payload)
    filters = tuple(ScanFilter(term) for term in conjuncts(logical.predicate))
    zone_cache = active_zone_maps()
    if db is not None and zone_cache is not None and logical.fact in db:
        maps = zone_cache.maps(db, db.table(logical.fact))
        if maps is not None:
            for scan in filters:
                scan.zone_cls = maps.classify(scan.term)
                scan.zone_maps = maps
    return PhysicalPlan(
        logical=logical,
        filters=filters,
        builds=tuple(BuildLookup(join) for join in logical.joins),
        probes=tuple(ProbeJoin(join) for join in logical.joins),
        aggregate=Aggregate(logical.group_by, logical.aggregate),
    )


def lower_query(query: SSBQuery, db: Database | None = None) -> PhysicalPlan:
    """Normalize and lower a declarative query spec in one step."""
    return lower(LogicalPlan.from_query(query), db)


def staged_builds(plans: Iterable[PhysicalPlan]) -> list[BuildLookup]:
    """Topologically group a batch's build operators, one per distinct build.

    Builds are deduplicated by build key and ordered by join depth (sources
    before dependents), so a batched executor can construct every distinct
    artifact up front; within a depth, first appearance in the batch wins.
    Today every star edge has depth 0 and the grouping is a plain ordered
    dedup -- snowflake chains will slot in without callers changing.

    Builds whose key is unhashable (hand-built predicates holding e.g. a
    list constant) cannot be cached or shared; they are skipped here and
    simply run uncached inside their own query.
    """
    ordered: dict = {}
    for plan in plans:
        for build in plan.builds:
            depth = plan.logical.join_depth(build.join)
            try:
                if build.key not in ordered:
                    ordered[build.key] = (depth, build)
            except TypeError:
                continue
    staged = sorted(ordered.values(), key=lambda pair: pair[0])
    return [build for _, build in staged]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def execute_physical(
    db: Database,
    plan: PhysicalPlan,
    build_cache: BuildArtifactCache | None = None,
) -> tuple[object, QueryProfile]:
    """Run a physical plan stage by stage, collecting the query profile.

    Returns the same ``(value, profile)`` pair as the monolithic reference
    executor -- byte-identically.  ``build_cache`` defaults to the
    context-active :func:`~repro.engine.cache.active_build_cache` (installed
    by ``Session.run_many(share_builds=True)``); pass one explicitly to
    share builds without a context scope.
    """
    if build_cache is None:
        build_cache = active_build_cache()
    # One snapshot pins the fact table for the whole execution: a concurrent
    # append publishes a new (version, columns) state, but every operator
    # here keeps reading this frozen, mutually consistent one -- the
    # "admitted at version v, never a torn batch" guarantee.
    fact = db.table(plan.logical.fact)
    if hasattr(fact, "snapshot"):
        fact = fact.snapshot()
    n = fact.num_rows
    zone_cache = active_zone_maps()
    zones = zone_cache.maps(db, fact) if zone_cache is not None else None
    state = PipelineState(
        db=db,
        fact=fact,
        query_name=plan.logical.query.name,
        profile=QueryProfile(query=plan.logical.query.name, fact_rows=n, fact_filter_selectivity=1.0),
        build_cache=build_cache,
        rows_alive=float(n),
        zones=zones,
        zone_cache=zone_cache if zones is not None else None,
    )

    for scan in plan.filters:
        scan.run(state)
    state.profile.fact_filter_selectivity = state.rows_alive / n if n else 0.0

    for build, probe in zip(plan.builds, plan.probes):
        build.run(state)
        probe.run(state)

    plan.aggregate.run(state)
    return state.value, state.profile


# ----------------------------------------------------------------------
# Sharded execution: per-shard partial aggregates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PartialAggregate:
    """One shard's mergeable slice of the final aggregate.

    The payload shapes follow the exact-merge discipline of
    :class:`~repro.ingest.standing.StandingQuery`: ``sum``/``count`` carry a
    float (0.0 over an empty shard), ``min``/``max`` carry a float or
    ``None`` (an empty shard has no extremum to offer), and ``avg`` carries
    the exact ``(sum, count)`` decomposition so the merged average is the
    same single division the monolithic executor performs.  Grouped shards
    carry a dict from group-key tuple to the same per-op payload; a group a
    shard never saw is simply absent.  SSB measures are integer-valued with
    totals far below 2**53, so float64 partial sums are exact and their
    merge is order-independent -- which is what makes ``shards=N`` answers
    *byte-identical* to the monolithic plane, not merely close.
    """

    op: str
    grouped: bool
    group_by: tuple[str, ...]
    payload: object


def _partial_payload(op: str, measure: np.ndarray | None, count: int) -> object:
    """The scalar payload of one shard (see :class:`PartialAggregate`)."""
    if op == "avg":
        return (scalar_aggregate_values("sum", measure, count), count)
    return scalar_aggregate_values(op, measure, count)


def _partial_aggregate(
    state: PipelineState, group_by: tuple[str, ...], aggregate: AggregateSpec
) -> PartialAggregate:
    """The :class:`Aggregate` stage, emitting a mergeable partial.

    Mirrors :meth:`Aggregate.run` exactly -- same profile emissions
    (``result_input_rows``, measure column accesses, ``num_groups``,
    ``output_row_bytes``), same measure gathering, same packed-radix
    factorization -- but reduces to per-shard partials instead of finals.
    The parent's :func:`~repro.engine.plan.merge_partial_aggregates` turns
    a set of these into the final value.
    """
    profile = state.profile
    profile.result_input_rows = state.rows_alive

    validate_aggregate(aggregate)
    sel = state.sel
    count = int(sel.size)
    measure_columns = []
    for column in aggregate.columns:
        column_bytes = float(state.fact.column(column).nbytes)
        profile.column_accesses.append(
            ColumnAccess(
                column=column, column_bytes=column_bytes, rows_needed=state.rows_alive, role="measure"
            )
        )
        measure_columns.append(state.fact[column][sel].astype(np.float64))
    measure = combine_measures(aggregate, measure_columns)

    if not group_by:
        profile.num_groups = 1
        profile.output_row_bytes = 8.0
        return PartialAggregate(
            op=aggregate.op,
            grouped=False,
            group_by=(),
            payload=_partial_payload(aggregate.op, measure, count),
        )

    missing = [name for name in group_by if name not in state.group_columns]
    if missing:
        raise ValueError(
            f"group-by column(s) {missing} are not payloads of any join in query "
            f"{state.query_name!r}"
        )
    payload: dict = {}
    if count:
        key_arrays = [state.group_columns[name] for name in group_by]
        unique_keys, inverse = factorize_group_keys(key_arrays)
        num_groups = unique_keys.shape[0]
        if aggregate.op == "avg":
            sums = grouped_aggregate_values("sum", measure, inverse, num_groups)
            counts = grouped_aggregate_values("count", None, inverse, num_groups)
            totals = list(zip(sums, counts))
        else:
            totals = grouped_aggregate_values(aggregate.op, measure, inverse, num_groups)
        for key, total in zip(unique_keys, totals):
            group = tuple(int(x) for x in key)
            if aggregate.op == "avg":
                payload[group] = (float(total[0]), int(total[1]))
            else:
                payload[group] = float(total)
    profile.num_groups = max(len(payload), 1)
    profile.output_row_bytes = float(8 + 4 * len(group_by))
    return PartialAggregate(
        op=aggregate.op, grouped=True, group_by=tuple(group_by), payload=payload
    )


def execute_physical_partial(
    db: Database,
    plan: PhysicalPlan,
    start: int,
    stop: int,
    artifacts: "tuple[BuildArtifact, ...] | None" = None,
    build_cache: BuildArtifactCache | None = None,
) -> tuple[PartialAggregate, QueryProfile]:
    """Run a physical plan over fact rows ``[start, stop)`` of one shard.

    The shard's pipeline is the ordinary selection-vector pipeline with the
    selection *pre-seeded* to the shard's row range: every operator already
    has a sel-is-set refine path, so a shard behaves exactly like a query
    whose first conjunct happened to select those rows -- including queries
    with no fact filter at all, whose first probe would otherwise run
    full-width in every shard.  Row ids stay global, so zone
    classifications, packed-twin word offsets, and probe zone skipping all
    apply unchanged per shard.

    ``artifacts``, when given, are the parent-built dimension lookups in
    plan order; the per-shard builds are skipped and every shard probes the
    very same immutable artifacts the monolithic plane would.  The returned
    profile is this shard's *slice*;
    :func:`~repro.engine.plan.fold_shard_profiles` reassembles the
    monolithic profile from the slices, byte-identically.
    """
    if build_cache is None:
        build_cache = active_build_cache()
    fact = db.table(plan.logical.fact)
    if hasattr(fact, "snapshot"):
        fact = fact.snapshot()
    zone_cache = active_zone_maps()
    zones = zone_cache.maps(db, fact) if zone_cache is not None else None
    n_shard = stop - start
    state = PipelineState(
        db=db,
        fact=fact,
        query_name=plan.logical.query.name,
        profile=QueryProfile(
            query=plan.logical.query.name, fact_rows=n_shard, fact_filter_selectivity=1.0
        ),
        build_cache=build_cache,
        rows_alive=float(n_shard),
        zones=zones,
        zone_cache=zone_cache if zones is not None else None,
        sel=np.arange(start, stop, dtype=np.int64),
    )
    if artifacts is not None:
        for probe, artifact in zip(plan.probes, artifacts):
            state.artifacts[id(probe.join)] = artifact

    for scan in plan.filters:
        scan.run(state)
    state.profile.fact_filter_selectivity = state.rows_alive / n_shard if n_shard else 0.0

    for build, probe in zip(plan.builds, plan.probes):
        if id(probe.join) not in state.artifacts:
            build.run(state)
        probe.run(state)

    partial = _partial_aggregate(state, plan.aggregate.group_by, plan.aggregate.aggregate)
    return partial, state.profile
