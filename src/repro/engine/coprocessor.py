"""GPU-as-coprocessor engine (Section 3.1).

Data resides in CPU memory; for every query the needed fact columns (and the
dimension tables) are shipped to the GPU over PCIe, the same fused Crystal
kernel as the standalone GPU engine runs on the device, and the (small)
result comes back.  Even with perfect overlap of transfer and execution the
query cannot run faster than the PCIe transfer of its input columns -- and
because PCIe bandwidth is below CPU DRAM bandwidth, the coprocessor loses to
a good CPU implementation on every SSB query (Figure 3).
"""

from __future__ import annotations

from repro.api.registry import register_engine
from repro.engine.gpu_engine import GPUStandaloneEngine
from repro.engine.plan import QueryProfile, execute_query
from repro.engine.result import QueryResult
from repro.hardware.counters import TrafficCounter
from repro.hardware.interconnect import PCIeLink
from repro.hardware.presets import DEFAULT_PCIE
from repro.sim.gpu import GPUSimulator
from repro.sim.timing import TimeBreakdown
from repro.ssb.queries import SSBQuery
from repro.storage import Database


@register_engine("coprocessor", aliases=("gpu-coprocessor",))
class CoprocessorEngine:
    """GPU coprocessor: ship columns over PCIe for every query."""

    name = "gpu-coprocessor"

    def __init__(
        self,
        db: Database,
        simulator: GPUSimulator | None = None,
        pcie: PCIeLink | None = None,
    ) -> None:
        self.db = db
        self.simulator = simulator or GPUSimulator()
        self.pcie = pcie or PCIeLink(bandwidth_bytes_per_s=DEFAULT_PCIE)
        self._gpu = GPUStandaloneEngine(db, self.simulator)

    # ------------------------------------------------------------------
    @staticmethod
    def transfer_bytes(profile: QueryProfile) -> float:
        """Bytes that must cross PCIe: the distinct fact columns plus dimensions.

        Derived from the profile (not the loaded database) so the same
        calculation works for profiles rescaled to the paper's data sizes.
        """
        seen: set[str] = set()
        total = 0.0
        for access in profile.column_accesses:
            if access.column in seen:
                continue
            seen.add(access.column)
            total += access.column_bytes
        for stage in profile.joins:
            total += stage.build_scan_bytes
        return total

    # ------------------------------------------------------------------
    def simulate(self, query: SSBQuery, profile: QueryProfile) -> TimeBreakdown:
        """Simulated coprocessor runtime for an already-collected profile."""
        kernel_time = TimeBreakdown()
        kernel_time.merge(self._gpu.build_time(profile))
        kernel_time.merge(self._gpu.probe_time(profile))

        input_bytes = self.transfer_bytes(profile)
        result_bytes = float(profile.num_groups) * profile.output_row_bytes
        overlapped_s = self.pcie.overlapped_with_kernel(input_bytes, kernel_time.total_seconds)
        result_s = self.pcie.transfer_seconds(result_bytes)

        time = TimeBreakdown()
        time.add("pcie_or_kernel_overlapped", overlapped_s)
        time.add("result_transfer", result_s)
        return time

    def run(self, query: SSBQuery) -> QueryResult:
        """Execute a query in coprocessor mode."""
        value, profile = execute_query(self.db, query)
        time = self.simulate(query, profile)

        input_bytes = self.transfer_bytes(profile)
        result_bytes = float(profile.num_groups) * profile.output_row_bytes
        kernel_seconds = (
            self._gpu.build_time(profile).total_seconds + self._gpu.probe_time(profile).total_seconds
        )
        traffic = TrafficCounter(pcie_bytes=input_bytes + result_bytes)
        stats = {
            "pcie_input_bytes": input_bytes,
            "kernel_seconds": kernel_seconds,
            "pcie_bound": float(time.total_seconds > kernel_seconds),
            "groups": float(profile.num_groups),
        }
        return QueryResult(
            query=query.name, engine=self.name, value=value, time=time, traffic=traffic, stats=stats
        )
