"""Standalone GPU engine (Crystal / tile-based execution, working set on GPU).

Execution strategy (Sections 3.3 and 5.2, "Standalone GPU"):

* One small build kernel per dimension hash table.
* One fused probe kernel per query: every thread block loads a tile of the
  fact columns (selectively, for columns only needed by surviving rows),
  performs the chained hash-table probes -- served by the L2 when the table
  fits, by global memory otherwise -- and updates the grouped aggregate with
  per-block atomics.
* Warp scheduling hides the latency of the probe accesses, so the kernel is
  bound purely by the memory traffic: the streaming component and the
  cache-resident probe traffic overlap, and only probe misses to global
  memory add to the bus time (the Section 5.3 model).
"""

from __future__ import annotations

from repro.api.registry import register_engine
from repro.engine.plan import QueryProfile, execute_query
from repro.engine.result import QueryResult
from repro.hardware.counters import TrafficCounter
from repro.sim.gpu import GPUSimulator, KernelLaunch
from repro.sim.timing import TimeBreakdown
from repro.ssb.queries import SSBQuery
from repro.storage import Database

#: Launch configuration the paper settles on for all SSB kernels: 256-thread
#: blocks with 8 items per thread (tile of 2048 entries).
SSB_LAUNCH = KernelLaunch(threads_per_block=256, items_per_thread=8, label="ssb-fused-probe")


@register_engine("gpu", aliases=("standalone-gpu",))
class GPUStandaloneEngine:
    """Tile-based GPU query engine with the working set resident in HBM."""

    name = "standalone-gpu"

    def __init__(self, db: Database, simulator: GPUSimulator | None = None) -> None:
        self.db = db
        self.simulator = simulator or GPUSimulator()

    # ------------------------------------------------------------------
    def build_time(self, profile: QueryProfile) -> TimeBreakdown:
        """Time of the per-dimension hash-table build kernels."""
        time = TimeBreakdown()
        for stage in profile.joins:
            traffic = TrafficCounter(
                sequential_read_bytes=stage.build_scan_bytes,
                sequential_write_bytes=stage.hash_table_bytes,
                compute_ops=float(stage.dimension_rows) * 3.0,
            )
            execution = self.simulator.run_kernel(
                traffic, KernelLaunch(label=f"build-{stage.dimension}")
            )
            time.merge(execution.time, prefix=f"build.{stage.dimension}.")
        return time

    def probe_time(self, profile: QueryProfile) -> TimeBreakdown:
        """Time of the single fused probe kernel."""
        spec = self.simulator.spec
        line = spec.global_access_granularity_bytes

        streaming_read = profile.selective_column_bytes(line)
        streaming_write = float(profile.num_groups) * profile.output_row_bytes
        read_s = self.simulator.sequential_read_seconds(streaming_read, SSB_LAUNCH.load_efficiency())
        write_s = self.simulator.sequential_write_seconds(streaming_write)

        # Chained probes: cache-resident probe traffic overlaps with the
        # streaming scan (warps that wait are swapped out); probe misses to
        # global memory share the memory bus and therefore add.
        cached_probe_s = 0.0
        global_probe_s = 0.0
        for stage in profile.joins:
            seconds, serviced_by = self.simulator.random_access_seconds(
                stage.probe_rows, stage.hash_table_bytes
            )
            if serviced_by == "global":
                global_probe_s += seconds
            else:
                cached_probe_s += seconds

        datapath_s = max(read_s + write_s, cached_probe_s) + global_probe_s

        # Grouped-aggregate atomics spread over the group slots.
        atomic_s = self.simulator.atomic_seconds(profile.result_input_rows, profile.num_groups)
        num_tiles = -(-profile.fact_rows // SSB_LAUNCH.tile_size) if profile.fact_rows else 0
        sync_s = self.simulator.sync_overhead_seconds(SSB_LAUNCH, num_tiles)

        time = TimeBreakdown()
        time.add("probe.datapath", datapath_s)
        time.add("probe.atomics", atomic_s)
        time.add("probe.sync", sync_s)
        time.add("probe.launch", 8e-6)
        return time

    # ------------------------------------------------------------------
    def simulate(self, query: SSBQuery, profile: QueryProfile) -> TimeBreakdown:
        """Simulated runtime of ``query`` for an already-collected profile."""
        time = TimeBreakdown()
        time.merge(self.build_time(profile))
        time.merge(self.probe_time(profile))
        return time

    def run(self, query: SSBQuery) -> QueryResult:
        """Execute a query and simulate its runtime on the paper's GPU."""
        value, profile = execute_query(self.db, query)
        time = self.simulate(query, profile)

        traffic = TrafficCounter(
            sequential_read_bytes=profile.selective_column_bytes(
                self.simulator.spec.global_access_granularity_bytes
            ),
            sequential_write_bytes=float(profile.num_groups) * profile.output_row_bytes,
        )
        stats = {
            "fact_rows": float(profile.fact_rows),
            "result_rows": profile.result_input_rows,
            "groups": float(profile.num_groups),
            "fact_filter_selectivity": profile.fact_filter_selectivity,
        }
        return QueryResult(
            query=query.name, engine=self.name, value=value, time=time, traffic=traffic, stats=stats
        )
