"""Shared functional execution and profiling of SSB queries.

Every engine computes the same answer; what differs is *how* the work maps
onto hardware.  :func:`execute_query` runs a query functionally (exact
NumPy evaluation) and simultaneously collects a :class:`QueryProfile`: the
per-stage cardinalities, selectivities, column footprints, and hash-table
sizes that the engines need to charge traffic according to their respective
execution strategies (pipelined single pass on the CPU, fused tile kernel on
the GPU, operator-at-a-time with materialization for the MonetDB-like
baseline, and so on).

Production execution runs through the staged physical pipeline of
:mod:`repro.engine.physical` (discrete ScanFilter / BuildLookup / ProbeJoin
/ Aggregate operators, whose builds can be shared across a query batch).
:func:`execute_query_monolithic` is the seed single-pass executor, retained
verbatim as the differential-testing reference: the pipeline must produce
byte-identical answers and profiles (see ``tests/test_physical.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.cache import active_cache, active_shard_executor
from repro.engine.expr import evaluate_pred, predicate_leaf_count, predicate_or_branches
from repro.ssb.queries import AGGREGATE_OPS, AggregateSpec, SSBQuery, conjuncts
from repro.storage import Database, Table

#: Bytes per dimension hash-table entry: a 4-byte key and a 4-byte payload
#: (the paper's perfect-hashing estimate, Section 5.3).
HASH_ENTRY_BYTES = 8


@dataclass
class JoinStage:
    """Profile of one fact-to-dimension join inside a query."""

    dimension: str
    fact_key: str
    dimension_rows: int
    build_rows: int
    hash_table_bytes: float
    #: Rows of the fact table that reach this join (after earlier stages).
    probe_rows: float
    #: Fraction of probed rows that survive this join.
    selectivity: float
    #: Whether the query needs a payload column from this dimension.
    has_payload: bool
    #: Bytes of dimension columns scanned to build the hash table.
    build_scan_bytes: float


@dataclass
class FilterStage:
    """Profile of one top-level conjunct of the fact-table predicate.

    Besides the row counts, the stage records the predicate's *shape*: a
    fused band predicate (one ``between``, or any pure conjunction)
    evaluates branch-free in a single pass, while each extra OR alternative
    costs another predicated pass on SIMD CPUs, a data-dependent branch on
    compiled scalar engines, and a whole extra materialized operator on
    operator-at-a-time engines (Section 4.2's selection variants).
    """

    columns: tuple[str, ...]
    #: Rows alive when the term is applied / surviving it.
    rows_in: float
    rows_out: float
    #: Single-column comparisons in the term (1 for a fused band predicate).
    leaf_count: int
    #: Extra disjunctive alternatives (0 for any pure conjunction).
    or_branches: int


@dataclass
class ColumnAccess:
    """Profile of one fact-column access inside the pipelined probe pass."""

    column: str
    column_bytes: float
    #: Rows still alive when this column is first needed.
    rows_needed: float
    #: Purpose of the access: "filter", "join_key", or "measure".
    role: str


@dataclass
class QueryProfile:
    """Everything an engine needs to cost a query without re-executing it."""

    query: str
    fact_rows: int
    fact_filter_selectivity: float
    column_accesses: list[ColumnAccess] = field(default_factory=list)
    filter_stages: list[FilterStage] = field(default_factory=list)
    joins: list[JoinStage] = field(default_factory=list)
    #: Rows surviving all filters and joins (the rows that reach the aggregate).
    result_input_rows: float = 0.0
    #: Number of output groups (1 for a scalar aggregate).
    num_groups: int = 1
    #: Bytes per output row (group keys + aggregate).
    output_row_bytes: float = 16.0

    def fact_bytes_accessed_full(self) -> float:
        """Total bytes of the fact columns the query touches (full columns)."""
        return sum(access.column_bytes for access in self.column_accesses)

    def selective_column_bytes(self, line_bytes: int) -> float:
        """Fact-column bytes touched under the min(full-scan, line-per-row) rule."""
        total = 0.0
        for access in self.column_accesses:
            per_row = access.rows_needed * line_bytes
            total += min(access.column_bytes, per_row)
        return total

    def filter_leaf_count(self) -> int:
        """Single-column comparisons across every fact-filter term."""
        return sum(stage.leaf_count for stage in self.filter_stages)

    def filter_or_branches(self) -> int:
        """Extra disjunctive alternatives across every fact-filter term (0 = fused)."""
        return sum(stage.or_branches for stage in self.filter_stages)


def narrowest_signed_dtype(low: int, high: int) -> np.dtype:
    """The narrowest signed integer dtype whose range covers ``[low, high]``."""
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= low and high <= info.max:
            return np.dtype(dtype)
    raise OverflowError(f"payload range [{low}, {high}] exceeds int64")


def build_dimension_lookup(
    dimension: Table, key_column: str, mask: np.ndarray, payload_column: str | None, base: int = 0
):
    """Build a dense key -> payload lookup for a (filtered) dimension.

    Dimension keys in SSB are dense integers, so a perfect-hash array is both
    what a high-performance implementation would use and what the paper's
    hash-table size estimate assumes.  Returns ``(lookup, present)``: the
    payload array and a parallel membership mask, so payload values carry no
    in-band "no match" sentinel and may take any value (including negatives).

    The payload array is stored at the narrowest signed dtype that covers the
    selected payload values (the paper stores everything as 4-byte values;
    most SSB payloads -- years, dictionary codes of small domains -- fit in
    one or two bytes), so probes gather and carry small codes, not int64.

    ``base`` offsets the arrays: slot ``i`` answers key ``base + i``.  The
    zone-map plane passes the key column's statistics minimum so date-style
    keys (``d_datekey`` starts at 19920101) index a ~65 K-entry array
    instead of a ~20 M-entry one; probes subtract the artifact's base before
    gathering.  The default keeps the seed layout (keys index from 0).
    """
    keys = dimension[key_column]
    max_key = int(keys.max()) if keys.shape[0] else 0
    if base and keys.shape[0] == 0:
        base = 0
    selected = np.flatnonzero(mask)
    if payload_column is not None and selected.size:
        payload = dimension[payload_column]
        chosen = payload[selected]
        dtype = narrowest_signed_dtype(min(int(chosen.min()), 0), int(chosen.max()))
    else:
        payload = np.zeros(keys.shape[0], dtype=np.int8)
        chosen = payload[selected]
        dtype = np.dtype(np.int8)
    lookup = np.zeros(max_key + 1 - base, dtype=dtype)
    present = np.zeros(max_key + 1 - base, dtype=bool)
    slots = keys[selected] - base if base else keys[selected]
    lookup[slots] = chosen.astype(dtype)
    present[slots] = True
    return lookup, present


def scalar_aggregate(op: str, measure: np.ndarray | None, selected: np.ndarray) -> float | None:
    """Reduce the selected measure values to one scalar under ``op``.

    Over an empty selection, ``count`` is 0, ``sum`` is 0.0, and
    ``min``/``max``/``avg`` are ``None`` (SQL's NULL): there is no row to
    take a minimum of, and fabricating 0.0 would be indistinguishable from
    a measured value.
    """
    values = None if measure is None else measure[selected]
    return scalar_aggregate_values(op, values, int(selected.size))


def scalar_aggregate_values(op: str, values: np.ndarray | None, count: int) -> float | None:
    """:func:`scalar_aggregate` over already-gathered measure values.

    The selection-vector pipeline gathers measures at selection-vector width
    before reducing; ``count`` is the number of surviving rows (``values``
    is ``None`` for ``count``, which needs no measure expression).
    """
    if op == "count":
        return float(count)
    if count == 0:
        return 0.0 if op == "sum" else None
    if op == "sum":
        return float(values.sum())
    if op == "min":
        return float(values.min())
    if op == "max":
        return float(values.max())
    return float(values.mean())  # avg


def grouped_aggregate(
    op: str, measure: np.ndarray | None, selected: np.ndarray, inverse: np.ndarray, num_groups: int
) -> np.ndarray:
    """Per-group reduction of the selected measure values under ``op``.

    Every group has at least one member (groups come from ``np.unique`` over
    the selected rows), so the count divisor for ``avg`` is never zero.
    """
    values = None if measure is None else measure[selected]
    return grouped_aggregate_values(op, values, inverse, num_groups)


def grouped_aggregate_values(
    op: str, values: np.ndarray | None, inverse: np.ndarray, num_groups: int
) -> np.ndarray:
    """:func:`grouped_aggregate` over already-gathered measure values."""
    if op == "count":
        return np.bincount(inverse, minlength=num_groups).astype(np.float64)
    if op == "sum":
        return np.bincount(inverse, weights=values, minlength=num_groups)
    if op == "avg":
        counts = np.bincount(inverse, minlength=num_groups)
        return np.bincount(inverse, weights=values, minlength=num_groups) / counts
    out = np.full(num_groups, np.inf if op == "min" else -np.inf)
    reducer = np.minimum if op == "min" else np.maximum
    reducer.at(out, inverse, values)
    return out


#: Domain size beyond which the packed-key group-by abandons the dense
#: ``bincount`` remap for a sort-based ``np.unique`` over the packed int64
#: keys.  The remap's scratch arrays are O(domain) regardless of row count,
#: so this is a hard cap (~64 MB of transient scratch at the limit); every
#: SSB group-by domain (years x brands, city x city x year, ...) sits far
#: below it.
PACKED_DENSE_LIMIT = 1 << 22


def factorize_group_keys(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Unique key tuples (lexicographically sorted) and inverse, via packed keys.

    Equivalent to ``np.unique(np.stack(key_arrays, axis=1), axis=0,
    return_inverse=True)`` but radically cheaper: each group column's values
    span a small range (dictionary codes, years), so the columns mix into a
    single int64 radix key (first column most significant, which preserves
    lexicographic order).  Small key domains factorize with two
    ``np.bincount``-style passes and no sort at all; large ones fall back to
    a 1-D ``np.unique`` over the packed keys, still far cheaper than the
    row-wise ``axis=0`` structured sort.  Column ranges that cannot mix into
    int64 fall back to ``np.unique(..., axis=0)`` unchanged.
    """
    lows = [int(a.min()) for a in key_arrays]
    widths = [int(a.max()) - low + 1 for a, low in zip(key_arrays, lows)]
    span = 1
    for width in widths:
        span *= width
        if span > 2**62:
            stacked = np.stack([a.astype(np.int64) for a in key_arrays], axis=1)
            return np.unique(stacked, axis=0, return_inverse=True)

    packed = np.zeros(key_arrays[0].shape[0], dtype=np.int64)
    for array, low, width in zip(key_arrays, lows, widths):
        packed *= width
        packed += array.astype(np.int64) - low

    if span <= PACKED_DENSE_LIMIT:
        counts = np.bincount(packed, minlength=span)
        unique_packed = np.flatnonzero(counts)
        remap = np.zeros(span, dtype=np.int64)
        remap[unique_packed] = np.arange(unique_packed.size)
        inverse = remap[packed]
    else:
        unique_packed, inverse = np.unique(packed, return_inverse=True)

    columns = []
    rest = unique_packed
    for low, width in zip(reversed(lows), reversed(widths)):
        columns.append(rest % width + low)
        rest = rest // width
    unique = np.stack(list(reversed(columns)), axis=1)
    return unique, inverse


def validate_aggregate(aggregate: AggregateSpec) -> None:
    """Reject malformed aggregate specs with the executor's error messages.

    Shared by the monolithic reference executor and the physical pipeline's
    Aggregate operator, so hand-built specs fail identically on both paths.
    """
    if aggregate.op not in AGGREGATE_OPS:
        raise ValueError(f"unsupported aggregate op {aggregate.op!r}; expected one of {AGGREGATE_OPS}")
    if not aggregate.columns and aggregate.op != "count":
        raise ValueError(f"aggregate op {aggregate.op!r} needs at least one measure column")
    if aggregate.columns and aggregate.op == "count":
        raise ValueError(
            "'count' counts surviving rows and takes no measure columns; "
            "charging a measure scan would distort the cost model"
        )
    if aggregate.combine is not None and len(aggregate.columns) != 2:
        raise ValueError(
            f"measure combinator {aggregate.combine!r} needs exactly two columns, got {len(aggregate.columns)}"
        )
    if aggregate.combine is None and len(aggregate.columns) > 1:
        raise ValueError(
            f"{len(aggregate.columns)} measure columns need a combinator ('mul' or 'sub')"
        )


def combine_measures(aggregate: AggregateSpec, measure_columns: list[np.ndarray]) -> np.ndarray | None:
    """The (validated) aggregate's measure expression over its input columns."""
    if not measure_columns:
        return None  # count: no measure expression needed
    if aggregate.combine == "mul":
        return measure_columns[0] * measure_columns[1]
    if aggregate.combine == "sub":
        return measure_columns[0] - measure_columns[1]
    if aggregate.combine is None:
        return measure_columns[0]
    raise ValueError(f"unsupported measure combinator {aggregate.combine!r}")


def execute_query(db: Database, query: SSBQuery) -> tuple[object, QueryProfile]:
    """Execute ``query`` against ``db`` and collect its execution profile.

    Returns ``(value, profile)`` where ``value`` is the scalar aggregate for
    flight-1 queries or a dict mapping group-key tuples (dictionary codes /
    integers) to the aggregate for grouped queries.

    Execution runs through the staged physical pipeline
    (:mod:`repro.engine.physical`): the query is lowered to discrete
    ScanFilter / BuildLookup / ProbeJoin / Aggregate operators whose
    dimension builds are shared when a
    :class:`~repro.engine.cache.BuildArtifactCache` is active.

    When a :class:`~repro.engine.cache.ExecutionCache` is active (a
    :class:`~repro.api.Session` runs the same query on several engines), the
    functional pass happens once and subsequent calls replay the memoized
    answer and profile.
    """
    cache = active_cache()
    if cache is not None:
        return cache.fetch(db, query, _execute_query_uncached)
    return _execute_query_uncached(db, query)


def _execute_query_uncached(db: Database, query: SSBQuery) -> tuple[object, QueryProfile]:
    # Deferred import: physical builds on this module's profile dataclasses
    # and helpers, so a top-level import would be circular.
    from repro.engine.physical import execute_physical, lower_query

    # With a shard binding active (Session(shards=N) / run(shards=N)), the
    # uncached execution fans out over the worker-process pool and merges
    # partial aggregates; the binding sits *inside* the execution memo so a
    # cached answer replays without touching the pool.
    binding = active_shard_executor()
    if binding is not None:
        return binding.execute(db, query)
    # Lowering sees the database so the zone-map pruning pass (when a
    # ZoneMapCache is active) can classify zones per filter term.
    return execute_physical(db, lower_query(query, db))


def merge_partial_aggregates(partials) -> object:
    """Combine per-shard partial aggregates into the final answer.

    ``partials`` are the :class:`~repro.engine.physical.PartialAggregate`
    slices of one query, one per shard (any order; row ranges disjoint).
    The merge follows the exact decomposition discipline of
    :class:`~repro.ingest.standing.StandingQuery`: ``sum``/``count`` add,
    ``min``/``max`` compare (skipping ``None`` from empty shards), and
    ``avg`` adds its ``(sum, count)`` halves and divides once at the end --
    the very division the monolithic executor performs, over exactly the
    same integers, so the merged answer is byte-identical, not just close.
    Grouped answers merge keyed (the packed-radix int64 group keys make
    this a dict combine) and emerge in lexicographic key order, matching
    :func:`factorize_group_keys`' sorted unique keys.
    """
    partials = list(partials)
    if not partials:
        raise ValueError("cannot merge zero partial aggregates")
    first = partials[0]
    op = first.op
    if not first.grouped:
        if op == "avg":
            total = sum(p.payload[0] for p in partials)
            count = sum(p.payload[1] for p in partials)
            return total / count if count else None
        if op in ("sum", "count"):
            return float(sum(p.payload for p in partials))
        extrema = [p.payload for p in partials if p.payload is not None]
        if not extrema:
            return None
        return float(min(extrema) if op == "min" else max(extrema))
    merged: dict = {}
    for partial in partials:
        for key, payload in partial.payload.items():
            held = merged.get(key)
            if held is None:
                merged[key] = payload
            elif op == "avg":
                merged[key] = (held[0] + payload[0], held[1] + payload[1])
            elif op in ("sum", "count"):
                merged[key] = held + payload
            elif op == "min":
                merged[key] = payload if payload < held else held
            else:  # max
                merged[key] = payload if payload > held else held
    value: dict = {}
    for key in sorted(merged):
        payload = merged[key]
        value[key] = float(payload[0] / payload[1]) if op == "avg" else float(payload)
    return value


def fold_shard_profiles(profiles, value) -> QueryProfile:
    """Reassemble the monolithic :class:`QueryProfile` from per-shard slices.

    Sharding partitions the fact rows exactly, so every *extensive*
    quantity (row counts: ``fact_rows``, ``rows_in``/``rows_out``,
    ``probe_rows``, ``rows_needed``, ``result_input_rows``) is the plain
    sum of the shard slices, while every *intensive* or artifact-derived
    quantity (column bytes, hash-table bytes, dimension rows, predicate
    shape) is identical in every slice and taken from the first.  The two
    derived ratios are recomputed from the summed exact integers with the
    same single float division the monolithic executor performs --
    ``fact_filter_selectivity`` from the last filter stage's survivors,
    each join's ``selectivity`` from the rows alive after it (the next
    join's ``probe_rows``, or ``result_input_rows`` after the last) -- so
    the folded profile is byte-identical to the single-process one.
    ``num_groups`` comes from the merged ``value``.

    Per-shard slices align positionally by construction: operator order is
    fixed by the plan, and each shard charges the same columns in the same
    order regardless of its data.
    """
    profiles = list(profiles)
    if not profiles:
        raise ValueError("cannot fold zero shard profiles")
    first = profiles[0]
    n = sum(p.fact_rows for p in profiles)
    alive_after_filters = sum(
        (p.filter_stages[-1].rows_out if p.filter_stages else float(p.fact_rows))
        for p in profiles
    )
    folded = QueryProfile(
        query=first.query,
        fact_rows=n,
        fact_filter_selectivity=alive_after_filters / n if n else 0.0,
    )
    for i, access in enumerate(first.column_accesses):
        folded.column_accesses.append(
            ColumnAccess(
                column=access.column,
                column_bytes=access.column_bytes,
                rows_needed=sum(p.column_accesses[i].rows_needed for p in profiles),
                role=access.role,
            )
        )
    for i, stage in enumerate(first.filter_stages):
        folded.filter_stages.append(
            FilterStage(
                columns=stage.columns,
                rows_in=sum(p.filter_stages[i].rows_in for p in profiles),
                rows_out=sum(p.filter_stages[i].rows_out for p in profiles),
                leaf_count=stage.leaf_count,
                or_branches=stage.or_branches,
            )
        )
    folded.result_input_rows = sum(p.result_input_rows for p in profiles)
    for i, join in enumerate(first.joins):
        probe_rows = sum(p.joins[i].probe_rows for p in profiles)
        if i + 1 < len(first.joins):
            alive_after = sum(p.joins[i + 1].probe_rows for p in profiles)
        else:
            alive_after = folded.result_input_rows
        folded.joins.append(
            JoinStage(
                dimension=join.dimension,
                fact_key=join.fact_key,
                dimension_rows=join.dimension_rows,
                build_rows=join.build_rows,
                hash_table_bytes=join.hash_table_bytes,
                probe_rows=probe_rows,
                selectivity=alive_after / probe_rows if probe_rows else 0.0,
                has_payload=join.has_payload,
                build_scan_bytes=join.build_scan_bytes,
            )
        )
    folded.num_groups = max(len(value), 1) if isinstance(value, dict) else 1
    folded.output_row_bytes = first.output_row_bytes
    return folded


def execute_query_monolithic(db: Database, query: SSBQuery) -> tuple[object, QueryProfile]:
    """The seed single-pass executor, kept as the pipeline's reference.

    Behaviourally identical to :func:`execute_query` (the physical pipeline
    must produce byte-identical answers and profiles -- the differential
    tests in ``tests/test_physical.py`` hold the two paths together), but
    with no operator seams: no build sharing, no per-stage decomposition.
    Never consults the caches.
    """
    # Snapshot once so a concurrent append cannot tear the pass (same
    # guarantee as the pipeline executor; see physical.execute_physical).
    fact = db.table(query.fact)
    if hasattr(fact, "snapshot"):
        fact = fact.snapshot()
    n = fact.num_rows
    profile = QueryProfile(query=query.name, fact_rows=n, fact_filter_selectivity=1.0)

    # ------------------------------------------------------------------
    # Fact-table predicate.  Top-level conjuncts apply one at a time (so the
    # profile records the term-by-term shrink of the surviving rows, as the
    # legacy filter list did); within the whole predicate each referenced
    # column's bytes are charged exactly once, no matter how many leaves of
    # an OR/NOT tree mention it -- a single scan feeds every comparison.
    # ------------------------------------------------------------------
    alive = np.ones(n, dtype=bool)
    rows_alive = float(n)
    charged: set[str] = set()
    for term in conjuncts(query.predicate):
        for column in term.columns():
            if column in charged:
                continue
            charged.add(column)
            column_bytes = float(fact.column(column).nbytes)
            profile.column_accesses.append(
                ColumnAccess(column=column, column_bytes=column_bytes, rows_needed=rows_alive, role="filter")
            )
        rows_in = rows_alive
        alive &= evaluate_pred(fact, term)
        rows_alive = float(np.count_nonzero(alive))
        profile.filter_stages.append(
            FilterStage(
                columns=term.columns(),
                rows_in=rows_in,
                rows_out=rows_alive,
                leaf_count=predicate_leaf_count(term),
                or_branches=predicate_or_branches(term),
            )
        )
    profile.fact_filter_selectivity = rows_alive / n if n else 0.0

    # ------------------------------------------------------------------
    # Dimension joins (in the order given by the query plan)
    # ------------------------------------------------------------------
    group_columns: dict[str, np.ndarray] = {}
    for join in query.joins:
        dimension = db.table(join.dimension)
        if hasattr(dimension, "snapshot"):
            dimension = dimension.snapshot()
        dim_mask = evaluate_pred(dimension, join.predicate)
        build_rows = int(np.count_nonzero(dim_mask))
        lookup, present = build_dimension_lookup(dimension, join.dimension_key, dim_mask, join.payload)

        fact_keys = fact[join.fact_key]
        column_bytes = float(fact.column(join.fact_key).nbytes)
        profile.column_accesses.append(
            ColumnAccess(column=join.fact_key, column_bytes=column_bytes, rows_needed=rows_alive, role="join_key")
        )

        payload_codes = np.zeros(n, dtype=np.int64)
        valid_key = (fact_keys >= 0) & (fact_keys < lookup.shape[0])
        candidate = alive & valid_key
        candidate_keys = fact_keys[candidate]
        payload_codes[candidate] = lookup[candidate_keys]
        matched = candidate.copy()
        matched[candidate] = present[candidate_keys]

        probe_rows = rows_alive
        rows_alive_after = float(np.count_nonzero(matched))
        selectivity = rows_alive_after / probe_rows if probe_rows else 0.0

        build_scan_bytes = float(
            dimension.column(join.dimension_key).nbytes
            + sum(dimension.column(c).nbytes for c in join.predicate.columns())
            + (dimension.column(join.payload).nbytes if join.payload else 0)
        )
        profile.joins.append(
            JoinStage(
                dimension=join.dimension,
                fact_key=join.fact_key,
                dimension_rows=dimension.num_rows,
                build_rows=build_rows,
                hash_table_bytes=float(HASH_ENTRY_BYTES * dimension.num_rows),
                probe_rows=probe_rows,
                selectivity=selectivity,
                has_payload=join.payload is not None,
                build_scan_bytes=build_scan_bytes,
            )
        )

        alive = matched
        rows_alive = rows_alive_after
        if join.payload is not None:
            if join.payload in group_columns:
                raise ValueError(
                    f"payload column {join.payload!r} is produced by more than one join in "
                    f"query {query.name!r}; payload names must be unique"
                )
            group_columns[join.payload] = payload_codes

    profile.result_input_rows = rows_alive

    # ------------------------------------------------------------------
    # Aggregate (and group-by)
    # ------------------------------------------------------------------
    agg = query.aggregate
    validate_aggregate(agg)

    measure_columns = []
    for column in agg.columns:
        column_bytes = float(fact.column(column).nbytes)
        profile.column_accesses.append(
            ColumnAccess(column=column, column_bytes=column_bytes, rows_needed=rows_alive, role="measure")
        )
        measure_columns.append(fact[column].astype(np.float64))
    measure = combine_measures(agg, measure_columns)

    selected = np.flatnonzero(alive)
    if not query.has_group_by:
        value: object = scalar_aggregate(agg.op, measure, selected)
        profile.num_groups = 1
        profile.output_row_bytes = 8.0
        return value, profile

    missing = [name for name in query.group_by if name not in group_columns]
    if missing:
        raise ValueError(
            f"group-by column(s) {missing} are not payloads of any join in query {query.name!r}"
        )
    key_arrays = [group_columns[name][selected] for name in query.group_by]
    if selected.size == 0:
        value = {}
    else:
        stacked = np.stack(key_arrays, axis=1)
        unique_keys, inverse = np.unique(stacked, axis=0, return_inverse=True)
        totals = grouped_aggregate(agg.op, measure, selected, inverse, unique_keys.shape[0])
        value = {tuple(int(x) for x in key): float(total) for key, total in zip(unique_keys, totals)}
    profile.num_groups = max(len(value), 1)
    profile.output_row_bytes = float(8 + 4 * len(query.group_by))
    return value, profile
