"""Block-wide aggregation: ``block_aggregate``.

Hierarchically reduces a tile to a single value per thread block (sum, min,
max, or count).  The per-block partial results are then combined into a
single global value with one atomic update per tile -- the pattern the GPU
join microbenchmark (Q4) and all SSB aggregate queries use.
"""

from __future__ import annotations

import numpy as np

from repro.crystal.context import BlockContext
from repro.crystal.tile import Tile

_REDUCERS = {
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
    "count": lambda values: np.asarray(values).shape[0],
}


def block_aggregate(
    ctx: BlockContext,
    tile: Tile,
    op: str = "sum",
    update_global: bool = True,
    counter_name: str = "aggregate",
) -> float:
    """Reduce a tile's matched entries to one value.

    Args:
        ctx: The enclosing kernel's block context.
        tile: The tile to reduce; when it carries a bitmap only matched
            entries participate.
        op: One of ``"sum"``, ``"min"``, ``"max"``, ``"count"``.
        update_global: When True (the default) the block's partial result is
            folded into a global accumulator via one atomic update per tile.
        counter_name: Name of the global accumulator in ``ctx.counters``.

    Returns:
        The reduction over all tiles handled by this call (a float so that
        sums of int64 columns do not silently wrap).
    """
    if op not in _REDUCERS:
        raise ValueError(f"unsupported aggregate {op!r}; expected one of {sorted(_REDUCERS)}")
    values = tile.matched_values()
    if values.shape[0] == 0:
        result = 0.0
    else:
        result = float(_REDUCERS[op](values.astype(np.float64) if op != "count" else values))

    # The hierarchical reduction stages one partial per warp through shared
    # memory and needs a barrier between the two reduction levels.
    ctx.charge_shared(tile.values.shape[0] * 4)
    ctx.charge_compute(tile.values.shape[0])
    ctx.charge_barrier(1)

    if update_global:
        num_tiles = max(ctx.num_tiles(tile.values.shape[0]), 1)
        ctx.charge_atomic(num_tiles, num_targets=1)
        if op == "sum" or op == "count":
            ctx.counters[counter_name] = ctx.counters.get(counter_name, 0) + result
        else:
            previous = ctx.counters.get(counter_name)
            if previous is None:
                ctx.counters[counter_name] = result
            else:
                ctx.counters[counter_name] = (
                    min(previous, result) if op == "min" else max(previous, result)
                )
    return result
