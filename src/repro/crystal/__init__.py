"""Crystal: a library of block-wide functions for tile-based query execution.

This package is the reproduction of the paper's primary contribution
(Section 3.3, Table 1).  In the tile-based execution model a thread block is
the unit of execution: it loads a *tile* of items from global memory into
shared memory / registers, and all subsequent steps of the (fused) query
kernel operate on the staged tile, so the input is read from global memory
exactly once and the output is written back coalesced.

Each *block-wide function* takes a set of tiles as input and produces a set
of tiles as output.  In this Python reproduction the functions operate on
NumPy arrays (a "set of tiles" is simply an array whose logical tiling is
defined by the kernel's launch configuration) and simultaneously charge the
memory traffic, shared-memory movement, barriers, and atomics that the CUDA
implementation would incur to the enclosing :class:`~repro.crystal.context.
BlockContext`.  The GPU simulator then turns that charge sheet into
simulated time on the paper's V100.

The full set of primitives from Table 1 is provided:

====================  =====================================================
Primitive             Description
====================  =====================================================
``block_load``        Copy a tile from global memory into the block.
``block_load_sel``    Selectively load entries that pass an earlier bitmap.
``block_store``       Write a tile back to global memory (coalesced).
``block_pred``        Evaluate a predicate over a tile into a bitmap.
``block_pred_and``    AND a new predicate into an existing bitmap.
``block_scan``        Block-wide exclusive prefix sum (returns the total).
``block_shuffle``     Compact matched entries into a contiguous tile.
``block_lookup``      Probe a hash table for a tile of keys.
``block_aggregate``   Hierarchical reduction of a tile to one value.
====================  =====================================================
"""

from repro.crystal.aggregate import block_aggregate
from repro.crystal.context import BlockContext
from repro.crystal.kernel import CrystalKernel, KernelResult
from repro.crystal.load import block_load, block_load_sel
from repro.crystal.lookup import block_lookup
from repro.crystal.pred import block_pred, block_pred_and
from repro.crystal.scan import block_scan
from repro.crystal.shuffle import block_shuffle
from repro.crystal.store import block_store
from repro.crystal.tile import Tile

__all__ = [
    "BlockContext",
    "CrystalKernel",
    "KernelResult",
    "Tile",
    "block_aggregate",
    "block_load",
    "block_load_sel",
    "block_lookup",
    "block_pred",
    "block_pred_and",
    "block_scan",
    "block_shuffle",
    "block_store",
]
