"""Block-wide prefix sum: ``block_scan``.

Co-operatively computes an exclusive prefix sum across a tile (per the
hierarchical block-wide scan of Harris et al. that the CUDA implementation
uses) and returns both the per-item offsets and the per-tile totals.  The
offsets tell every thread where inside the block's output region its matched
entries belong; the total is what thread 0 adds to the global atomic cursor.

The scan requires threads to see each other's counts, so the bitmap is
staged through shared memory and two barriers are charged per tile.
"""

from __future__ import annotations

import numpy as np

from repro.crystal.context import BlockContext
from repro.crystal.tile import Tile


def block_scan(ctx: BlockContext, tile: Tile) -> tuple[np.ndarray, np.ndarray, int]:
    """Exclusive prefix sum of the tile's bitmap, per logical tile.

    Returns:
        A tuple ``(offsets, tile_totals, grand_total)`` where ``offsets`` is
        an int64 array giving, for every item, the number of matched items
        *before* it within its own tile; ``tile_totals`` gives the number of
        matched items in each logical tile; and ``grand_total`` is the total
        number of matched items across all tiles.

    When the tile carries no bitmap every item counts as matched.
    """
    n = tile.values.shape[0]
    if tile.bitmap is None:
        flags = np.ones(n, dtype=np.int64)
        flags[tile.size :] = 0
    else:
        flags = tile.bitmap.astype(np.int64)

    tile_size = max(ctx.tile_size, 1)
    offsets = np.empty(n, dtype=np.int64)
    num_tiles = -(-n // tile_size) if n else 0
    tile_totals = np.zeros(max(num_tiles, 1) if n else 0, dtype=np.int64)
    for t in range(num_tiles):
        lo = t * tile_size
        hi = min(lo + tile_size, n)
        cumulative = np.cumsum(flags[lo:hi])
        offsets[lo:hi] = cumulative - flags[lo:hi]
        tile_totals[t] = cumulative[-1] if hi > lo else 0

    grand_total = int(flags.sum())

    # The scan stages one 4-byte count per item through shared memory and
    # uses two barriers (up-sweep and down-sweep).
    ctx.charge_shared(n * 4)
    ctx.charge_compute(n)
    ctx.charge_barrier(2)
    return offsets, tile_totals, grand_total
