"""The Tile: the unit of data a thread block processes at a time.

A :class:`Tile` wraps a NumPy array of items staged inside the thread block
(logically in shared memory or registers), together with an optional
validity bitmap produced by earlier selections.  Block-wide functions accept
and return tiles; the values array always has the *logical* tile capacity of
the kernel, with ``size`` marking how many leading entries are valid when
the tile is a partial (tail) tile or has been compacted by a shuffle.

In this reproduction a single ``Tile`` object usually carries *all* tiles of
a column at once (the "set of tiles" of the paper's definition): the logical
tiling is defined by the launch configuration and only matters for traffic
accounting, not for correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Tile:
    """A set of items staged inside a thread block.

    Attributes:
        values: The staged items.
        size: Number of valid leading entries (``len(values)`` by default).
        bitmap: Optional boolean validity mask aligned with ``values``;
            produced by ``block_pred`` and consumed by ``block_shuffle`` /
            ``block_load_sel``.
        in_registers: True when the values are held in registers rather than
            shared memory (the Crystal optimization for statically-indexed
            arrays, Section 3.3); only affects traffic accounting.
    """

    values: np.ndarray
    size: int | None = None
    bitmap: np.ndarray | None = None
    in_registers: bool = True

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.size is None:
            self.size = int(self.values.shape[0])
        if self.size < 0 or self.size > self.values.shape[0]:
            raise ValueError(
                f"tile size {self.size} outside [0, {self.values.shape[0]}]"
            )
        if self.bitmap is not None:
            self.bitmap = np.asarray(self.bitmap, dtype=bool)
            if self.bitmap.shape[0] != self.values.shape[0]:
                raise ValueError("bitmap length must match values length")

    @classmethod
    def empty(cls, dtype=np.int32) -> "Tile":
        """An empty tile (zero valid items)."""
        return cls(values=np.empty(0, dtype=dtype), size=0)

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def itemsize(self) -> int:
        """Bytes per item."""
        return int(self.values.dtype.itemsize)

    @property
    def nbytes_valid(self) -> int:
        """Bytes occupied by the valid entries."""
        return self.size * self.itemsize

    def valid_values(self) -> np.ndarray:
        """The valid leading entries as a NumPy array view."""
        return self.values[: self.size]

    def matched_values(self) -> np.ndarray:
        """Entries selected by the bitmap (all valid entries if no bitmap)."""
        if self.bitmap is None:
            return self.valid_values()
        return self.values[: self.size][self.bitmap[: self.size]]

    def num_matched(self) -> int:
        """Number of entries selected by the bitmap."""
        if self.bitmap is None:
            return self.size
        return int(np.count_nonzero(self.bitmap[: self.size]))

    def with_bitmap(self, bitmap: np.ndarray) -> "Tile":
        """Return a new tile sharing values but carrying ``bitmap``."""
        return Tile(values=self.values, size=self.size, bitmap=bitmap, in_registers=self.in_registers)
