"""Fused tile-based kernels.

:class:`CrystalKernel` packages the pattern every Crystal query kernel
follows: create a :class:`~repro.crystal.context.BlockContext` with a launch
configuration, run a user-supplied body composed of block-wide functions,
and hand the accumulated traffic to the GPU simulator to obtain simulated
time.  The body is ordinary Python (mirroring the paper's point that
ordinary CUDA code mixes freely with Crystal functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.crystal.context import BlockContext
from repro.hardware.counters import TrafficCounter
from repro.sim.gpu import GPUExecution, GPUSimulator, KernelLaunch
from repro.sim.timing import TimeBreakdown


@dataclass
class KernelResult:
    """Output of running a fused Crystal kernel."""

    #: Whatever the kernel body returned (result arrays, aggregates, ...).
    value: Any
    #: Simulated execution on the GPU.
    execution: GPUExecution
    #: The context after the run (counters, traffic) for inspection.
    context: BlockContext

    @property
    def milliseconds(self) -> float:
        return self.execution.milliseconds

    @property
    def time(self) -> TimeBreakdown:
        return self.execution.time

    @property
    def traffic(self) -> TrafficCounter:
        return self.context.traffic


class CrystalKernel:
    """A fused query kernel expressed with block-wide functions.

    Example:
        >>> import numpy as np
        >>> from repro.crystal import CrystalKernel, block_load, block_pred
        >>> from repro.crystal import block_scan, block_shuffle, block_store
        >>> column = np.arange(16, dtype=np.int32)
        >>> def body(ctx):
        ...     out = np.zeros_like(column)
        ...     tile = block_load(ctx, column)
        ...     tile = block_pred(ctx, tile, lambda v: v > 7)
        ...     offsets, _, total = block_scan(ctx, tile)
        ...     cursor = ctx.atomic_add("out", total)
        ...     tile = block_shuffle(ctx, tile, offsets)
        ...     block_store(ctx, tile, out, cursor, total)
        ...     return out[:total]
        >>> kernel = CrystalKernel(body)
        >>> result = kernel.run()
        >>> list(result.value)
        [8, 9, 10, 11, 12, 13, 14, 15]
    """

    def __init__(
        self,
        body: Callable[[BlockContext], Any],
        threads_per_block: int = 128,
        items_per_thread: int = 4,
        registers_per_thread: int = 32,
        shared_bytes_per_block: int | None = None,
        label: str = "crystal-kernel",
        simulator: GPUSimulator | None = None,
    ) -> None:
        self.body = body
        self.label = label
        self.simulator = simulator or GPUSimulator()
        tile_items = threads_per_block * items_per_thread
        if shared_bytes_per_block is None:
            # Two tile-sized 4-byte buffers, as in the Figure 8 kernel.
            shared_bytes_per_block = tile_items * 4 * 2
        self.launch = KernelLaunch(
            threads_per_block=threads_per_block,
            items_per_thread=items_per_thread,
            shared_bytes_per_block=shared_bytes_per_block,
            registers_per_thread=registers_per_thread,
            label=label,
        )

    def run(self, *args: Any, **kwargs: Any) -> KernelResult:
        """Execute the kernel body and simulate its GPU runtime."""
        ctx = BlockContext(launch=self.launch)
        value = self.body(ctx, *args, **kwargs)
        execution = self.simulator.run_kernel(
            ctx.traffic, ctx.finalized_launch(), label=self.label
        )
        return KernelResult(value=value, execution=execution, context=ctx)
