"""Block-wide predicate primitives: ``block_pred`` and ``block_pred_and``.

``block_pred`` evaluates a predicate over every item of a tile and produces
a bitmap; ``block_pred_and`` folds an additional predicate into an existing
bitmap (used when a query has several conjunctive selections, Figure 7(b)).
Both operate on register-resident values and therefore generate no memory
traffic beyond the compute itself.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.crystal.context import BlockContext
from repro.crystal.tile import Tile

Predicate = Callable[[np.ndarray], np.ndarray]


def _evaluate(predicate: Predicate, values: np.ndarray) -> np.ndarray:
    result = np.asarray(predicate(values))
    if result.dtype != np.bool_:
        result = result.astype(bool)
    if result.shape != values.shape:
        raise ValueError("predicate must return one boolean per input item")
    return result


def block_pred(ctx: BlockContext, tile: Tile, predicate: Predicate) -> Tile:
    """Evaluate ``predicate`` over a tile and attach the resulting bitmap."""
    bitmap = _evaluate(predicate, tile.values)
    if tile.size < tile.values.shape[0]:
        # Lanes beyond the valid size of a partial tile never match.
        bitmap = bitmap.copy()
        bitmap[tile.size :] = False
    ctx.charge_compute(tile.size)
    return tile.with_bitmap(bitmap)


def block_pred_and(ctx: BlockContext, tile: Tile, predicate: Predicate) -> Tile:
    """AND ``predicate`` into the tile's existing bitmap.

    Only lanes that are still set are evaluated (the others are already
    excluded), mirroring the short-circuit behaviour of the CUDA
    implementation.
    """
    if tile.bitmap is None:
        return block_pred(ctx, tile, predicate)
    new_bits = _evaluate(predicate, tile.values)
    bitmap = tile.bitmap & new_bits
    if tile.size < tile.values.shape[0]:
        bitmap = bitmap.copy()
        bitmap[tile.size :] = False
    ctx.charge_compute(int(np.count_nonzero(tile.bitmap)))
    return tile.with_bitmap(bitmap)
