"""Block execution context: the charge sheet of a fused tile-based kernel.

The :class:`BlockContext` carries the launch configuration (threads per
block, items per thread), the global atomic counters the kernel uses to
claim output space, and a :class:`~repro.hardware.counters.TrafficCounter`
that every block-wide function charges its memory traffic, shared-memory
movement, barriers, and atomics to.  When the kernel finishes, the GPU
simulator converts the context into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.counters import TrafficCounter
from repro.sim.gpu import KernelLaunch


@dataclass
class BlockContext:
    """State shared by all block-wide functions of one fused kernel."""

    launch: KernelLaunch = field(default_factory=KernelLaunch)
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    #: Total barriers executed per tile (incremented by scan/aggregate/...).
    barriers_per_tile: int = 0
    #: Number of logical items the kernel has been asked to process; set by
    #: the first block_load and used to derive the grid size.
    items_processed: int = 0
    #: Global atomic counters by name (e.g. the output cursor of a select).
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def tile_size(self) -> int:
        """Items one thread block stages per tile."""
        return self.launch.tile_size

    def num_tiles(self, num_items: int | None = None) -> int:
        """Number of tiles needed to cover ``num_items`` (ceil division)."""
        items = self.items_processed if num_items is None else num_items
        if items <= 0:
            return 0
        return -(-items // self.tile_size)

    def observe_items(self, num_items: int) -> None:
        """Record the grid size implied by the first full-column load."""
        self.items_processed = max(self.items_processed, int(num_items))

    # ------------------------------------------------------------------
    # Traffic charging helpers used by the block-wide functions
    # ------------------------------------------------------------------
    def charge_global_read(self, num_bytes: float) -> None:
        self.traffic.sequential_read_bytes += float(num_bytes)

    def charge_global_write(self, num_bytes: float) -> None:
        self.traffic.sequential_write_bytes += float(num_bytes)

    def charge_shared(self, num_bytes: float) -> None:
        self.traffic.shared_bytes += float(num_bytes)

    def charge_compute(self, num_ops: float) -> None:
        self.traffic.compute_ops += float(num_ops)

    def charge_random(self, num_accesses: float, working_set_bytes: float, access_bytes: float = 8.0) -> None:
        """Charge random (hash-probe style) accesses against a working set."""
        counter = self.traffic
        total = counter.random_accesses + num_accesses
        if total > 0:
            counter.random_access_bytes = (
                counter.random_access_bytes * counter.random_accesses + access_bytes * num_accesses
            ) / total
        counter.random_accesses = total
        counter.random_working_set_bytes = max(counter.random_working_set_bytes, working_set_bytes)

    def charge_barrier(self, count: int = 1) -> None:
        self.barriers_per_tile += count

    def charge_atomic(self, num_atomics: float, num_targets: float = 1.0) -> None:
        self.traffic.atomic_updates += float(num_atomics)
        self.traffic.atomic_targets = max(self.traffic.atomic_targets, float(num_targets))

    # ------------------------------------------------------------------
    # Global counters (the atomic output cursors of Figure 6)
    # ------------------------------------------------------------------
    def atomic_add(self, name: str, amount: int, per_tile: bool = True) -> int:
        """Atomically add to a named global counter, returning the old value.

        ``per_tile=True`` charges one atomic update per tile of the grid
        (thread 0 of each block performs the update on behalf of the block,
        Section 3.2); pass ``per_tile=False`` when the caller has already
        accounted for the atomics (e.g. the per-thread baseline).
        """
        old = self.counters.get(name, 0)
        self.counters[name] = old + int(amount)
        if per_tile:
            self.charge_atomic(self.num_tiles() or 1, num_targets=1)
        return old

    def counter_value(self, name: str) -> int:
        return self.counters.get(name, 0)

    def finalized_launch(self) -> KernelLaunch:
        """Launch configuration annotated with the grid size and barriers."""
        return KernelLaunch(
            threads_per_block=self.launch.threads_per_block,
            items_per_thread=self.launch.items_per_thread,
            shared_bytes_per_block=self.launch.shared_bytes_per_block,
            registers_per_thread=self.launch.registers_per_thread,
            barriers_per_tile=max(self.launch.barriers_per_tile, self.barriers_per_tile),
            grid_tiles=self.num_tiles(),
            label=self.launch.label,
        )
