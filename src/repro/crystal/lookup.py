"""Block-wide hash-table probe: ``block_lookup``.

Probes a hash table for every (valid) key in a tile.  The probes are random
accesses into the hash table's storage, so the traffic charged depends on
the hash-table size: the enclosing GPU simulator services it from L1/L2 when
the table is cache resident and from global memory otherwise -- exactly the
behaviour the join model of Section 4.3 and the query model of Section 5.3
are built on.
"""

from __future__ import annotations

import numpy as np

from repro.crystal.context import BlockContext
from repro.crystal.tile import Tile


def block_lookup(
    ctx: BlockContext,
    keys: Tile,
    hash_table,
    bitmap: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Probe ``hash_table`` with the keys of a tile.

    Args:
        ctx: The enclosing kernel's block context.
        keys: Tile of probe keys.
        hash_table: Any object exposing ``probe(keys) -> (found, values)``
            and ``size_bytes`` / ``slot_bytes`` attributes (see
            :class:`repro.ops.hash_table.LinearProbingHashTable`).
        bitmap: Optional mask restricting which lanes are probed (lanes that
            failed earlier predicates are skipped, as in the SSB kernels).

    Returns:
        ``(found, values)`` arrays aligned with the tile: ``found`` is a
        boolean mask of keys present in the table, ``values`` the matching
        payloads (zero where not found or not probed).
    """
    key_values = keys.valid_values()
    n = keys.values.shape[0]

    effective_mask = np.ones(keys.size, dtype=bool)
    if keys.bitmap is not None:
        effective_mask &= keys.bitmap[: keys.size]
    if bitmap is not None:
        bitmap = np.asarray(bitmap, dtype=bool)
        if bitmap.shape[0] < keys.size:
            raise ValueError("bitmap shorter than the tile's valid size")
        effective_mask &= bitmap[: keys.size]

    probe_keys = key_values[effective_mask]
    found_local, values_local = hash_table.probe(probe_keys)

    found = np.zeros(n, dtype=bool)
    values = np.zeros(n, dtype=values_local.dtype if values_local.size else np.int64)
    idx = np.flatnonzero(effective_mask)
    found[idx] = found_local
    values[idx] = values_local

    ctx.charge_random(
        num_accesses=float(probe_keys.shape[0]),
        working_set_bytes=float(hash_table.size_bytes),
        access_bytes=float(getattr(hash_table, "slot_bytes", 8)),
    )
    ctx.charge_compute(probe_keys.shape[0])
    return found, values
