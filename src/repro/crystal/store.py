"""Block-wide store primitive: ``block_store``.

Copies the valid entries of a tile from the thread block back to global
memory at a given offset.  Because the tile has already been compacted by
``block_shuffle``, the write is fully coalesced -- this is the second half
of the fix for the scattered writes of the thread-per-row approach
(Section 3.2).
"""

from __future__ import annotations

import numpy as np

from repro.crystal.context import BlockContext
from repro.crystal.tile import Tile


def block_store(
    ctx: BlockContext,
    tile: Tile,
    out: np.ndarray,
    offset: int = 0,
    count: int | None = None,
) -> int:
    """Write the first ``count`` valid entries of ``tile`` to ``out[offset:]``.

    Args:
        ctx: The enclosing kernel's block context.
        tile: The (typically compacted) tile to write out.
        out: Destination array in global memory.
        offset: Starting index in ``out`` (normally obtained from the global
            atomic cursor).
        count: Number of entries to write; defaults to the tile's valid size.

    Returns:
        The number of entries written.
    """
    if count is None:
        count = tile.size
    if count < 0:
        raise ValueError("count must be non-negative")
    if count > tile.values.shape[0]:
        raise ValueError("count exceeds tile capacity")
    if offset < 0 or offset + count > out.shape[0]:
        raise ValueError(
            f"store of {count} items at offset {offset} overflows output of size {out.shape[0]}"
        )
    values = tile.values[:count]
    out[offset : offset + count] = values.astype(out.dtype, copy=False)
    ctx.charge_global_write(count * out.dtype.itemsize)
    return int(count)
