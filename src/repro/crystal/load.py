"""Block-wide load primitives: ``block_load`` and ``block_load_sel``.

``block_load`` copies a tile of items from global memory into the thread
block (vectorized 128-bit loads for full tiles, element-at-a-time for the
tail tile).  ``block_load_sel`` loads only the entries that passed an
earlier predicate, given its bitmap -- the block still reserves space for a
full tile, but only the matched entries are fetched from global memory,
which is what makes multi-predicate kernels cheaper than re-scanning
(Figure 7(b)).
"""

from __future__ import annotations

import numpy as np

from repro.crystal.context import BlockContext
from repro.crystal.tile import Tile


def block_load(ctx: BlockContext, column: np.ndarray, in_registers: bool = True) -> Tile:
    """Load a set of tiles (a full column slice) from global memory.

    Args:
        ctx: The enclosing kernel's block context.
        column: The column data in global memory.
        in_registers: Stage the values in registers rather than shared
            memory (the Crystal optimization for statically-indexed tiles).

    Returns:
        A tile holding a copy of ``column``.
    """
    column = np.asarray(column)
    ctx.observe_items(column.shape[0])
    ctx.charge_global_read(column.nbytes)
    if not in_registers:
        ctx.charge_shared(column.nbytes)
    return Tile(values=column.copy(), in_registers=in_registers)


def block_load_sel(
    ctx: BlockContext,
    column: np.ndarray,
    bitmap: np.ndarray,
    in_registers: bool = True,
) -> Tile:
    """Selectively load entries whose ``bitmap`` entry is set.

    Only the matched entries are read from global memory; the hardware still
    moves whole 32-byte sectors, so the charge is the smaller of the full
    column and one sector per matched entry (a selective load cannot cost
    more than a full load).

    The returned tile has the same length as ``column`` with unmatched
    positions zeroed, and carries ``bitmap`` so later primitives know which
    lanes are valid.
    """
    column = np.asarray(column)
    bitmap = np.asarray(bitmap, dtype=bool)
    if bitmap.shape[0] != column.shape[0]:
        raise ValueError("bitmap length must match column length")
    ctx.observe_items(column.shape[0])

    matched = int(np.count_nonzero(bitmap))
    sector_bytes = 32
    full_cost = float(column.nbytes)
    selective_cost = matched * float(sector_bytes)
    ctx.charge_global_read(min(full_cost, selective_cost))

    values = np.where(bitmap, column, 0).astype(column.dtype, copy=False)
    if not in_registers:
        ctx.charge_shared(column.nbytes)
    return Tile(values=values, bitmap=bitmap, in_registers=in_registers)
