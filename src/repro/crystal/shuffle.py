"""Block-wide shuffle: ``block_shuffle``.

Uses the bitmap and the per-item offsets produced by ``block_scan`` to
rearrange a tile so that all matched entries are contiguous at the front --
inside shared memory, so the subsequent ``block_store`` writes a dense,
coalesced run to global memory.  This is the step that converts the random
scattered writes of the thread-per-row approach into sequential writes
(Figure 6, "Gen shuffled tile").
"""

from __future__ import annotations

import numpy as np

from repro.crystal.context import BlockContext
from repro.crystal.tile import Tile


def block_shuffle(ctx: BlockContext, tile: Tile, offsets: np.ndarray | None = None) -> Tile:
    """Compact the matched entries of a tile into a contiguous prefix.

    Args:
        ctx: The enclosing kernel's block context.
        tile: Tile carrying a bitmap of matched entries (a tile without a
            bitmap is already dense and is returned compacted trivially).
        offsets: Per-item offsets from ``block_scan``.  They are accepted for
            interface fidelity (the CUDA kernel needs them to know where each
            thread writes); the compaction result does not depend on them
            because matched order is preserved either way.

    Returns:
        A new tile whose first ``num_matched`` entries are the matched values
        in their original order and whose ``size`` equals that count.
    """
    matched = tile.matched_values()
    compacted = np.zeros_like(tile.values)
    compacted[: matched.shape[0]] = matched

    if offsets is not None and tile.bitmap is not None:
        offsets = np.asarray(offsets)
        if offsets.shape[0] != tile.values.shape[0]:
            raise ValueError("offsets length must match tile length")

    # The shuffle stages the matched entries through shared memory and needs
    # one barrier so every thread sees the scan results before scattering.
    ctx.charge_shared(matched.nbytes + tile.values.nbytes)
    ctx.charge_barrier(1)
    return Tile(values=compacted, size=int(matched.shape[0]), in_registers=False)
