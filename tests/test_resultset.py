"""Tests for the first-class decoded ResultSet.

The headline property is the decoding round-trip: building a query whose
predicates are *strings*, executing it over dictionary-encoded columns, and
decoding the group keys must equal filtering the decoded (string-level)
data directly with plain Python.
"""

import json

import numpy as np
import pytest

from repro.api import Q, ResultSet, Session, col
from repro.api.resultset import measure_label
from repro.ssb.queries import QUERIES


def _native(value):
    return value.item() if isinstance(value, np.generic) else value


@pytest.fixture(scope="module")
def session(tiny_ssb):
    return Session(tiny_ssb)


class TestDecoding:
    def test_q21_decodes_year_and_brand_labels(self, session, tiny_ssb):
        """Acceptance: q2.1's ResultSet prints decoded d_year / p_brand1."""
        result = session.run(QUERIES["q2.1"], engine="cpu")
        assert result.columns == ("d_year", "p_brand1", "sum(lo_revenue)")
        brands = tiny_ssb["part"].dictionaries["p_brand1"]
        for year, brand, revenue in result:
            assert 1992 <= year <= 1998  # numeric payloads pass through
            assert isinstance(brand, str) and brand in brands
            assert revenue >= 0.0
        text = str(result)
        assert "d_year" in text and "p_brand1" in text and "MFGR#" in text

    def test_decode_round_trip_equals_string_level_filtering(self, session, tiny_ssb):
        """encode -> execute -> decode == brute-force over decoded strings."""
        query = (
            Q("lineorder")
            .join(
                "supplier",
                on=("lo_suppkey", "s_suppkey"),
                filters=col("s_region").eq("ASIA") | col("s_region").eq("EUROPE"),
                payload="s_nation",
            )
            .agg("count")
            .group_by("s_nation")
            .build(tiny_ssb)
        )
        result = session.run(query, engine="cpu")

        supplier, lo = tiny_ssb["supplier"], tiny_ssb["lineorder"]
        regions = supplier.dictionaries["s_region"].decode(supplier["s_region"])
        nations = supplier.dictionaries["s_nation"].decode(supplier["s_nation"])
        nation_of = {}
        for suppkey, region, nation in zip(supplier["s_suppkey"], regions, nations):
            if region in ("ASIA", "EUROPE"):
                nation_of[int(suppkey)] = nation
        expected: dict[str, float] = {}
        for suppkey in lo["lo_suppkey"]:
            nation = nation_of.get(int(suppkey))
            if nation is not None:
                expected[nation] = expected.get(nation, 0.0) + 1.0

        assert {record["s_nation"]: record["count(*)"] for record in result.to_dicts()} == expected

    def test_scalar_result_has_single_record(self, session):
        result = session.run(QUERIES["q1.1"], engine="gpu")
        assert result.columns == ("sum(lo_extendedprice*lo_discount)",)
        assert len(result) == 1
        assert result.records[0][0] == result.value

    def test_delegation_preserves_raw_surface(self, session):
        result = session.run(QUERIES["q2.1"], engine="cpu")
        assert result.query == "q2.1"
        assert result.engine == "standalone-cpu"
        assert isinstance(result.value, dict)
        assert result.simulated_ms > 0
        assert result.rows == len(result.value)
        assert result.stats["groups"] == float(len(result.value))

    def test_measure_labels(self):
        assert measure_label(QUERIES["q1.1"]) == "sum(lo_extendedprice*lo_discount)"
        assert measure_label(QUERIES["q4.1"]) == "sum(lo_revenue-lo_supplycost)"
        count = Q().agg("count").build()
        assert measure_label(count) == "count(*)"


class TestTabularOps:
    @pytest.fixture(scope="class")
    def result(self, tiny_ssb):
        return Session(tiny_ssb).run(QUERIES["q2.1"], engine="cpu")

    def test_sort_values_defaults_to_group_columns(self, result):
        ordered = result.sort_values()
        keys = [(year, brand) for year, brand, _ in ordered]
        assert keys == sorted(keys)
        # Sorting copies; the original is untouched.
        assert set(ordered.records) == set(result.records)

    def test_sort_values_by_aggregate_descending(self, result):
        top = result.sort_values("sum(lo_revenue)", ascending=False)
        revenues = [record[-1] for record in top]
        assert revenues == sorted(revenues, reverse=True)

    def test_sort_values_unknown_column(self, result):
        with pytest.raises(KeyError, match="available"):
            result.sort_values("nope")

    def test_head_limits_records(self, result):
        assert len(result.head(3)) == min(3, len(result))
        assert result.head(3).columns == result.columns

    def test_to_dicts_round_trips_columns(self, result):
        records = result.to_dicts()
        assert len(records) == len(result)
        assert all(set(record) == set(result.columns) for record in records)

    def test_to_csv(self, result, tmp_path):
        text = result.to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "d_year,p_brand1,sum(lo_revenue)"
        assert len(lines) == len(result) + 1
        path = tmp_path / "q21.csv"
        result.to_csv(str(path))
        assert path.read_text(encoding="utf-8") == text

    def test_to_json_round_trips_records(self, result):
        records = json.loads(result.to_json())
        assert records == result.to_dicts() or records == [
            {key: _native(value) for key, value in record.items()}
            for record in result.to_dicts()
        ]
        # Decoded labels survive, and every cell is a plain JSON type.
        assert all(isinstance(record["p_brand1"], str) for record in records)
        assert all(
            isinstance(value, (str, int, float)) for record in records for value in record.values()
        )

    def test_to_json_scalar_and_path(self, session, tmp_path):
        scalar = session.run(QUERIES["q1.1"], engine="cpu")
        path = tmp_path / "q11.json"
        text = scalar.to_json(str(path), indent=2)
        assert path.read_text(encoding="utf-8") == text
        records = json.loads(text)
        assert len(records) == 1
        assert records[0]["sum(lo_extendedprice*lo_discount)"] == pytest.approx(
            float(scalar.value)
        )

    def test_str_renders_aligned_table(self, result):
        text = str(result.sort_values().head(2))
        lines = text.splitlines()
        assert lines[0].startswith("d_year")
        assert lines[1].startswith("-")
        assert "[2 rows; q2.1 on standalone-cpu]" in lines[-1]


class TestComparisonReporting:
    def test_comparison_str_includes_decoded_answer(self, session):
        text = str(session.compare(QUERIES["q2.1"], engines=["cpu", "gpu"]))
        assert "consistent=True" in text
        assert "decoded" in text
        assert "MFGR#" in text

    def test_comparison_answer_is_a_resultset(self, session):
        comparison = session.compare(QUERIES["q2.1"], engines=["cpu", "gpu"])
        assert isinstance(comparison.answer, ResultSet)
        assert comparison.answer.columns[:2] == ("d_year", "p_brand1")

    def test_run_many_returns_resultsets(self, session):
        results = session.run_many([QUERIES["q1.1"], QUERIES["q2.1"]], engine="cpu")
        assert all(isinstance(result, ResultSet) for result in results)
        assert [result.query for result in results] == ["q1.1", "q2.1"]


class TestAllCanonicalQueriesDecode:
    def test_every_grouped_query_decodes_every_group_column(self, session, tiny_ssb):
        for name, query in QUERIES.items():
            result = session.run(query, engine="cpu")
            if not query.has_group_by:
                assert len(result.columns) == 1
                continue
            assert result.columns[:-1] == query.group_by
            for record in result:
                for column, value in zip(query.group_by, record):
                    dimension = next(
                        j.dimension for j in query.joins if j.payload == column
                    )
                    if column in tiny_ssb[dimension].dictionaries:
                        assert isinstance(value, str), (name, column)
                    else:
                        assert isinstance(value, (int, np.integer)), (name, column)
