"""Tests for the analytic cost models (Sections 4, 5.3, and 3.1)."""

import pytest

from repro.hardware.presets import INTEL_I7_6900, NVIDIA_V100, bandwidth_ratio
from repro.models.coprocessor import (
    coprocessor_query_lower_bound,
    coprocessor_vs_cpu_ratio,
    cpu_query_upper_bound,
)
from repro.models.join import cpu_join_probe_model, gpu_join_probe_model, join_probe_model
from repro.models.project import cpu_project_model, gpu_project_model, project_model
from repro.models.query import QueryCostInputs, cpu_ssb_q21_model, gpu_ssb_q21_model
from repro.models.select import cpu_select_model, gpu_select_model, select_model
from repro.models.sort import (
    cpu_radix_sort_model,
    gpu_radix_sort_model,
    radix_histogram_model,
    radix_shuffle_model,
    radix_sort_model,
)

N = 1 << 29


class TestProjectModel:
    def test_formula(self):
        model = project_model(1000, read_bandwidth=1e9, write_bandwidth=2e9)
        assert model.term("read_inputs") == pytest.approx(8000 / 1e9)
        assert model.term("write_output") == pytest.approx(4000 / 2e9)
        assert model.seconds == pytest.approx(model.term("read_inputs") + model.term("write_output"))

    def test_device_ratio_tracks_bandwidth_ratio(self):
        ratio = cpu_project_model(N).seconds / gpu_project_model(N).seconds
        assert ratio == pytest.approx(bandwidth_ratio(), rel=0.05)

    def test_rejects_negative_rows(self):
        with pytest.raises(ValueError):
            project_model(-1, 1e9, 1e9)


class TestSelectModel:
    def test_write_term_scales_with_selectivity(self):
        full = select_model(1000, 1.0, 1e9, 1e9)
        half = select_model(1000, 0.5, 1e9, 1e9)
        assert half.term("read_input") == full.term("read_input")
        assert half.term("write_matches") == pytest.approx(full.term("write_matches") / 2)

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError):
            select_model(10, 1.5, 1e9, 1e9)

    def test_device_ratio_close_to_bandwidth_ratio(self):
        ratio = cpu_select_model(N, 0.5).seconds / gpu_select_model(N, 0.5).seconds
        assert ratio == pytest.approx(bandwidth_ratio(), rel=0.05)


class TestJoinModel:
    def test_cache_resident_takes_max(self):
        model = join_probe_model(
            probe_rows=1000, hash_table_bytes=1024,
            cache_levels=[(2048, 1e9)], read_bandwidth=1e9, line_bytes=64,
        )
        assert model.combination == "max"
        assert model.seconds == pytest.approx(max(model.term("scan_probe_relation"),
                                                  model.term("probe_hash_table")))

    def test_memory_resident_adds(self):
        model = join_probe_model(
            probe_rows=1000, hash_table_bytes=10_000,
            cache_levels=[(2048, 1e9)], read_bandwidth=1e9, line_bytes=64,
        )
        assert model.combination == "sum"

    def test_cpu_steps_at_l2_and_l3(self):
        in_l2 = cpu_join_probe_model(256_000_000, 128 << 10)
        in_l3 = cpu_join_probe_model(256_000_000, 2 << 20)
        in_dram = cpu_join_probe_model(256_000_000, 512 << 20)
        assert in_l2.seconds < in_l3.seconds < in_dram.seconds

    def test_gpu_step_at_l2(self):
        below = gpu_join_probe_model(256_000_000, 2 << 20)
        above = gpu_join_probe_model(256_000_000, 64 << 20)
        assert above.seconds > below.seconds

    def test_gpu_reads_double_width_lines(self):
        """On the GPU each probe miss moves 128 bytes vs 64 on the CPU."""
        cpu = cpu_join_probe_model(1_000_000, 1 << 30)
        gpu = gpu_join_probe_model(1_000_000, 1 << 30)
        cpu_probe_bytes = cpu.term("probe_hash_table") * INTEL_I7_6900.dram_read_bandwidth
        gpu_probe_bytes = gpu.term("probe_hash_table") * NVIDIA_V100.global_read_bandwidth
        assert gpu_probe_bytes == pytest.approx(cpu_probe_bytes * 2, rel=0.05)

    def test_large_table_speedup_below_bandwidth_ratio(self):
        """Section 4.3: joins gain less than the bandwidth ratio."""
        cpu = cpu_join_probe_model(256_000_000, 512 << 20)
        gpu = gpu_join_probe_model(256_000_000, 512 << 20)
        assert cpu.seconds / gpu.seconds < bandwidth_ratio()


class TestSortModel:
    def test_histogram_and_shuffle_terms(self):
        hist = radix_histogram_model(1000, 1e9)
        shuffle = radix_shuffle_model(1000, 1e9, 1e9)
        assert hist.seconds == pytest.approx(4000 / 1e9)
        assert shuffle.seconds == pytest.approx(8000 / 1e9 + 8000 / 1e9)

    def test_sort_is_passes_times_pass_cost(self):
        sort = radix_sort_model(1000, 4, 1e9, 1e9)
        per_pass = radix_histogram_model(1000, 1e9).seconds + radix_shuffle_model(1000, 1e9, 1e9).seconds
        assert sort.seconds == pytest.approx(4 * per_pass)

    def test_requires_at_least_one_pass(self):
        with pytest.raises(ValueError):
            radix_sort_model(1000, 0, 1e9, 1e9)

    def test_paper_sort_numbers(self):
        """Section 4.4: 464 ms CPU vs 27.08 ms GPU for 2^28 entries (4 passes)."""
        cpu = cpu_radix_sort_model(1 << 28)
        gpu = gpu_radix_sort_model(1 << 28)
        assert cpu.milliseconds == pytest.approx(464, rel=0.2)
        assert gpu.milliseconds == pytest.approx(27.08, rel=0.2)
        assert cpu.seconds / gpu.seconds == pytest.approx(16.4, rel=0.1)


class TestQueryModel:
    def test_q21_inputs_at_sf20(self):
        inputs = QueryCostInputs.ssb_q21_sf(20)
        assert inputs.fact_rows == 120_000_000
        assert inputs.supplier_rows == 40_000
        assert inputs.part_rows == 1_000_000
        assert inputs.join1_selectivity == pytest.approx(0.2)

    def test_gpu_prediction_close_to_paper(self):
        model = gpu_ssb_q21_model(QueryCostInputs.ssb_q21_sf(20))
        # The paper's model predicts 3.7 ms on the GPU.
        assert 1.5 <= model.milliseconds <= 6.0

    def test_cpu_prediction_close_to_paper(self):
        model = cpu_ssb_q21_model(QueryCostInputs.ssb_q21_sf(20))
        # The paper's model predicts 47 ms on the CPU.
        assert 15.0 <= model.milliseconds <= 70.0

    def test_gpu_wins_by_more_than_bandwidth_ratio_is_false_for_model(self):
        """The *models* differ by roughly the bandwidth ratio; the >16x gap
        appears only in the measured CPU runtime (Section 5.3)."""
        inputs = QueryCostInputs.ssb_q21_sf(20)
        ratio = cpu_ssb_q21_model(inputs).seconds / gpu_ssb_q21_model(inputs).seconds
        assert 5 <= ratio <= 25


class TestCoprocessorModel:
    def test_cpu_upper_bound(self):
        bound = cpu_query_upper_bound(53e9)
        assert bound.seconds == pytest.approx(1.0)

    def test_coprocessor_lower_bound_is_transfer_bound(self):
        bound = coprocessor_query_lower_bound(12.8e9, gpu_kernel_seconds=0.01)
        assert bound.seconds == pytest.approx(1.0, rel=0.01)

    def test_kernel_bound_when_slower_than_transfer(self):
        bound = coprocessor_query_lower_bound(1e6, gpu_kernel_seconds=2.0)
        assert bound.seconds >= 2.0

    def test_coprocessor_always_loses_to_cpu(self):
        """Section 3.1: because PCIe < CPU DRAM bandwidth, R_C < R_G."""
        for total_bytes in (1e8, 1e9, 1e10):
            assert coprocessor_vs_cpu_ratio(total_bytes) > 1.0

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            cpu_query_upper_bound(-1)
        with pytest.raises(ValueError):
            coprocessor_query_lower_bound(-1)
