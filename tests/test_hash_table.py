"""Tests for the linear-probing hash table shared by the join implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops.hash_table import EMPTY_KEY, LinearProbingHashTable


class TestBuild:
    def test_build_with_default_fill_factor(self):
        table = LinearProbingHashTable.build(np.arange(100), np.arange(100))
        assert table.num_keys == 100
        # 50% fill factor rounded up to a power of two.
        assert table.num_slots >= 200
        assert table.size_bytes == table.num_slots * 8

    def test_build_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            LinearProbingHashTable.build(np.array([-1, 2]), np.array([0, 0]))

    def test_build_rejects_misaligned_values(self):
        with pytest.raises(ValueError):
            LinearProbingHashTable.build(np.arange(4), np.arange(3))

    def test_build_rejects_bad_fill_factor(self):
        with pytest.raises(ValueError):
            LinearProbingHashTable.build(np.arange(4), fill_factor=0.0)

    def test_insert_over_capacity(self):
        table = LinearProbingHashTable(num_slots=4)
        with pytest.raises(ValueError):
            table.insert(np.arange(10), np.arange(10))

    def test_duplicate_keys_last_write_wins(self):
        table = LinearProbingHashTable(num_slots=16)
        table.insert(np.array([3]), np.array([10]))
        table.insert(np.array([3]), np.array([20]))
        found, values = table.probe(np.array([3]))
        assert found[0] and values[0] == 20

    def test_slot_bytes(self):
        table = LinearProbingHashTable(num_slots=8, key_bytes=4, payload_bytes=4)
        assert table.slot_bytes == 8


class TestProbe:
    def test_probe_hits_and_misses(self):
        keys = np.arange(0, 1000, 2)
        table = LinearProbingHashTable.build(keys, keys * 3)
        probe = np.array([0, 1, 2, 501, 998])
        found, values = table.probe(probe)
        assert list(found) == [True, False, True, False, True]
        assert values[0] == 0 and values[2] == 6 and values[4] == 998 * 3

    def test_probe_empty_input(self):
        table = LinearProbingHashTable.build(np.arange(10), np.arange(10))
        found, values = table.probe(np.array([], dtype=np.int64))
        assert found.shape == (0,) and values.shape == (0,)

    def test_average_probe_length_reasonable_at_half_fill(self):
        rng = np.random.default_rng(3)
        keys = rng.choice(10_000_0, size=4096, replace=False)
        table = LinearProbingHashTable.build(keys, keys)
        assert 1.0 <= table.average_probe_length() < 3.0

    def test_empty_sentinel_never_collides_with_real_keys(self):
        assert EMPTY_KEY < 0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           num_keys=st.integers(min_value=1, max_value=500))
    def test_probe_finds_exactly_the_inserted_keys(self, seed, num_keys):
        rng = np.random.default_rng(seed)
        keys = rng.choice(5000, size=num_keys, replace=False)
        values = rng.integers(0, 1000, num_keys)
        table = LinearProbingHashTable.build(keys, values)

        probes = rng.integers(0, 5000, 300)
        found, probed_values = table.probe(probes)
        lookup = dict(zip(keys.tolist(), values.tolist()))
        for key, was_found, value in zip(probes.tolist(), found.tolist(), probed_values.tolist()):
            assert was_found == (key in lookup)
            if was_found:
                assert value == lookup[key]
