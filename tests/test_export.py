"""Tests for the CSV export of experiment results."""

import csv

import pytest

from repro.analysis.export import export_experiment, export_rows, export_series


class TestExportRows:
    def test_writes_header_and_rows(self, tmp_path):
        rows = [{"query": "q1.1", "ms": 1.5}, {"query": "q1.2", "ms": 2.0}]
        path = export_rows(rows, tmp_path / "rows.csv")
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert [r["query"] for r in parsed] == ["q1.1", "q1.2"]
        assert float(parsed[1]["ms"]) == 2.0

    def test_union_of_columns(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = export_rows(rows, tmp_path / "rows.csv")
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert set(parsed[0].keys()) == {"a", "b"}

    def test_empty_rows(self, tmp_path):
        path = export_rows([], tmp_path / "empty.csv")
        assert path.read_text() == ""


class TestExportSeries:
    def test_wide_format(self, tmp_path):
        series = {"cpu": {1: 10.0, 2: 20.0}, "gpu": {1: 1.0, 2: 2.0}}
        path = export_series(series, tmp_path / "series.csv", x_name="n")
        with path.open() as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == ["n", "cpu", "gpu"]
        assert parsed[1] == ["1", "10.0", "1.0"]

    def test_missing_points_left_blank(self, tmp_path):
        series = {"a": {1: 1.0}, "b": {2: 2.0}}
        path = export_series(series, tmp_path / "series.csv")
        with path.open() as handle:
            parsed = list(csv.reader(handle))
        assert parsed[1][2] == ""
        assert parsed[2][1] == ""


class TestExportExperiment:
    def test_rows_payload(self, tmp_path):
        result = {"rows": [{"x": 1}], "scale_factor_executed": 0.1}
        written = export_experiment(result, tmp_path, "figure16")
        assert [p.name for p in written] == ["figure16.csv"]

    def test_series_payload_uses_x_name(self, tmp_path):
        result = {"series": {"cpu": {0.1: 5.0}}, "x": "selectivity"}
        written = export_experiment(result, tmp_path, "figure12")
        header = written[0].read_text().splitlines()[0]
        assert header.startswith("selectivity,")

    def test_multiple_payloads(self, tmp_path):
        result = {
            "histogram_series": {"cpu": {3: 1.0}},
            "shuffle_series": {"cpu": {3: 2.0}},
            "full_sort_rows": [{"impl": "cpu", "ms": 400.0}],
            "x": "radix_bits",
        }
        written = export_experiment(result, tmp_path, "figure14")
        names = sorted(p.name for p in written)
        assert names == ["figure14_full_sort.csv", "figure14_histogram.csv", "figure14_shuffle.csv"]

    def test_real_experiment_round_trip(self, tmp_path):
        from repro.analysis.experiments import run_figure10

        result = run_figure10(exec_n=1 << 14)
        written = export_experiment(result, tmp_path, "figure10")
        assert written and written[0].exists()
        with written[0].open() as handle:
            parsed = list(csv.DictReader(handle))
        assert {row["query"] for row in parsed} == {"Q1", "Q2"}
