"""Tests for the Session facade and the engine registry."""

import numpy as np
import pytest

from repro.api import (
    DEFAULT_REGISTRY,
    Engine,
    EngineRegistry,
    Q,
    Session,
    available_engines,
    register_engine,
)
from repro.engine import CPUStandaloneEngine, GPUStandaloneEngine, execute_query
from repro.ssb.queries import QUERIES

#: An ad-hoc two-dimension count query that is NOT one of the 13 SSB queries.
CUSTOM_COUNT = (
    Q("lineorder")
    .filter("lo_quantity", "lt", 25)
    .join("supplier", on=("lo_suppkey", "s_suppkey"),
          filters=[("s_region", "eq", "ASIA")])
    .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
    .group_by("d_year")
    .agg("count")
    .named("asia-orders-by-year")
)


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert available_engines() == ["coprocessor", "cpu", "gpu", "hyper", "monetdb", "omnisci"]

    def test_aliases_resolve_to_descriptive_names(self):
        assert DEFAULT_REGISTRY.resolve("standalone-cpu") == "cpu"
        assert DEFAULT_REGISTRY.resolve("standalone-gpu") == "gpu"
        assert DEFAULT_REGISTRY.resolve("gpu-coprocessor") == "coprocessor"

    def test_unknown_engine_lists_available(self):
        with pytest.raises(KeyError, match="registered engines"):
            DEFAULT_REGISTRY.resolve("tpu")

    def test_duplicate_registration_of_different_factory_rejected(self):
        registry = EngineRegistry()
        registry.register("cpu", CPUStandaloneEngine)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("cpu", GPUStandaloneEngine)

    def test_re_registration_of_same_factory_is_idempotent(self):
        """Module reloads re-fire the decorators; same identity must not raise."""
        registry = EngineRegistry()
        registry.register("cpu", CPUStandaloneEngine, aliases=("standalone-cpu",))
        registry.register("cpu", CPUStandaloneEngine, aliases=("standalone-cpu",))
        assert registry.resolve("standalone-cpu") == "cpu"

    def test_distinct_lambda_factories_do_not_alias(self):
        """Two different lambdas share a qualname; only the same object re-binds."""
        registry = EngineRegistry()
        factory = lambda db: CPUStandaloneEngine(db)  # noqa: E731
        registry.register("a", factory)
        registry.register("a", factory)  # identical object: fine
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", lambda db: CPUStandaloneEngine(db))

    def test_builtin_engines_conform_to_protocol(self, tiny_ssb):
        for key in available_engines():
            engine = DEFAULT_REGISTRY.create(key, tiny_ssb)
            assert isinstance(engine, Engine)
            assert isinstance(engine.name, str)

    def test_custom_engine_via_decorator(self, tiny_ssb):
        registry = EngineRegistry()

        @register_engine("echo", registry=registry)
        class EchoEngine:
            name = "echo"

            def __init__(self, db):
                self.db = db

            def run(self, query):
                return CPUStandaloneEngine(self.db).run(query)

        session = Session(tiny_ssb, registry=registry)
        result = session.run(QUERIES["q1.1"], engine="echo")
        reference = CPUStandaloneEngine(tiny_ssb).run(QUERIES["q1.1"])
        assert result.value == reference.value

    def test_non_conforming_factory_rejected(self, tiny_ssb):
        registry = EngineRegistry()
        registry.register("broken", lambda db: object())
        with pytest.raises(TypeError, match="Engine protocol"):
            registry.create("broken", tiny_ssb)


class TestSessionRun:
    @pytest.fixture(scope="class")
    def session(self, tiny_ssb):
        return Session(tiny_ssb)

    def test_run_matches_direct_engine(self, session, tiny_ssb):
        via_session = session.run(QUERIES["q2.1"], engine="cpu")
        direct = CPUStandaloneEngine(tiny_ssb).run(QUERIES["q2.1"])
        assert via_session.value == direct.value
        assert via_session.simulated_ms == direct.simulated_ms

    def test_engine_instances_are_cached(self, session):
        assert session.engine("gpu") is session.engine("standalone-gpu")

    def test_run_accepts_builders(self, session):
        result = session.run(CUSTOM_COUNT, engine="cpu")
        assert result.query == "asia-orders-by-year"
        assert result.rows >= 1

    def test_run_many(self, session):
        names = ["q1.1", "q2.1", "q3.1"]
        results = session.run_many([QUERIES[n] for n in names], engine="gpu")
        assert [r.query for r in results] == names
        assert all(r.engine == "standalone-gpu" for r in results)

    def test_run_rejects_non_queries(self, session):
        with pytest.raises(TypeError, match="SSBQuery or QueryBuilder"):
            session.run("q1.1")

    def test_unencoded_string_predicate_errors_instead_of_matching_nothing(self, session):
        """A spec built without a db keeps its string constant unencoded; running
        it must raise, not silently count zero rows."""
        spec = (
            Q()
            .join("supplier", on=("lo_suppkey", "s_suppkey"),
                  filters=[("s_region", "eq", "ASIA")])
            .agg("count")
            .build()  # no db: no dictionary rewrite happens here
        )
        with pytest.raises(TypeError, match="encoded"):
            session.run(spec, engine="cpu")

    def test_optimize_preserves_answers(self, session):
        plain = session.run(QUERIES["q4.1"], engine="cpu")
        optimized = session.run(QUERIES["q4.1"], engine="cpu", optimize=True)
        assert optimized.value == plain.value


class TestSessionCompare:
    @pytest.fixture(scope="class")
    def session(self, tiny_ssb):
        return Session(tiny_ssb)

    def test_custom_query_consistent_across_cpu_gpu_coprocessor(self, session, tiny_ssb):
        """Acceptance: a non-canonical count query agrees exactly on 3 engines."""
        comparison = session.compare(CUSTOM_COUNT, engines=["cpu", "gpu", "coprocessor"])
        assert comparison.consistent
        assert set(comparison.results) == {"cpu", "gpu", "coprocessor"}

        # The shared answer is exactly the brute-force NumPy count.
        lo = tiny_ssb["lineorder"]
        supplier, date = tiny_ssb["supplier"], tiny_ssb["date"]
        asia = supplier.encode_predicate_value("s_region", "ASIA")
        ok_supp = np.zeros(int(supplier["s_suppkey"].max()) + 1, dtype=bool)
        ok_supp[supplier["s_suppkey"][supplier["s_region"] == asia]] = True
        year_of = dict(zip(date["d_datekey"].tolist(), date["d_year"].tolist()))
        expected: dict[tuple, float] = {}
        mask = (lo["lo_quantity"] < 25) & ok_supp[lo["lo_suppkey"]]
        for orderdate in lo["lo_orderdate"][mask]:
            key = (int(year_of[int(orderdate)]),)
            expected[key] = expected.get(key, 0.0) + 1.0
        value = next(iter(comparison.results.values())).value
        assert value == expected

    def test_all_six_engines_agree_on_custom_query(self, session):
        comparison = session.compare(CUSTOM_COUNT, engines=available_engines())
        assert comparison.consistent

    def test_rows_sorted_fastest_first(self, session):
        comparison = session.compare(QUERIES["q2.1"])
        times = [row.simulated_ms for row in comparison.rows()]
        assert times == sorted(times)
        assert comparison.fastest == comparison.rows()[0].engine

    def test_as_dicts_is_tidy(self, session):
        records = session.compare(QUERIES["q1.1"]).as_dicts()
        assert {r["engine"] for r in records} == {"cpu", "gpu", "coprocessor"}
        for record in records:
            assert set(record) == {
                "query", "engine", "simulated_ms", "rows", "agrees", "speedup_vs_slowest"
            }
            assert record["agrees"]

    def test_str_table_renders(self, session):
        text = str(session.compare(QUERIES["q1.1"]))
        assert "consistent=True" in text
        assert "cpu" in text and "gpu" in text

    def test_compare_accepts_a_bare_engine_name(self, session):
        """A single string must not be iterated character-wise."""
        comparison = session.compare(QUERIES["q1.1"], engines="cpu")
        assert set(comparison.results) == {"cpu"}

    def test_compare_needs_engines(self, session):
        with pytest.raises(ValueError, match="at least one engine"):
            session.compare(QUERIES["q1.1"], engines=[])

    def test_compare_rejects_duplicate_engines(self, session):
        """An alias and its canonical key must not silently collapse to one row."""
        with pytest.raises(ValueError, match="more than once"):
            session.compare(QUERIES["q1.1"], engines=["gpu", "standalone-gpu"])

    def test_compare_with_optimize_is_consistent(self, session):
        comparison = session.compare(QUERIES["q4.2"], engines=["cpu", "gpu"], optimize=True)
        assert comparison.consistent
        reference = session.run(QUERIES["q4.2"], engine="cpu")
        assert comparison.results["cpu"].value == reference.value


class TestQuickstartDocstring:
    def test_package_quickstart_runs(self, tiny_ssb):
        """The package docstring's advertised imports and flow actually work."""
        import repro

        for symbol in ("Q", "Session", "QUERIES", "generate_ssb"):
            assert hasattr(repro, symbol), f"repro does not export {symbol}"
        session = Session(tiny_ssb)
        orders = (
            Q("lineorder")
            .filter("lo_quantity", "lt", 25)
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("count")
        )
        comparison = session.compare(orders, engines=["cpu", "gpu", "coprocessor"])
        assert comparison.consistent
        value, _ = execute_query(tiny_ssb, orders.build(tiny_ssb))
        assert next(iter(comparison.results.values())).value == value
