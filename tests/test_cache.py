"""Tests for the analytic and LRU cache models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import AnalyticCacheModel, CacheHierarchy, SetAssociativeCache
from repro.hardware.presets import INTEL_I7_6900


class TestAnalyticCacheModel:
    def test_hit_ratio_when_working_set_fits(self):
        cache = AnalyticCacheModel(capacity_bytes=1024)
        assert cache.hit_ratio(512) == 1.0
        assert cache.fits(1024)

    def test_hit_ratio_partial(self):
        cache = AnalyticCacheModel(capacity_bytes=1024)
        assert cache.hit_ratio(4096) == pytest.approx(0.25)
        assert cache.miss_ratio(4096) == pytest.approx(0.75)

    def test_hit_ratio_degenerate_working_set(self):
        cache = AnalyticCacheModel(capacity_bytes=1024)
        assert cache.hit_ratio(0) == 1.0

    @given(ws=st.floats(min_value=1.0, max_value=1e12))
    def test_hit_ratio_bounded(self, ws):
        cache = AnalyticCacheModel(capacity_bytes=6 * 1024 * 1024)
        ratio = cache.hit_ratio(ws)
        assert 0.0 <= ratio <= 1.0

    def test_paper_part_hash_table_example(self):
        """Section 5.3: pi = 5.7 MB / 8 MB for the part hash table in the GPU L2."""
        cache = AnalyticCacheModel(capacity_bytes=int(5.7 * 2**20))
        assert cache.hit_ratio(8 * 2**20) == pytest.approx(5.7 / 8, rel=1e-3)


class TestCacheHierarchy:
    def test_from_specs_and_hit_level(self):
        hierarchy = CacheHierarchy.from_specs(INTEL_I7_6900.caches)
        assert hierarchy.hit_level(16 * 1024) == 0      # fits in L1
        assert hierarchy.hit_level(128 * 1024) == 1     # fits in L2
        assert hierarchy.hit_level(10 * 2**20) == 2     # fits in L3
        assert hierarchy.hit_level(100 * 2**20) is None  # nothing fits

    def test_memory_access_probability(self):
        hierarchy = CacheHierarchy.from_specs(INTEL_I7_6900.caches)
        assert hierarchy.memory_access_probability(10 * 2**20) == 0.0
        assert hierarchy.memory_access_probability(40 * 2**20) == pytest.approx(0.5)


class TestSetAssociativeCache:
    def test_repeat_access_hits(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, associativity=4)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line
        assert cache.access(64) is False  # next line

    def test_lru_eviction_within_set(self):
        # Two-line direct-mapped-ish cache: 2 sets x 1 way.
        cache = SetAssociativeCache(capacity_bytes=128, line_bytes=64, associativity=1)
        cache.access(0)       # set 0
        cache.access(128)     # set 0, evicts line 0
        assert cache.access(0) is False  # was evicted

    def test_flush(self):
        cache = SetAssociativeCache(capacity_bytes=4096)
        cache.access(0)
        cache.flush()
        assert cache.resident_lines == 0
        assert cache.access(0) is False

    def test_stats_accumulate(self):
        cache = SetAssociativeCache(capacity_bytes=4096)
        cache.access_many([0, 0, 64, 64])
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_warm_does_not_count(self):
        cache = SetAssociativeCache(capacity_bytes=4096)
        cache.warm([0, 64, 128])
        assert cache.stats.accesses == 0
        assert cache.access(0) is True

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_analytic_model_matches_lru_for_uniform_probes(self, seed):
        """Steady-state LRU hit ratio under uniform probing matches min(S/H, 1)."""
        rng = np.random.default_rng(seed)
        capacity = 16 * 1024
        working_set = 64 * 1024
        cache = SetAssociativeCache(capacity_bytes=capacity, line_bytes=64, associativity=8)
        addresses = rng.integers(0, working_set, 20_000)
        cache.warm(addresses[:5_000])
        stats = cache.access_many(addresses[5_000:])
        expected = AnalyticCacheModel(capacity, 64).hit_ratio(working_set)
        assert stats.hit_ratio == pytest.approx(expected, abs=0.08)
